//! Prometheus text exposition (version 0.0.4) for [`Snapshot`]s.
//!
//! Rendering rules:
//!
//! * series `subsystem/name{labels}` becomes
//!   `dstampede_<subsystem>_<name>` with every character outside
//!   `[a-zA-Z0-9_:]` replaced by `_`; counters additionally get the
//!   conventional `_total` suffix.
//! * label values are escaped per the exposition format (`\\`, `\"`,
//!   `\n`).
//! * histograms expand to cumulative `_bucket{le="..."}` series (one
//!   per occupied log2 bucket, upper bound from
//!   [`crate::bucket_bounds`], plus `le="+Inf"`) and `_sum` / `_count`
//!   samples.
//! * every family is announced by `# HELP` and `# TYPE` lines exactly
//!   once, before its first sample.
//!
//! `scripts/check_exposition.py` validates this output in CI.

use crate::metrics::bucket_bounds;
use crate::snapshot::{MetricId, Snapshot};

fn prom_name(id: &MetricId) -> String {
    let mut out = String::with_capacity(id.subsystem.len() + id.name.len() + 11);
    out.push_str("dstampede_");
    for part in [&id.subsystem, &id.name] {
        for c in part.chars() {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                out.push(c);
            } else {
                out.push('_');
            }
        }
        out.push('_');
    }
    out.pop();
    out
}

fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_labels(id: &MetricId, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| {
            let mut key = String::with_capacity(k.len());
            for c in k.chars() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    key.push(c);
                } else {
                    key.push('_');
                }
            }
            format!("{key}=\"{}\"", prom_label_value(v))
        })
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", prom_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn announce(out: &mut String, announced: &mut Vec<String>, family: &str, kind: &str) {
    if announced.iter().any(|f| f == family) {
        return;
    }
    out.push_str(&format!(
        "# HELP {family} D-Stampede series {family}.\n# TYPE {family} {kind}\n"
    ));
    announced.push(family.to_owned());
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut announced: Vec<String> = Vec::new();
        for c in &self.counters {
            let family = format!("{}_total", prom_name(&c.id));
            announce(&mut out, &mut announced, &family, "counter");
            out.push_str(&format!(
                "{family}{} {}\n",
                prom_labels(&c.id, None),
                c.value
            ));
        }
        for g in &self.gauges {
            let family = prom_name(&g.id);
            announce(&mut out, &mut announced, &family, "gauge");
            out.push_str(&format!(
                "{family}{} {}\n",
                prom_labels(&g.id, None),
                g.value
            ));
        }
        for h in &self.histograms {
            let family = prom_name(&h.id);
            announce(&mut out, &mut announced, &family, "histogram");
            let mut cumulative = 0u64;
            let mut saw_inf = false;
            for &(i, n) in &h.buckets {
                cumulative += n;
                let (_, hi) = bucket_bounds(i as usize);
                let le = if hi == u64::MAX {
                    saw_inf = true;
                    "+Inf".to_owned()
                } else {
                    hi.to_string()
                };
                out.push_str(&format!(
                    "{family}_bucket{} {cumulative}\n",
                    prom_labels(&h.id, Some(("le", &le)))
                ));
            }
            if !saw_inf {
                out.push_str(&format!(
                    "{family}_bucket{} {}\n",
                    prom_labels(&h.id, Some(("le", "+Inf"))),
                    h.count
                ));
            }
            out.push_str(&format!(
                "{family}_sum{} {}\n",
                prom_labels(&h.id, None),
                h.sum
            ));
            out.push_str(&format!(
                "{family}_count{} {}\n",
                prom_labels(&h.id, None),
                h.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsRegistry;

    #[test]
    fn renders_all_metric_kinds() {
        let reg = MetricsRegistry::new("as-0");
        reg.counter_labeled("clf", "msgs_sent", &[("transport", "udp")])
            .add(3);
        reg.gauge("stm", "channel_items").set(-2);
        reg.histogram("stm", "put_latency_us").record(100);
        reg.histogram("stm", "put_latency_us").record(5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE dstampede_clf_msgs_sent_total counter"));
        assert!(text.contains("dstampede_clf_msgs_sent_total{transport=\"udp\"} 3"));
        assert!(text.contains("# TYPE dstampede_stm_channel_items gauge"));
        assert!(text.contains("dstampede_stm_channel_items -2"));
        assert!(text.contains("# TYPE dstampede_stm_put_latency_us histogram"));
        assert!(text.contains("dstampede_stm_put_latency_us_count 2"));
        assert!(text.contains("dstampede_stm_put_latency_us_sum 105"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn buckets_are_cumulative_and_bounded() {
        let reg = MetricsRegistry::new("as-0");
        let h = reg.histogram("stm", "x");
        h.record(1); // bucket 1, bound 2
        h.record(1);
        h.record(100); // bucket 7, bound 128
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("dstampede_stm_x_bucket{le=\"2\"} 2"));
        assert!(text.contains("dstampede_stm_x_bucket{le=\"128\"} 3"));
        assert!(text.contains("dstampede_stm_x_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn names_and_labels_are_sanitized() {
        let reg = MetricsRegistry::new("as-0");
        reg.counter_labeled("a b", "x-y", &[("bad key", "quo\"te\\n")])
            .inc();
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("dstampede_a_b_x_y_total"));
        assert!(text.contains("bad_key=\"quo\\\"te\\\\n\""));
    }

    #[test]
    fn each_family_announced_once() {
        let reg = MetricsRegistry::new("as-0");
        reg.counter_labeled("clf", "msgs_sent", &[("transport", "udp")])
            .inc();
        reg.counter_labeled("clf", "msgs_sent", &[("transport", "mem")])
            .inc();
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# TYPE dstampede_clf_msgs_sent_total counter")
                .count(),
            1
        );
    }
}
