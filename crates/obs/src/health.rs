//! Derived health states with hysteresis.
//!
//! The flight recorder answers "what happened"; this module answers
//! "how is it doing". A [`HealthEngine`] folds raw per-tick signals —
//! heartbeat lease age, retransmit and backpressure deltas, channel
//! occupancy watermarks — into one [`HealthState`] per *subject* (a
//! peer, or a local resource like the CLF endpoint or the STM store).
//!
//! Raw signals are noisy, so the engine applies hysteresis: a subject
//! only *worsens* after [`HealthPolicy::worsen_after`] consecutive
//! ticks at the worse level, and only *recovers* after the (longer)
//! [`HealthPolicy::recover_after`] streak — a one-tick blip in either
//! direction never moves the published state. [`HealthState::Dead`] is
//! the exception: it is adopted immediately (the failure detector
//! already debounced it through missed leases) and latched until the
//! subject proves itself healthy for a full recovery streak.
//!
//! Reports serialize and merge like snapshots, keyed by
//! `(source, subject)` with the freshest observation winning, so a
//! cluster-wide `HealthPull` converges to the same view no matter
//! which node serves it.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::snapshot::{escape, json_string, unescape, SnapshotParseError};

/// A subject's derived condition, worst last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthState {
    /// Signals nominal.
    Healthy,
    /// Elevated but serviceable: late heartbeats, retransmit or
    /// backpressure pressure, occupancy above watermark.
    Degraded,
    /// Lease at risk: the subject has stopped responding but is not
    /// yet declared dead.
    Suspect,
    /// Declared dead by the failure detector.
    Dead,
}

impl HealthState {
    fn token(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Suspect => "suspect",
            HealthState::Dead => "dead",
        }
    }

    fn from_token(t: &str) -> Option<HealthState> {
        match t {
            "healthy" => Some(HealthState::Healthy),
            "degraded" => Some(HealthState::Degraded),
            "suspect" => Some(HealthState::Suspect),
            "dead" => Some(HealthState::Dead),
            _ => None,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Hysteresis thresholds for state transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive ticks a worse raw signal must persist before the
    /// published state worsens (`Dead` ignores this and is adopted
    /// immediately).
    pub worsen_after: u32,
    /// Consecutive ticks a better raw signal must persist before the
    /// published state improves. Kept larger than `worsen_after` so a
    /// subject oscillating every tick pins to the worse state rather
    /// than flapping.
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            worsen_after: 2,
            recover_after: 4,
        }
    }
}

#[derive(Debug)]
struct SubjectState {
    state: HealthState,
    /// The raw level currently accumulating a streak, and its length.
    pending: HealthState,
    streak: u32,
    since_tick: u64,
    reason: String,
    tick: u64,
}

/// Folds raw per-tick signals into debounced per-subject states.
#[derive(Debug)]
pub struct HealthEngine {
    policy: HealthPolicy,
    subjects: Mutex<BTreeMap<String, SubjectState>>,
}

impl HealthEngine {
    /// An engine with the given hysteresis policy.
    #[must_use]
    pub fn new(policy: HealthPolicy) -> HealthEngine {
        HealthEngine {
            policy,
            subjects: Mutex::new(BTreeMap::new()),
        }
    }

    /// The hysteresis policy in force.
    #[must_use]
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Feeds one tick's raw signal for `subject`. `reason` describes
    /// the signal (shown when the state it argues for is adopted).
    /// Returns the published (debounced) state after the observation.
    pub fn observe(&self, tick: u64, subject: &str, raw: HealthState, reason: &str) -> HealthState {
        let mut subjects = self.subjects.lock().unwrap_or_else(|e| e.into_inner());
        let entry = subjects
            .entry(subject.to_owned())
            .or_insert_with(|| SubjectState {
                state: raw,
                pending: raw,
                streak: 0,
                since_tick: tick,
                reason: reason.to_owned(),
                tick,
            });
        entry.tick = tick;
        if raw == entry.state {
            // Signal agrees with the published state: any streak
            // toward another state is broken.
            entry.pending = raw;
            entry.streak = 0;
            return entry.state;
        }
        if raw == entry.pending {
            entry.streak = entry.streak.saturating_add(1);
        } else {
            entry.pending = raw;
            entry.streak = 1;
        }
        let needed = if raw > entry.state {
            if raw == HealthState::Dead {
                // The failure detector already debounced death through
                // missed leases; adopt it on first sight.
                0
            } else {
                self.policy.worsen_after
            }
        } else {
            self.policy.recover_after
        };
        if entry.streak >= needed {
            entry.state = raw;
            entry.since_tick = tick;
            entry.reason = reason.to_owned();
            entry.streak = 0;
        }
        entry.state
    }

    /// The published state for `subject`, if it has ever been observed.
    #[must_use]
    pub fn state_of(&self, subject: &str) -> Option<HealthState> {
        self.subjects
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(subject)
            .map(|s| s.state)
    }

    /// A report of every subject, attributed to `source`.
    #[must_use]
    pub fn report(&self, source: &str) -> HealthReport {
        let subjects = self.subjects.lock().unwrap_or_else(|e| e.into_inner());
        HealthReport {
            entries: subjects
                .iter()
                .map(|(subject, s)| HealthEntry {
                    source: source.to_owned(),
                    subject: subject.clone(),
                    state: s.state,
                    since_tick: s.since_tick,
                    tick: s.tick,
                    reason: s.reason.clone(),
                })
                .collect(),
        }
    }
}

/// One subject's published state inside a [`HealthReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEntry {
    /// Which node derived it (e.g. `as-0`).
    pub source: String,
    /// What it describes (e.g. `peer:as-2`, `clf:local`, `stm:local`).
    pub subject: String,
    /// The debounced state.
    pub state: HealthState,
    /// The tick at which `state` was adopted.
    pub since_tick: u64,
    /// The tick of the latest observation.
    pub tick: u64,
    /// Why the current state was adopted.
    pub reason: String,
}

/// A serializable, mergeable view of one or more health engines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Entries sorted by `(source, subject)`.
    pub entries: Vec<HealthEntry>,
}

impl HealthReport {
    /// Folds `other` into `self`: entries union by
    /// `(source, subject)`; when both sides carry the same key the
    /// fresher observation (higher `tick`) wins, ties breaking toward
    /// the worse state. Associative and order-insensitive on any pair
    /// of pulls from the same origins.
    pub fn merge(&mut self, other: &HealthReport) {
        let mut map: BTreeMap<(String, String), HealthEntry> = self
            .entries
            .drain(..)
            .map(|e| ((e.source.clone(), e.subject.clone()), e))
            .collect();
        for e in &other.entries {
            let key = (e.source.clone(), e.subject.clone());
            match map.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(e.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    if (e.tick, e.state) > (mine.tick, mine.state) {
                        *mine = e.clone();
                    }
                }
            }
        }
        self.entries = map.into_values().collect();
    }

    /// The first entry for `subject` regardless of source, or `None`.
    #[must_use]
    pub fn subject(&self, subject: &str) -> Option<&HealthEntry> {
        self.entries.iter().find(|e| e.subject == subject)
    }

    /// The entry `source` published for `subject`, or `None`.
    #[must_use]
    pub fn entry(&self, source: &str, subject: &str) -> Option<&HealthEntry> {
        self.entries
            .iter()
            .find(|e| e.source == source && e.subject == subject)
    }

    /// The worst state across every entry (an empty report is
    /// [`HealthState::Healthy`]).
    #[must_use]
    pub fn worst(&self) -> HealthState {
        self.entries
            .iter()
            .map(|e| e.state)
            .max()
            .unwrap_or(HealthState::Healthy)
    }

    /// Serializes to the line format carried by `HealthReport` replies.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::from("hlt1\n");
        for e in &self.entries {
            out.push_str(&format!(
                "E {} {} {} {} {} {}\n",
                escape(&e.source),
                escape(&e.subject),
                e.state.token(),
                e.since_tick,
                e.tick,
                escape(&e.reason)
            ));
        }
        out.into_bytes()
    }

    /// Parses the [`HealthReport::encode`] format.
    ///
    /// # Errors
    ///
    /// [`SnapshotParseError`] naming the offending line.
    pub fn decode(bytes: &[u8]) -> Result<HealthReport, SnapshotParseError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotParseError::new(0, "health report is not utf-8"))?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "hlt1")) => {}
            _ => return Err(SnapshotParseError::new(1, "bad health header")),
        }
        let mut report = HealthReport::default();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| SnapshotParseError::new(lineno, msg);
            let mut fields = line.split(' ');
            match fields.next() {
                Some("E") => {}
                _ => return Err(err("unknown record kind")),
            }
            let source = fields
                .next()
                .and_then(unescape)
                .ok_or_else(|| err("bad source"))?;
            let subject = fields
                .next()
                .and_then(unescape)
                .ok_or_else(|| err("bad subject"))?;
            let state = fields
                .next()
                .and_then(HealthState::from_token)
                .ok_or_else(|| err("bad state"))?;
            let since_tick = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad since tick"))?;
            let tick = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad tick"))?;
            let reason = fields
                .next()
                .and_then(unescape)
                .ok_or_else(|| err("bad reason"))?;
            report.entries.push(HealthEntry {
                source,
                subject,
                state,
                since_tick,
                tick,
                reason,
            });
        }
        report
            .entries
            .sort_by(|a, b| (&a.source, &a.subject).cmp(&(&b.source, &b.subject)));
        Ok(report)
    }

    /// Renders as JSON for export.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"source\": {}, \"subject\": {}, \"state\": {}, \
                 \"since_tick\": {}, \"tick\": {}, \"reason\": {}}}",
                json_string(&e.source),
                json_string(&e.subject),
                json_string(e.state.token()),
                e.since_tick,
                e.tick,
                json_string(&e.reason)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_order_worst_last() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Suspect);
        assert!(HealthState::Suspect < HealthState::Dead);
    }

    #[test]
    fn worsening_needs_a_streak() {
        let eng = HealthEngine::new(HealthPolicy::default());
        assert_eq!(
            eng.observe(0, "peer:as-1", HealthState::Healthy, "ok"),
            HealthState::Healthy
        );
        // One bad tick is not enough.
        assert_eq!(
            eng.observe(1, "peer:as-1", HealthState::Suspect, "lease at risk"),
            HealthState::Healthy
        );
        assert_eq!(
            eng.observe(2, "peer:as-1", HealthState::Suspect, "lease at risk"),
            HealthState::Suspect
        );
        let report = eng.report("as-0");
        let e = report.entry("as-0", "peer:as-1").unwrap();
        assert_eq!(e.since_tick, 2);
        assert_eq!(e.reason, "lease at risk");
    }

    #[test]
    fn dead_is_adopted_immediately() {
        let eng = HealthEngine::new(HealthPolicy::default());
        eng.observe(0, "peer:as-2", HealthState::Healthy, "ok");
        assert_eq!(
            eng.observe(1, "peer:as-2", HealthState::Dead, "declared dead"),
            HealthState::Dead
        );
    }

    #[test]
    fn one_tick_recovery_does_not_flap() {
        let eng = HealthEngine::new(HealthPolicy {
            worsen_after: 2,
            recover_after: 4,
        });
        eng.observe(0, "p", HealthState::Healthy, "ok");
        eng.observe(1, "p", HealthState::Suspect, "late");
        eng.observe(2, "p", HealthState::Suspect, "late");
        assert_eq!(eng.state_of("p"), Some(HealthState::Suspect));
        // A single good tick between bad ones must not recover...
        assert_eq!(
            eng.observe(3, "p", HealthState::Healthy, "ok"),
            HealthState::Suspect
        );
        assert_eq!(
            eng.observe(4, "p", HealthState::Suspect, "late"),
            HealthState::Suspect
        );
        // ...and a full recovery streak must.
        for t in 5..9 {
            eng.observe(t, "p", HealthState::Healthy, "ok");
        }
        assert_eq!(eng.state_of("p"), Some(HealthState::Healthy));
    }

    #[test]
    fn interrupted_recovery_restarts_the_streak() {
        let eng = HealthEngine::new(HealthPolicy {
            worsen_after: 1,
            recover_after: 3,
        });
        eng.observe(0, "p", HealthState::Degraded, "slow");
        eng.observe(1, "p", HealthState::Degraded, "slow");
        eng.observe(2, "p", HealthState::Healthy, "ok");
        eng.observe(3, "p", HealthState::Healthy, "ok");
        // Streak broken: back to zero.
        eng.observe(4, "p", HealthState::Degraded, "slow");
        eng.observe(5, "p", HealthState::Healthy, "ok");
        eng.observe(6, "p", HealthState::Healthy, "ok");
        assert_eq!(eng.state_of("p"), Some(HealthState::Degraded));
        eng.observe(7, "p", HealthState::Healthy, "ok");
        assert_eq!(eng.state_of("p"), Some(HealthState::Healthy));
    }

    #[test]
    fn report_encode_decode_round_trips() {
        let eng = HealthEngine::new(HealthPolicy::default());
        eng.observe(0, "peer:as 1", HealthState::Healthy, "all good %");
        eng.observe(1, "peer:as 1", HealthState::Dead, "lease expired, 3 missed");
        let report = eng.report("as-0");
        let decoded = HealthReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(decoded.worst(), HealthState::Dead);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(HealthReport::decode(b"nope").is_err());
        assert!(HealthReport::decode(b"hlt1\nX y").is_err());
        assert!(HealthReport::decode(b"hlt1\nE src subj limbo 0 0 r").is_err());
        assert!(HealthReport::decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn merge_prefers_fresher_observation() {
        let old = HealthEntry {
            source: "as-0".into(),
            subject: "peer:as-2".into(),
            state: HealthState::Suspect,
            since_tick: 5,
            tick: 6,
            reason: "late".into(),
        };
        let new = HealthEntry {
            state: HealthState::Dead,
            since_tick: 8,
            tick: 9,
            reason: "declared dead".into(),
            ..old.clone()
        };
        let mut a = HealthReport {
            entries: vec![old.clone()],
        };
        let b = HealthReport {
            entries: vec![new.clone()],
        };
        a.merge(&b);
        assert_eq!(a.entries, vec![new.clone()]);
        // Merging the other way converges to the same view.
        let mut c = HealthReport {
            entries: vec![new.clone()],
        };
        c.merge(&HealthReport {
            entries: vec![old.clone()],
        });
        assert_eq!(c.entries, vec![new]);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let eng = HealthEngine::new(HealthPolicy::default());
        eng.observe(3, "peer:as-1", HealthState::Degraded, "retransmits");
        let json = eng.report("as-0").to_json();
        assert!(json.contains("\"peer:as-1\""));
        assert!(json.contains("\"degraded\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
