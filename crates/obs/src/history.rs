//! The flight recorder: bounded on-node metric history.
//!
//! A [`HistoryRecorder`] scrapes a [`MetricsRegistry`] on a fixed tick
//! and appends every scalar — counter values, gauge levels, histogram
//! counts and sums — to a per-series [`RingSeries`]: a fixed-capacity
//! delta-encoded ring buffer that overwrites its oldest sample once
//! full and counts every overwrite. Capacity is allocated when a
//! series first appears and never grows, so steady-state sampling is
//! allocation-free; at the default one-second tick the default
//! capacity retains the last five minutes of every series.
//!
//! Histories serialize as [`HistoryDump`]s — the same escaped
//! line-format discipline as [`crate::Snapshot`], but samples stay
//! delta-encoded on the wire — and merge by `(source, series, field)`
//! key with timestamp-level deduplication, so overlapping windows
//! pulled through two different nodes collapse to one.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::registry::MetricsRegistry;
use crate::snapshot::{
    decode_id, encode_id, escape, json_id, json_string, unescape, MetricId, SnapshotParseError,
};

/// Default per-series sample capacity: five minutes at a 1 s tick.
pub const DEFAULT_HISTORY_CAPACITY: usize = 300;

/// Which scalar of a metric a history series tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SeriesField {
    /// A counter's count or a gauge's level.
    Value,
    /// A histogram's total sample count.
    Count,
    /// A histogram's sample sum.
    Sum,
}

impl SeriesField {
    fn token(self) -> &'static str {
        match self {
            SeriesField::Value => "v",
            SeriesField::Count => "c",
            SeriesField::Sum => "s",
        }
    }

    fn from_token(t: &str) -> Option<SeriesField> {
        match t {
            "v" => Some(SeriesField::Value),
            "c" => Some(SeriesField::Count),
            "s" => Some(SeriesField::Sum),
            _ => None,
        }
    }
}

/// A fixed-capacity delta-encoded ring of `(timestamp ms, value)`
/// samples. The oldest retained sample is held absolute; every younger
/// one as a delta from its predecessor. Appending to a full ring folds
/// the oldest delta into the absolute base (overwrite-oldest) and
/// counts the overwritten sample in [`RingSeries::dropped`].
#[derive(Debug)]
pub struct RingSeries {
    /// Absolute `(ts, value)` of the oldest retained sample.
    first: Option<(i64, i64)>,
    /// `(dts, dvalue)` of each younger sample, oldest first. Backed by
    /// a ring over a preallocated buffer: `head` indexes the oldest
    /// delta, `len` counts retained deltas.
    deltas: Vec<(i64, i64)>,
    head: usize,
    len: usize,
    /// Absolute `(ts, value)` of the newest sample (delta source).
    last: Option<(i64, i64)>,
    /// Samples overwritten since creation.
    dropped: u64,
}

impl RingSeries {
    /// An empty ring retaining at most `capacity` samples (the buffer
    /// is allocated up front; pushes never reallocate).
    #[must_use]
    pub fn new(capacity: usize) -> RingSeries {
        let capacity = capacity.max(1);
        RingSeries {
            first: None,
            deltas: Vec::with_capacity(capacity - 1),
            head: 0,
            len: 0,
            last: None,
            dropped: 0,
        }
    }

    /// Retained samples can never exceed this.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.deltas.capacity() + 1
    }

    /// Retained sample count.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.first.is_some() {
            self.len + 1
        } else {
            0
        }
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.first.is_none()
    }

    /// Samples overwritten (oldest-first) since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends one sample, overwriting the oldest when full.
    pub fn push(&mut self, ts_ms: i64, value: i64) {
        let Some(last) = self.last else {
            self.first = Some((ts_ms, value));
            self.last = Some((ts_ms, value));
            return;
        };
        let delta = (ts_ms.wrapping_sub(last.0), value.wrapping_sub(last.1));
        let cap = self.deltas.capacity();
        if cap == 0 {
            // Capacity 1: the single retained sample is always the newest.
            self.first = Some((ts_ms, value));
            self.last = self.first;
            self.dropped += 1;
            return;
        }
        if self.len == cap {
            // Fold the oldest delta into the absolute base.
            let (dts, dv) = self.deltas[self.head];
            let (ft, fv) = self.first.expect("non-empty ring has a base");
            self.first = Some((ft.wrapping_add(dts), fv.wrapping_add(dv)));
            self.deltas[self.head] = delta;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        } else if self.deltas.len() < cap {
            self.deltas.push(delta);
            self.len += 1;
        } else {
            let idx = (self.head + self.len) % cap;
            self.deltas[idx] = delta;
            self.len += 1;
        }
        self.last = Some((ts_ms, value));
    }

    /// Reconstructed absolute samples, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<(i64, i64)> {
        let Some((mut ts, mut v)) = self.first else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(self.len + 1);
        out.push((ts, v));
        let cap = self.deltas.capacity();
        for k in 0..self.len {
            let (dts, dv) = self.deltas[(self.head + k) % cap];
            ts = ts.wrapping_add(dts);
            v = v.wrapping_add(dv);
            out.push((ts, v));
        }
        out
    }
}

/// One series' recorded window inside a [`HistoryDump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesHistory {
    /// Which registry recorded it (e.g. `as-2`).
    pub source: String,
    /// Which metric.
    pub id: MetricId,
    /// Which scalar of the metric.
    pub field: SeriesField,
    /// Samples overwritten by the ring before this dump was taken.
    pub dropped: u64,
    /// `(unix ms, value)` samples, ascending by timestamp.
    pub samples: Vec<(i64, i64)>,
}

type SeriesKey = (String, MetricId, SeriesField);

/// A serializable, mergeable view of one or more flight recorders.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistoryDump {
    /// Recorded windows, sorted by `(source, id, field)`.
    pub series: Vec<SeriesHistory>,
}

impl HistoryDump {
    /// Folds `other` into `self`: series union by
    /// `(source, id, field)`; windows of the same series merge by
    /// timestamp with duplicates collapsed (both pulls saw the same
    /// origin ring, so equal timestamps carry equal values — the later
    /// pull wins on the off chance they differ). `dropped` takes the
    /// maximum, both counts being cumulative views of one origin
    /// counter.
    pub fn merge(&mut self, other: &HistoryDump) {
        let mut map: BTreeMap<SeriesKey, SeriesHistory> = self
            .series
            .drain(..)
            .map(|s| ((s.source.clone(), s.id.clone(), s.field), s))
            .collect();
        for s in &other.series {
            let key = (s.source.clone(), s.id.clone(), s.field);
            match map.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(s.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    let mut by_ts: BTreeMap<i64, i64> = mine.samples.iter().copied().collect();
                    for &(ts, v) in &s.samples {
                        by_ts.insert(ts, v);
                    }
                    mine.samples = by_ts.into_iter().collect();
                    mine.dropped = mine.dropped.max(s.dropped);
                }
            }
        }
        self.series = map.into_values().collect();
    }

    /// The recorded window for `(source, subsystem, name, field)`
    /// ignoring labels (first match), or `None`.
    #[must_use]
    pub fn series_for(
        &self,
        source: &str,
        subsystem: &str,
        name: &str,
        field: SeriesField,
    ) -> Option<&SeriesHistory> {
        self.series.iter().find(|s| {
            s.source == source
                && s.id.subsystem == subsystem
                && s.id.name == name
                && s.field == field
        })
    }

    /// Total samples overwritten across every series.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.series.iter().map(|s| s.dropped).sum()
    }

    /// Serializes to the line format carried by `HistoryReport`
    /// replies: a `hst1` header, then one `R` record per series with
    /// the first sample absolute and the rest delta-encoded.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::from("hst1\n");
        for s in &self.series {
            out.push_str(&format!(
                "R {} {} {} {} {}",
                escape(&s.source),
                encode_id(&s.id),
                s.field.token(),
                s.dropped,
                s.samples.len()
            ));
            let mut prev: Option<(i64, i64)> = None;
            for &(ts, v) in &s.samples {
                match prev {
                    None => out.push_str(&format!(" {ts}:{v}")),
                    Some((pt, pv)) => {
                        out.push_str(&format!(" {}:{}", ts.wrapping_sub(pt), v.wrapping_sub(pv)))
                    }
                }
                prev = Some((ts, v));
            }
            out.push('\n');
        }
        out.into_bytes()
    }

    /// Parses the [`HistoryDump::encode`] format.
    ///
    /// # Errors
    ///
    /// [`SnapshotParseError`] naming the offending line.
    pub fn decode(bytes: &[u8]) -> Result<HistoryDump, SnapshotParseError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotParseError::new(0, "history is not utf-8"))?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "hst1")) => {}
            _ => return Err(SnapshotParseError::new(1, "bad history header")),
        }
        let mut dump = HistoryDump::default();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| SnapshotParseError::new(lineno, msg);
            let mut fields = line.split(' ');
            match fields.next() {
                Some("R") => {}
                _ => return Err(err("unknown record kind")),
            }
            let source = fields
                .next()
                .and_then(unescape)
                .ok_or_else(|| err("bad source"))?;
            let id = decode_id(&mut fields).ok_or_else(|| err("bad metric id"))?;
            let field = fields
                .next()
                .and_then(SeriesField::from_token)
                .ok_or_else(|| err("bad field token"))?;
            let dropped = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad dropped count"))?;
            let n: usize = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad sample count"))?;
            let mut samples = Vec::with_capacity(n);
            let mut prev: Option<(i64, i64)> = None;
            for pair in fields {
                let (dts, dv) = pair
                    .split_once(':')
                    .and_then(|(a, b)| Some((a.parse::<i64>().ok()?, b.parse::<i64>().ok()?)))
                    .ok_or_else(|| err("bad sample pair"))?;
                let abs = match prev {
                    None => (dts, dv),
                    Some((pt, pv)) => (pt.wrapping_add(dts), pv.wrapping_add(dv)),
                };
                samples.push(abs);
                prev = Some(abs);
            }
            if samples.len() != n {
                return Err(err("sample count mismatch"));
            }
            dump.series.push(SeriesHistory {
                source,
                id,
                field,
                dropped,
                samples,
            });
        }
        dump.series
            .sort_by(|a, b| (&a.source, &a.id, a.field).cmp(&(&b.source, &b.id, b.field)));
        Ok(dump)
    }

    /// Renders as JSON for export.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let samples = s
                .samples
                .iter()
                .map(|&(ts, v)| format!("[{ts}, {v}]"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{\"source\": {}, {}, \"field\": {}, \"dropped\": {}, \"samples\": [{}]}}",
                json_string(&s.source),
                json_id(&s.id),
                json_string(s.field.token()),
                s.dropped,
                samples
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Records a registry's scalars into per-series rings on demand;
/// drive it from a periodic sampler thread via
/// [`HistoryRecorder::sample`].
#[derive(Debug)]
pub struct HistoryRecorder {
    capacity: usize,
    series: Mutex<BTreeMap<(MetricId, SeriesField), RingSeries>>,
}

impl HistoryRecorder {
    /// A recorder whose rings each retain `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize) -> HistoryRecorder {
        HistoryRecorder {
            capacity: capacity.max(1),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Per-series ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Scrapes every scalar in `registry` at time `now_ms` (unix
    /// milliseconds). One call is one tick; all series share the tick's
    /// timestamp. New series get a ring on first sight; existing ones
    /// append without allocating.
    pub fn sample(&self, registry: &MetricsRegistry, now_ms: i64) {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        registry.visit_scalars(|id, field, value| {
            series
                .entry((id.clone(), field))
                .or_insert_with(|| RingSeries::new(self.capacity))
                .push(now_ms, value);
        });
    }

    /// Recorded series count.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.series.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Samples overwritten across all rings since creation.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.series
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(RingSeries::dropped)
            .sum()
    }

    /// A dump of every ring, attributed to `source`.
    #[must_use]
    pub fn dump(&self, source: &str) -> HistoryDump {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        HistoryDump {
            series: series
                .iter()
                .map(|((id, field), ring)| SeriesHistory {
                    source: source.to_owned(),
                    id: id.clone(),
                    field: *field,
                    dropped: ring.dropped(),
                    samples: ring.samples(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_reconstructs_samples_in_order() {
        let mut r = RingSeries::new(8);
        assert!(r.is_empty());
        r.push(1000, 5);
        r.push(2000, 7);
        r.push(3000, 4);
        assert_eq!(r.samples(), vec![(1000, 5), (2000, 7), (3000, 4)]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_at_capacity() {
        let mut r = RingSeries::new(3);
        for i in 0..5 {
            r.push(i * 10, i * 100);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.samples(), vec![(20, 200), (30, 300), (40, 400)]);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn ring_capacity_one_keeps_newest() {
        let mut r = RingSeries::new(1);
        r.push(1, 10);
        r.push(2, 20);
        assert_eq!(r.samples(), vec![(2, 20)]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn ring_handles_negative_and_decreasing_values() {
        let mut r = RingSeries::new(4);
        r.push(5, -3);
        r.push(4, i64::MIN + 1);
        r.push(9, i64::MAX - 1);
        assert_eq!(
            r.samples(),
            vec![(5, -3), (4, i64::MIN + 1), (9, i64::MAX - 1)]
        );
    }

    #[test]
    fn recorder_scrapes_registry_scalars() {
        let reg = MetricsRegistry::new("as-0");
        reg.counter("stm", "puts").add(3);
        reg.gauge("stm", "channel_items").set(-2);
        reg.histogram("stm", "put_latency_us").record(10);
        let rec = HistoryRecorder::new(16);
        rec.sample(&reg, 1_000);
        reg.counter("stm", "puts").add(1);
        rec.sample(&reg, 2_000);
        let dump = rec.dump("as-0");
        let puts = dump
            .series_for("as-0", "stm", "puts", SeriesField::Value)
            .unwrap();
        assert_eq!(puts.samples, vec![(1_000, 3), (2_000, 4)]);
        let items = dump
            .series_for("as-0", "stm", "channel_items", SeriesField::Value)
            .unwrap();
        assert_eq!(items.samples, vec![(1_000, -2), (2_000, -2)]);
        let count = dump
            .series_for("as-0", "stm", "put_latency_us", SeriesField::Count)
            .unwrap();
        assert_eq!(count.samples, vec![(1_000, 1), (2_000, 1)]);
        let sum = dump
            .series_for("as-0", "stm", "put_latency_us", SeriesField::Sum)
            .unwrap();
        assert_eq!(sum.samples, vec![(1_000, 10), (2_000, 10)]);
    }

    #[test]
    fn dump_encode_decode_round_trips() {
        let reg = MetricsRegistry::new("as 1%"); // awkward source on purpose
        reg.counter_labeled("clf", "msgs_sent", &[("transport", "udp")])
            .add(2);
        let rec = HistoryRecorder::new(4);
        for t in 0..6 {
            rec.sample(&reg, 500 + t * 250);
        }
        let dump = rec.dump("as 1%");
        assert_eq!(dump.total_dropped(), 2);
        let decoded = HistoryDump::decode(&dump.encode()).unwrap();
        assert_eq!(decoded, dump);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(HistoryDump::decode(b"nope").is_err());
        assert!(HistoryDump::decode(b"hst1\nX y").is_err());
        assert!(HistoryDump::decode(b"hst1\nR src stm puts - v 0 2 1:1").is_err());
        assert!(HistoryDump::decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn merge_dedups_overlapping_windows() {
        let id = MetricId::new("stm", "puts", &[]);
        let mut a = HistoryDump {
            series: vec![SeriesHistory {
                source: "as-0".into(),
                id: id.clone(),
                field: SeriesField::Value,
                dropped: 1,
                samples: vec![(1000, 1), (2000, 2), (3000, 3)],
            }],
        };
        let b = HistoryDump {
            series: vec![
                SeriesHistory {
                    source: "as-0".into(),
                    id: id.clone(),
                    field: SeriesField::Value,
                    dropped: 3,
                    samples: vec![(2000, 2), (3000, 3), (4000, 5)],
                },
                SeriesHistory {
                    source: "as-1".into(),
                    id: id.clone(),
                    field: SeriesField::Value,
                    dropped: 0,
                    samples: vec![(1500, 9)],
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.series.len(), 2);
        let merged = a
            .series_for("as-0", "stm", "puts", SeriesField::Value)
            .unwrap();
        assert_eq!(
            merged.samples,
            vec![(1000, 1), (2000, 2), (3000, 3), (4000, 5)]
        );
        assert_eq!(merged.dropped, 3);
        assert!(a
            .series_for("as-1", "stm", "puts", SeriesField::Value)
            .is_some());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let reg = MetricsRegistry::new("as-0");
        reg.counter("stm", "puts").inc();
        let rec = HistoryRecorder::new(4);
        rec.sample(&reg, 42);
        let json = rec.dump("as-0").to_json();
        assert!(json.contains("\"puts\""));
        assert!(json.contains("[42, 1]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
