//! # dstampede-obs — cluster-wide telemetry
//!
//! The paper's entire evaluation (§5) hinges on measuring latency and
//! sustained frame rate across address spaces. This crate is the
//! measurement substrate every other layer instruments itself with:
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] — lock-free primitives built
//!   on std atomics only (no external dependencies).
//! * [`MetricsRegistry`] — a metric namespace keyed by
//!   `(subsystem, name, labels)`. Each address space owns one registry;
//!   standalone users share the process-global [`global()`] registry.
//! * [`EventLog`] — a bounded ring buffer of leveled events replacing
//!   raw stderr prints.
//! * [`Snapshot`] — a serializable, mergeable point-in-time view of a
//!   registry, so per-address-space snapshots aggregate cluster-wide
//!   (the name server pulls remote snapshots over the wire and merges
//!   them; `dstampede-cli stats` renders the result).
//! * [`history`] — the flight recorder: fixed-capacity delta-encoded
//!   ring buffers retaining the recent window of every series, sampled
//!   on a background tick and pulled cluster-wide by `HistoryPull`.
//! * [`health`] — derived per-peer/per-resource health states
//!   (`Healthy/Degraded/Suspect/Dead`) with hysteresis, pulled
//!   cluster-wide by `HealthPull`.
//! * [`Snapshot::to_prometheus`] — Prometheus text exposition of any
//!   snapshot, for scrape-based collection.
//! * [`recording`] — open-loop load-measurement primitives: the
//!   coordinated-omission-correcting [`LatencyRecorder`] (intended-
//!   start-time latencies with HdrHistogram-style backfill of stalled
//!   arrivals) and [`HistogramWindow`] interval deltas, the substrate
//!   of the `load_perf` saturation harness and `stats --interval`.
//! * [`trace`] — end-to-end causal tracing: per-item lifecycle spans
//!   with deterministic every-nth-timestamp sampling, a bounded
//!   non-blocking span store per registry, mergeable [`TraceDump`]s
//!   (pulled cluster-wide by `TracePull`), and a Chrome trace-event
//!   JSON exporter.
//!
//! ## Naming scheme
//!
//! `subsystem` is the owning layer (`stm`, `gc`, `clf`, `rpc`,
//! `bench`); `name` is a snake_case measurement with its unit suffix
//! (`put_latency_us`, `reclaimed_bytes`); labels qualify a metric
//! without exploding the namespace (e.g. `transport=udp`).

#![warn(missing_docs)]

mod event;
mod expo;
pub mod health;
pub mod history;
mod metrics;
pub mod recording;
mod registry;
mod snapshot;
pub mod trace;

pub use event::{Event, EventLog, Level};
pub use health::{HealthEngine, HealthEntry, HealthPolicy, HealthReport, HealthState};
pub use history::{
    HistoryDump, HistoryRecorder, RingSeries, SeriesField, SeriesHistory, DEFAULT_HISTORY_CAPACITY,
};
pub use metrics::{bucket_bounds, Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use recording::{HistogramWindow, LatencyRecorder, MAX_BACKFILL_PER_SAMPLE};
pub use registry::{global, MetricsRegistry};
pub use snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricId, Snapshot, SnapshotParseError,
};
pub use trace::{Span, SpanId, SpanKind, TraceContext, TraceDump, TraceId, Tracer};

/// Emits an event at [`Level::Trace`] through the global registry.
pub fn trace(subsystem: &str, message: impl Into<String>) {
    global().events().emit(Level::Trace, subsystem, message);
}

/// Emits an event at [`Level::Debug`] through the global registry.
pub fn debug(subsystem: &str, message: impl Into<String>) {
    global().events().emit(Level::Debug, subsystem, message);
}

/// Emits an event at [`Level::Info`] through the global registry.
pub fn info(subsystem: &str, message: impl Into<String>) {
    global().events().emit(Level::Info, subsystem, message);
}

/// Emits an event at [`Level::Warn`] through the global registry.
pub fn warn(subsystem: &str, message: impl Into<String>) {
    global().events().emit(Level::Warn, subsystem, message);
}

/// Emits an event at [`Level::Error`] through the global registry.
pub fn error(subsystem: &str, message: impl Into<String>) {
    global().events().emit(Level::Error, subsystem, message);
}
