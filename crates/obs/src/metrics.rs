//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are plain std atomics updated with `Ordering::Relaxed`:
//! telemetry reads are statistical, never synchronizing, so the hot
//! path pays one uncontended atomic RMW per update.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (occupancy, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level by a signed delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: value `v` lands in bucket
/// `bit_length(v)`, i.e. bucket 0 holds only 0, bucket `i` holds
/// `[2^(i-1), 2^i)`, and bucket 64 holds `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The half-open value range `[lo, hi)` covered by bucket `index`
/// (bucket 64's `hi` saturates at `u64::MAX`).
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 1),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), 1 << i),
    }
}

fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Linear interpolation within the bucket where the cumulative count
/// crosses `threshold`: the `threshold`-th sample (1-based) is placed
/// `into/in_bucket` of the way through `[lo, hi)`, assuming samples
/// spread uniformly across the bucket. Clamped to `[lo, hi - 1]` so the
/// result is always a value the bucket could actually contain. This
/// replaces the pre-0.2 readout that reported `hi - 1` (the bucket's
/// upper edge) for every quantile crossing a bucket, which inflated
/// p99-style figures by up to 2x on log2 buckets.
pub(crate) fn interpolate_quantile(
    index: usize,
    seen_before: u64,
    in_bucket: u64,
    threshold: u64,
) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    debug_assert!(threshold > seen_before && threshold - seen_before <= in_bucket);
    let into = threshold.saturating_sub(seen_before);
    let width = hi - lo;
    let offset = (u128::from(width) * u128::from(into)) / u128::from(in_bucket.max(1));
    let value = lo.saturating_add(u64::try_from(offset).unwrap_or(u64::MAX));
    value.clamp(lo, hi.saturating_sub(1).max(lo))
}

/// A log2-bucketed distribution of `u64` samples (latencies in
/// microseconds, sizes in bytes).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (0.0..=1.0), linearly interpolated within the
    /// bucket where the cumulative count crosses `q * count` (samples
    /// assumed uniform across the bucket). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let buckets = self.buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let threshold = threshold.max(1);
        let mut seen = 0;
        for (i, &n) in buckets.iter().enumerate() {
            if seen + n >= threshold {
                return interpolate_quantile(i, seen, n, threshold);
            }
            seen += n;
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.add(9);
        g.dec();
        assert_eq!(g.get(), 9);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // Bucket 0 is exactly {0}.
        assert_eq!(bucket_index(0), 0);
        // Each power of two opens a new bucket; its predecessor closes one.
        for bit in 0..63 {
            let lo = 1u64 << bit;
            assert_eq!(
                bucket_index(lo),
                bit + 1,
                "lower edge of bucket {}",
                bit + 1
            );
            assert_eq!(
                bucket_index(lo * 2 - 1),
                bit + 1,
                "upper edge of bucket {}",
                bit + 1
            );
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        // bucket_bounds is the inverse view.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            if i < 64 {
                assert_eq!(bucket_index(hi - 1), i);
            }
        }
    }

    #[test]
    fn histogram_counts_sum_and_mean() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.mean(), 168);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[3], 1); // 4
        assert_eq!(buckets[10], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4: [8, 16)
        }
        h.record(100_000); // bucket 17: [65536, 131072)
                           // Interpolated: 50th of 99 samples through [8, 16) = 8 + 8*50/99.
        assert_eq!(h.quantile(0.5), 12);
        // The max lands in the crossing bucket, clamped below its upper edge.
        assert!(h.quantile(1.0) >= 65_536 && h.quantile(1.0) < 131_072);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = Histogram::new();
        // 100 samples, all in bucket 7 [64, 128): quantiles must spread
        // across the bucket instead of all reporting 127.
        for _ in 0..100 {
            h.record(80);
        }
        let q10 = h.quantile(0.10);
        let q50 = h.quantile(0.50);
        let q99 = h.quantile(0.99);
        assert_eq!(q10, 64 + 64 * 10 / 100);
        assert_eq!(q50, 64 + 64 * 50 / 100);
        assert_eq!(q99, 64 + 64 * 99 / 100);
        assert!(q10 < q50 && q50 < q99);
        // Quantiles stay inside the bucket that contains the samples.
        assert!(q10 >= 64 && q99 < 128);
    }

    #[test]
    fn duration_records_micros() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(7));
        assert_eq!(h.sum(), 7);
    }

    #[test]
    #[should_panic(expected = "bucket index out of range")]
    fn bucket_bounds_checked() {
        let _ = bucket_bounds(HISTOGRAM_BUCKETS);
    }
}
