//! Open-loop load-measurement primitives: a coordinated-omission-
//! correcting latency recorder and windowed (delta) histogram
//! snapshots.
//!
//! A closed-loop harness that issues the next request only after the
//! previous one returns *hides* server stalls: during a 1 s stall it
//! simply issues fewer requests, so the stall appears once in the
//! histogram instead of the hundreds of times clients would have felt
//! it. The paper's saturation curves (Fig 14/15, Table 1) are exactly
//! the regime where this bias is worst. [`LatencyRecorder`] implements
//! the standard correction: operations are timed from their *intended*
//! start (arrival-schedule time, not actual issue time), and every
//! recorded latency longer than the expected inter-arrival interval
//! additionally backfills the samples the stall suppressed
//! (`latency - interval`, `latency - 2·interval`, …) into the corrected
//! histogram, HdrHistogram-style. The uncorrected view is kept
//! alongside so the bias itself is measurable.
//!
//! [`HistogramWindow`] turns the cumulative log2 histograms into
//! interval deltas — what happened *since the last look* — so a load
//! run can report warmup, steady-state, and churn phases separately
//! from one continuously-recording histogram. Summing every window
//! reproduces the lifetime histogram exactly (modulo samples recorded
//! concurrently with the read; see [`HistogramWindow::advance`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::{Histogram, HISTOGRAM_BUCKETS};
use crate::snapshot::{HistogramSample, MetricId};

/// Backfill cap per recorded sample: a pathological (latency, interval)
/// pair — a multi-minute stall against a microsecond schedule — would
/// otherwise spin this loop millions of times on the recording path.
/// Truncations are counted; a run that hits the cap is saturated far
/// past any regime where its quantiles are meaningful anyway.
pub const MAX_BACKFILL_PER_SAMPLE: u64 = 100_000;

/// Coordinated-omission-correcting latency recorder: a paired
/// (uncorrected, corrected) histogram.
///
/// * The **naive** side records the service latency alone — what a
///   closed-loop harness would have measured.
/// * The **corrected** side records the latency from the operation's
///   *intended* start (queueing delay included) and backfills the
///   arrivals a stall suppressed.
///
/// Corrected quantiles therefore dominate naive quantiles whenever the
/// system fell behind its arrival schedule; the two coincide when every
/// operation ran on time.
#[derive(Debug)]
pub struct LatencyRecorder {
    naive: Arc<Histogram>,
    corrected: Arc<Histogram>,
    backfilled: AtomicU64,
    truncated: AtomicU64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new()
    }
}

impl LatencyRecorder {
    /// A recorder over two private histograms.
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder::over(Arc::new(Histogram::new()), Arc::new(Histogram::new()))
    }

    /// A recorder writing into caller-supplied histograms — typically a
    /// registry's `load/latency_naive_us` and `load/latency_us` series,
    /// so the corrected distribution is visible to `stats`, snapshots,
    /// and the flight recorder without copying.
    #[must_use]
    pub fn over(naive: Arc<Histogram>, corrected: Arc<Histogram>) -> Self {
        LatencyRecorder {
            naive,
            corrected,
            backfilled: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
        }
    }

    /// Records one completed operation.
    ///
    /// `total_us` is the latency from the operation's intended start
    /// (wait-in-schedule plus service); `service_us` is the service
    /// portion alone; `interval_us` is the expected inter-arrival gap
    /// of the open-loop schedule (0 disables backfill). Callers without
    /// a schedule (closed-loop instrumentation) use [`Self::record`].
    pub fn record_op(&self, total_us: u64, service_us: u64, interval_us: u64) {
        self.naive.record(service_us);
        self.corrected.record(total_us);
        if interval_us == 0 {
            return;
        }
        // HdrHistogram's recordValueWithExpectedInterval: the arrivals
        // that should have started while this one was in flight would
        // each have waited one interval less.
        let mut missing = total_us.saturating_sub(interval_us);
        let mut backfilled = 0u64;
        while missing >= interval_us {
            if backfilled >= MAX_BACKFILL_PER_SAMPLE {
                self.truncated.fetch_add(1, Ordering::Relaxed);
                break;
            }
            self.corrected.record(missing);
            backfilled += 1;
            missing -= interval_us;
        }
        if backfilled > 0 {
            self.backfilled.fetch_add(backfilled, Ordering::Relaxed);
        }
    }

    /// Records a latency whose intended and actual starts coincide
    /// (closed-loop instrumented paths): naive and corrected receive
    /// the same value, and backfill alone corrects for omission.
    pub fn record(&self, latency_us: u64, interval_us: u64) {
        self.record_op(latency_us, latency_us, interval_us);
    }

    /// The uncorrected (service-time) histogram.
    #[must_use]
    pub fn naive(&self) -> &Arc<Histogram> {
        &self.naive
    }

    /// The corrected (intended-start, backfilled) histogram.
    #[must_use]
    pub fn corrected(&self) -> &Arc<Histogram> {
        &self.corrected
    }

    /// Synthetic samples backfilled so far.
    #[must_use]
    pub fn backfilled(&self) -> u64 {
        self.backfilled.load(Ordering::Relaxed)
    }

    /// Samples whose backfill hit [`MAX_BACKFILL_PER_SAMPLE`].
    #[must_use]
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }
}

/// Interval view over a cumulative [`Histogram`]: each
/// [`HistogramWindow::advance`] returns what was recorded since the
/// previous advance, leaving the underlying histogram untouched.
///
/// One window per reader: the cursor lives here, not in the histogram,
/// so any number of independent windows (per-phase readouts, a CLI
/// `--interval` loop, the flight recorder) can watch one histogram.
#[derive(Debug, Clone)]
pub struct HistogramWindow {
    prev_buckets: [u64; HISTOGRAM_BUCKETS],
    prev_count: u64,
    prev_sum: u64,
}

impl Default for HistogramWindow {
    fn default() -> Self {
        HistogramWindow::new()
    }
}

impl HistogramWindow {
    /// A window whose first advance returns everything recorded so far.
    #[must_use]
    pub fn new() -> Self {
        HistogramWindow {
            prev_buckets: [0; HISTOGRAM_BUCKETS],
            prev_count: 0,
            prev_sum: 0,
        }
    }

    /// A window opened at `h`'s current contents: the first advance
    /// returns only samples recorded after this call.
    #[must_use]
    pub fn opened_at(h: &Histogram) -> Self {
        let mut w = HistogramWindow::new();
        let _ = w.advance(h, MetricId::new("obs", "window", &[]));
        w
    }

    /// The delta since the last advance, as a [`HistogramSample`]
    /// attributed to `id`.
    ///
    /// Reads of the bucket array, count, and sum are not mutually
    /// atomic: samples recorded concurrently with the read may land in
    /// this window or the next, and a torn read can momentarily skew
    /// count versus buckets by the in-flight samples. Deltas saturate
    /// at zero, and every sample is eventually attributed to exactly
    /// one window once recording pauses — which is why summing all
    /// windows of a quiesced histogram equals its lifetime view.
    pub fn advance(&mut self, h: &Histogram, id: MetricId) -> HistogramSample {
        let buckets = h.buckets();
        let count = h.count();
        let sum = h.sum();
        let delta: Vec<(u32, u64)> = buckets
            .iter()
            .zip(self.prev_buckets.iter())
            .enumerate()
            .filter_map(|(i, (&now, &prev))| {
                let d = now.saturating_sub(prev);
                (d > 0).then(|| (u32::try_from(i).expect("bucket index"), d))
            })
            .collect();
        let sample = HistogramSample {
            id,
            count: count.saturating_sub(self.prev_count),
            sum: sum.saturating_sub(self.prev_sum),
            buckets: delta,
        };
        self.prev_buckets = buckets;
        self.prev_count = count;
        self.prev_sum = sum;
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::MetricId;

    fn id() -> MetricId {
        MetricId::new("load", "latency_us", &[])
    }

    #[test]
    fn on_schedule_ops_need_no_correction() {
        let r = LatencyRecorder::new();
        for _ in 0..100 {
            r.record_op(80, 80, 100);
        }
        assert_eq!(r.naive().count(), 100);
        assert_eq!(r.corrected().count(), 100);
        assert_eq!(r.backfilled(), 0);
        assert_eq!(r.naive().quantile(0.99), r.corrected().quantile(0.99));
    }

    #[test]
    fn stall_backfills_missed_arrivals() {
        let r = LatencyRecorder::new();
        // 99 on-time ops plus one 1 ms stall against a 100 us schedule:
        // the stall hides 9 arrivals (900, 800, ... 100 us).
        for _ in 0..99 {
            r.record_op(50, 50, 100);
        }
        r.record_op(1_000, 1_000, 100);
        assert_eq!(r.naive().count(), 100);
        assert_eq!(r.corrected().count(), 109);
        assert_eq!(r.backfilled(), 9);
        // The corrected tail dominates the naive tail.
        assert!(r.corrected().quantile(0.95) >= r.naive().quantile(0.95));
    }

    #[test]
    fn queueing_delay_separates_total_from_service() {
        let r = LatencyRecorder::new();
        // Fast service, long schedule slip: the naive side looks
        // healthy, the corrected side carries the wait.
        r.record_op(10_000, 50, 0);
        assert!(r.naive().quantile(1.0) < 1_000);
        assert!(r.corrected().quantile(1.0) >= 8_192);
        assert_eq!(r.backfilled(), 0); // interval 0 disables backfill
    }

    #[test]
    fn pathological_backfill_truncates() {
        let r = LatencyRecorder::new();
        r.record(u64::MAX / 2, 1);
        assert_eq!(r.backfilled(), MAX_BACKFILL_PER_SAMPLE);
        assert_eq!(r.truncated(), 1);
    }

    #[test]
    fn windows_partition_the_lifetime() {
        let h = Histogram::new();
        let mut w = HistogramWindow::new();
        for v in [1u64, 5, 9] {
            h.record(v);
        }
        let first = w.advance(&h, id());
        assert_eq!(first.count, 3);
        for v in [2u64, 1000] {
            h.record(v);
        }
        let second = w.advance(&h, id());
        assert_eq!(second.count, 2);
        assert_eq!(second.sum, 1002);
        // An idle window is empty.
        let third = w.advance(&h, id());
        assert_eq!(third.count, 0);
        assert!(third.buckets.is_empty());
        // First + second == lifetime.
        let mut merged = first.clone();
        let mut lifetime_window = HistogramWindow::new();
        let lifetime = lifetime_window.advance(&h, id());
        let mut snap_a = crate::Snapshot::default();
        snap_a.histograms.push(merged.clone());
        let mut snap_b = crate::Snapshot::default();
        snap_b.histograms.push(second.clone());
        snap_a.merge(&snap_b);
        merged = snap_a.histograms[0].clone();
        assert_eq!(merged.count, lifetime.count);
        assert_eq!(merged.sum, lifetime.sum);
        assert_eq!(merged.buckets, lifetime.buckets);
    }

    #[test]
    fn opened_at_skips_history() {
        let h = Histogram::new();
        h.record(7);
        let mut w = HistogramWindow::opened_at(&h);
        h.record(9);
        let delta = w.advance(&h, id());
        assert_eq!(delta.count, 1);
        assert_eq!(delta.sum, 9);
    }

    #[test]
    fn recorder_over_registry_histograms_shares_series() {
        let reg = crate::MetricsRegistry::new("bench");
        let r = LatencyRecorder::over(
            reg.histogram("load", "latency_naive_us"),
            reg.histogram("load", "latency_us"),
        );
        r.record_op(500, 100, 0);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("load", "latency_us").unwrap().count, 1);
        assert_eq!(snap.histogram("load", "latency_naive_us").unwrap().sum, 100);
    }
}
