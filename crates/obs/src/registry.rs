//! The [`MetricsRegistry`]: a namespace of metrics keyed by
//! `(subsystem, name, labels)`, plus the process-global default
//! registry used by standalone (non-clustered) components.
//!
//! Lookups happen at instrumentation-setup time; instrumented code
//! holds the returned `Arc` handles and updates them lock-free on hot
//! paths. Looking up an existing key returns the same underlying
//! metric, so independent call sites share one series.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::EventLog;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricId, Snapshot};
use crate::trace::Tracer;

/// A namespace of metrics plus an event log and a tracer,
/// snapshot-able as a unit.
pub struct MetricsRegistry {
    source: String,
    counters: Mutex<BTreeMap<MetricId, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricId, Arc<Histogram>>>,
    events: EventLog,
    tracer: Arc<Tracer>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// A fresh registry whose snapshots are attributed to `source`
    /// (e.g. `as-3`).
    #[must_use]
    pub fn new(source: &str) -> Self {
        MetricsRegistry {
            source: source.to_owned(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: EventLog::default(),
            tracer: Arc::new(Tracer::new(source)),
        }
    }

    /// This registry's causal tracer (sampling disabled until
    /// [`Tracer::set_sampling`] is called).
    #[must_use]
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The snapshot attribution name.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// This registry's event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The counter for `(subsystem, name)`, created on first use.
    #[must_use]
    pub fn counter(&self, subsystem: &str, name: &str) -> Arc<Counter> {
        self.counter_labeled(subsystem, name, &[])
    }

    /// The counter for `(subsystem, name, labels)`, created on first
    /// use.
    #[must_use]
    pub fn counter_labeled(
        &self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        Arc::clone(
            lock(&self.counters)
                .entry(MetricId::new(subsystem, name, labels))
                .or_default(),
        )
    }

    /// The gauge for `(subsystem, name)`, created on first use.
    #[must_use]
    pub fn gauge(&self, subsystem: &str, name: &str) -> Arc<Gauge> {
        self.gauge_labeled(subsystem, name, &[])
    }

    /// The gauge for `(subsystem, name, labels)`, created on first use.
    #[must_use]
    pub fn gauge_labeled(
        &self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.gauges)
                .entry(MetricId::new(subsystem, name, labels))
                .or_default(),
        )
    }

    /// The histogram for `(subsystem, name)`, created on first use.
    #[must_use]
    pub fn histogram(&self, subsystem: &str, name: &str) -> Arc<Histogram> {
        self.histogram_labeled(subsystem, name, &[])
    }

    /// The histogram for `(subsystem, name, labels)`, created on first
    /// use.
    #[must_use]
    pub fn histogram_labeled(
        &self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(MetricId::new(subsystem, name, labels))
                .or_default(),
        )
    }

    /// Visits every scalar the registry currently holds: counter
    /// values, gauge levels, and histogram counts and sums (saturated
    /// into `i64`). The flight recorder's sampling hook — one call per
    /// tick reads the whole registry without copying the maps.
    pub fn visit_scalars(&self, mut f: impl FnMut(&MetricId, crate::history::SeriesField, i64)) {
        use crate::history::SeriesField;
        for (id, c) in lock(&self.counters).iter() {
            f(
                id,
                SeriesField::Value,
                i64::try_from(c.get()).unwrap_or(i64::MAX),
            );
        }
        for (id, g) in lock(&self.gauges).iter() {
            f(id, SeriesField::Value, g.get());
        }
        for (id, h) in lock(&self.histograms).iter() {
            f(
                id,
                SeriesField::Count,
                i64::try_from(h.count()).unwrap_or(i64::MAX),
            );
            f(
                id,
                SeriesField::Sum,
                i64::try_from(h.sum()).unwrap_or(i64::MAX),
            );
        }
    }

    /// A point-in-time copy of every metric, ready to serialize or
    /// merge with other spaces' snapshots.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(id, c)| CounterSample {
                id: id.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(id, g)| GaugeSample {
                id: id.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(id, h)| {
                let buckets = h
                    .buckets()
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| (u32::try_from(i).expect("bucket index"), n))
                    .collect();
                HistogramSample {
                    id: id.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                }
            })
            .collect();
        Snapshot {
            sources: vec![self.source.clone()],
            counters,
            gauges,
            histograms,
        }
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("source", &self.source)
            .field("counters", &lock(&self.counters).len())
            .field("gauges", &lock(&self.gauges).len())
            .field("histograms", &lock(&self.histograms).len())
            .finish()
    }
}

/// The process-global registry, used by components not owned by an
/// address space (standalone channels, benches, client libraries).
#[must_use]
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new("process")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_one_metric() {
        let reg = MetricsRegistry::new("test");
        reg.counter("stm", "puts").add(2);
        reg.counter("stm", "puts").add(3);
        assert_eq!(reg.counter("stm", "puts").get(), 5);
        // A different label set is a different series.
        reg.counter_labeled("stm", "puts", &[("chan", "7")]).inc();
        assert_eq!(reg.counter("stm", "puts").get(), 5);
        assert_eq!(
            reg.counter_labeled("stm", "puts", &[("chan", "7")]).get(),
            1
        );
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = MetricsRegistry::new("test");
        reg.gauge_labeled("clf", "depth", &[("a", "1"), ("b", "2")])
            .set(9);
        assert_eq!(
            reg.gauge_labeled("clf", "depth", &[("b", "2"), ("a", "1")])
                .get(),
            9
        );
    }

    #[test]
    fn snapshot_reflects_current_values() {
        let reg = MetricsRegistry::new("as-1");
        reg.counter("clf", "packets_sent").add(4);
        reg.gauge("stm", "channel_items").set(2);
        reg.histogram("stm", "put_latency_us").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.sources, vec!["as-1".to_owned()]);
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 4);
        assert_eq!(snap.gauges[0].value, 2);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.histograms[0].sum, 100);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = Arc::clone(global());
        let b = Arc::clone(global());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.source(), "process");
    }
}
