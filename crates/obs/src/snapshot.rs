//! Point-in-time metric snapshots: serializable for the wire, and
//! mergeable so per-address-space snapshots aggregate cluster-wide.
//!
//! Two serializations exist:
//!
//! * [`Snapshot::encode`]/[`Snapshot::decode`] — a compact
//!   percent-escaped line format carried inside `StatsReport` replies.
//! * [`Snapshot::to_json`] — an export-only rendering for benchmark
//!   trajectory files (`results/BENCH_*.json`).

use std::collections::BTreeMap;
use std::fmt;

/// Identifies one metric series: `(subsystem, name, labels)`, with
/// labels kept sorted so equal sets compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Owning layer (`stm`, `gc`, `clf`, `rpc`, ...).
    pub subsystem: String,
    /// Measurement name with unit suffix (`put_latency_us`).
    pub name: String,
    /// Qualifying key/value pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// A key with canonically sorted labels.
    #[must_use]
    pub fn new(subsystem: &str, name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricId {
            subsystem: subsystem.to_owned(),
            name: name.to_owned(),
            labels,
        }
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.subsystem, self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Which series.
    pub id: MetricId,
    /// The count.
    pub value: u64,
}

/// One gauge's level at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Which series.
    pub id: MetricId,
    /// The level.
    pub value: i64,
}

/// One histogram's distribution at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Which series.
    pub id: MetricId,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Sparse `(bucket index, count)` pairs, sorted by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSample {
    /// Mean sample, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile, linearly interpolated within the bucket where
    /// the cumulative count crosses `q * count` (samples assumed
    /// uniform across the bucket). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0;
        }
        let threshold = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(i, n) in &self.buckets {
            if seen + n >= threshold {
                return crate::metrics::interpolate_quantile(i as usize, seen, n, threshold);
            }
            seen += n;
        }
        u64::MAX
    }
}

/// A mergeable point-in-time view of one or more registries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Which registries contributed (sorted, deduplicated).
    pub sources: Vec<String>,
    /// Counter samples, sorted by id.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, sorted by id.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, sorted by id.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Folds `other` into `self`: sources union; counters and gauges
    /// sum per series; histograms add counts, sums, and buckets
    /// element-wise. Associative and count-preserving.
    pub fn merge(&mut self, other: &Snapshot) {
        for s in &other.sources {
            if !self.sources.contains(s) {
                self.sources.push(s.clone());
            }
        }
        self.sources.sort();

        let mut counters: BTreeMap<MetricId, u64> =
            self.counters.drain(..).map(|c| (c.id, c.value)).collect();
        for c in &other.counters {
            *counters.entry(c.id.clone()).or_insert(0) += c.value;
        }
        self.counters = counters
            .into_iter()
            .map(|(id, value)| CounterSample { id, value })
            .collect();

        let mut gauges: BTreeMap<MetricId, i64> =
            self.gauges.drain(..).map(|g| (g.id, g.value)).collect();
        for g in &other.gauges {
            *gauges.entry(g.id.clone()).or_insert(0) += g.value;
        }
        self.gauges = gauges
            .into_iter()
            .map(|(id, value)| GaugeSample { id, value })
            .collect();

        let mut histograms: BTreeMap<MetricId, (u64, u64, BTreeMap<u32, u64>)> = self
            .histograms
            .drain(..)
            .map(|h| (h.id, (h.count, h.sum, h.buckets.into_iter().collect())))
            .collect();
        for h in &other.histograms {
            let entry = histograms
                .entry(h.id.clone())
                .or_insert((0, 0, BTreeMap::new()));
            entry.0 += h.count;
            entry.1 += h.sum;
            for &(i, n) in &h.buckets {
                *entry.2.entry(i).or_insert(0) += n;
            }
        }
        self.histograms = histograms
            .into_iter()
            .map(|(id, (count, sum, buckets))| HistogramSample {
                id,
                count,
                sum,
                buckets: buckets.into_iter().collect(),
            })
            .collect();
    }

    /// The change since `prev`, for per-window rate readouts: counters
    /// and histogram counts/sums/buckets subtract series-wise
    /// (saturating at zero, so a restarted source reads as its full
    /// current value rather than wrapping), while gauges keep their
    /// current level — a gauge is already an instantaneous reading and
    /// a "delta gauge" would be meaningless. Series absent from `prev`
    /// contribute their full value; series only in `prev` are dropped
    /// (their source left the cluster). Counters and histograms that
    /// did not move in the window are dropped entirely, and histogram
    /// buckets that delta to zero are omitted, so `quantile` on the
    /// result reflects only the window's samples and a quiet window
    /// reads as a short snapshot.
    #[must_use]
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        let prev_counters: BTreeMap<&MetricId, u64> =
            prev.counters.iter().map(|c| (&c.id, c.value)).collect();
        let prev_hists: BTreeMap<&MetricId, &HistogramSample> =
            prev.histograms.iter().map(|h| (&h.id, h)).collect();
        Snapshot {
            sources: self.sources.clone(),
            counters: self
                .counters
                .iter()
                .filter_map(|c| {
                    let value = c
                        .value
                        .saturating_sub(prev_counters.get(&c.id).copied().unwrap_or(0));
                    (value > 0).then(|| CounterSample {
                        id: c.id.clone(),
                        value,
                    })
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|h| {
                    let base = prev_hists.get(&h.id);
                    let prev_buckets: BTreeMap<u32, u64> = base
                        .map(|b| b.buckets.iter().copied().collect())
                        .unwrap_or_default();
                    let count = h.count.saturating_sub(base.map(|b| b.count).unwrap_or(0));
                    (count > 0).then(|| HistogramSample {
                        id: h.id.clone(),
                        count,
                        sum: h.sum.saturating_sub(base.map(|b| b.sum).unwrap_or(0)),
                        buckets: h
                            .buckets
                            .iter()
                            .filter_map(|&(i, n)| {
                                let d =
                                    n.saturating_sub(prev_buckets.get(&i).copied().unwrap_or(0));
                                (d > 0).then_some((i, d))
                            })
                            .collect(),
                    })
                })
                .collect(),
        }
    }

    /// The counter value for `(subsystem, name)` ignoring labels
    /// (summed across label sets), or `None` when absent.
    #[must_use]
    pub fn counter_value(&self, subsystem: &str, name: &str) -> Option<u64> {
        let mut found = None;
        for c in &self.counters {
            if c.id.subsystem == subsystem && c.id.name == name {
                *found.get_or_insert(0) += c.value;
            }
        }
        found
    }

    /// The first gauge sample for `(subsystem, name)`, if any.
    #[must_use]
    pub fn gauge_value(&self, subsystem: &str, name: &str) -> Option<i64> {
        let mut found = None;
        for g in &self.gauges {
            if g.id.subsystem == subsystem && g.id.name == name {
                *found.get_or_insert(0) += g.value;
            }
        }
        found
    }

    /// The first histogram sample for `(subsystem, name)`, if any.
    #[must_use]
    pub fn histogram(&self, subsystem: &str, name: &str) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.id.subsystem == subsystem && h.id.name == name)
    }

    /// Serializes to the compact line format carried by `StatsReport`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::from("obs1\n");
        for s in &self.sources {
            out.push_str(&format!("S {}\n", escape(s)));
        }
        for c in &self.counters {
            out.push_str(&format!("C {} {}\n", encode_id(&c.id), c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("G {} {}\n", encode_id(&g.id), g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!("H {} {} {}", encode_id(&h.id), h.count, h.sum));
            for &(i, n) in &h.buckets {
                out.push_str(&format!(" {i}:{n}"));
            }
            out.push('\n');
        }
        out.into_bytes()
    }

    /// Parses the [`Snapshot::encode`] format.
    ///
    /// # Errors
    ///
    /// [`SnapshotParseError`] naming the offending line.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotParseError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotParseError::new(0, "snapshot is not utf-8"))?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "obs1")) => {}
            _ => return Err(SnapshotParseError::new(1, "bad header")),
        }
        let mut snap = Snapshot::default();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| SnapshotParseError::new(lineno, msg);
            let mut fields = line.split(' ');
            let kind = fields.next().ok_or_else(|| err("empty line"))?;
            match kind {
                "S" => {
                    let name = fields.next().ok_or_else(|| err("missing source"))?;
                    snap.sources
                        .push(unescape(name).ok_or_else(|| err("bad escape"))?);
                }
                "C" => {
                    let id = decode_id(&mut fields).ok_or_else(|| err("bad metric id"))?;
                    let value = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad counter value"))?;
                    snap.counters.push(CounterSample { id, value });
                }
                "G" => {
                    let id = decode_id(&mut fields).ok_or_else(|| err("bad metric id"))?;
                    let value = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad gauge value"))?;
                    snap.gauges.push(GaugeSample { id, value });
                }
                "H" => {
                    let id = decode_id(&mut fields).ok_or_else(|| err("bad metric id"))?;
                    let count = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad histogram count"))?;
                    let sum = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad histogram sum"))?;
                    let mut buckets = Vec::new();
                    for pair in fields {
                        let (i, n) = pair
                            .split_once(':')
                            .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)))
                            .ok_or_else(|| err("bad bucket pair"))?;
                        buckets.push((i, n));
                    }
                    snap.histograms.push(HistogramSample {
                        id,
                        count,
                        sum,
                        buckets,
                    });
                }
                _ => return Err(err("unknown record kind")),
            }
        }
        Ok(snap)
    }

    /// Renders as JSON for benchmark trajectory files.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"sources\": [");
        for (i, s) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(s));
        }
        out.push_str("],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{{}, \"value\": {}}}",
                json_id(&c.id),
                c.value
            ));
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{{}, \"value\": {}}}",
                json_id(&g.id),
                g.value
            ));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets = h
                .buckets
                .iter()
                .map(|&(i, n)| format!("[{i}, {n}]"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{{}, \"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [{}]}}",
                json_id(&h.id),
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.quantile(0.999),
                buckets
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// A malformed [`Snapshot::encode`] payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotParseError {
    line: usize,
    message: String,
}

impl SnapshotParseError {
    pub(crate) fn new(line: usize, message: &str) -> Self {
        SnapshotParseError {
            line,
            message: message.to_owned(),
        }
    }
}

impl fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for SnapshotParseError {}

pub(crate) fn is_plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-')
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_plain(b) {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

pub(crate) fn encode_id(id: &MetricId) -> String {
    let labels = if id.labels.is_empty() {
        "-".to_owned()
    } else {
        id.labels
            .iter()
            .map(|(k, v)| format!("{}={}", escape(k), escape(v)))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{} {} {}", escape(&id.subsystem), escape(&id.name), labels)
}

pub(crate) fn decode_id<'a>(fields: &mut impl Iterator<Item = &'a str>) -> Option<MetricId> {
    let subsystem = unescape(fields.next()?)?;
    let name = unescape(fields.next()?)?;
    let labels_field = fields.next()?;
    let mut labels = Vec::new();
    if labels_field != "-" {
        for pair in labels_field.split(',') {
            let (k, v) = pair.split_once('=')?;
            labels.push((unescape(k)?, unescape(v)?));
        }
    }
    labels.sort();
    Some(MetricId {
        subsystem,
        name,
        labels,
    })
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_id(id: &MetricId) -> String {
    let labels = id
        .labels
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "\"subsystem\": {}, \"name\": {}, \"labels\": {{{}}}",
        json_string(&id.subsystem),
        json_string(&id.name),
        labels
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            sources: vec!["as-0".into(), "as-1".into()],
            counters: vec![CounterSample {
                id: MetricId::new("clf", "packets_sent", &[("transport", "udp")]),
                value: 42,
            }],
            gauges: vec![GaugeSample {
                id: MetricId::new("stm", "channel_items", &[]),
                value: -3,
            }],
            histograms: vec![HistogramSample {
                id: MetricId::new("stm", "put_latency_us", &[]),
                count: 3,
                sum: 70,
                buckets: vec![(4, 2), (6, 1)],
            }],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn escaping_survives_awkward_strings() {
        let mut snap = Snapshot::default();
        snap.sources.push("spaced name %50\n".into());
        snap.counters.push(CounterSample {
            id: MetricId::new("a b", "x=y", &[("k,1", "v 2")]),
            value: 1,
        });
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Snapshot::decode(b"nope").is_err());
        assert!(Snapshot::decode(b"obs1\nZ what").is_err());
        assert!(Snapshot::decode(b"obs1\nC stm puts - notanumber").is_err());
        assert!(Snapshot::decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn merge_sums_per_series() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.sources, vec!["as-0".to_owned(), "as-1".to_owned()]);
        assert_eq!(a.counter_value("clf", "packets_sent"), Some(84));
        assert_eq!(a.gauge_value("stm", "channel_items"), Some(-6));
        let h = a.histogram("stm", "put_latency_us").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 140);
        assert_eq!(h.buckets, vec![(4, 4), (6, 2)]);
    }

    #[test]
    fn merge_with_empty_is_identity_on_values() {
        let mut a = sample();
        a.merge(&Snapshot::default());
        let mut b = Snapshot::default();
        b.merge(&sample());
        assert_eq!(a, b);
        assert_eq!(a.counter_value("clf", "packets_sent"), Some(42));
    }

    #[test]
    fn lookup_helpers_sum_across_labels() {
        let mut snap = sample();
        snap.counters.push(CounterSample {
            id: MetricId::new("clf", "packets_sent", &[("transport", "mem")]),
            value: 8,
        });
        assert_eq!(snap.counter_value("clf", "packets_sent"), Some(50));
        assert_eq!(snap.counter_value("clf", "absent"), None);
    }

    #[test]
    fn histogram_sample_quantiles() {
        let h = HistogramSample {
            id: MetricId::new("stm", "x", &[]),
            count: 100,
            sum: 0,
            buckets: vec![(4, 99), (17, 1)],
        };
        // Interpolated within bucket 4 [8, 16): 8 + 8*50/99.
        assert_eq!(h.quantile(0.5), 12);
        assert!(h.quantile(1.0) >= (1 << 16));
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn delta_since_subtracts_counters_and_buckets() {
        let prev = sample();
        let mut now = sample();
        now.counters[0].value = 100;
        now.gauges[0].value = 7;
        now.histograms[0].count = 5;
        now.histograms[0].sum = 120;
        now.histograms[0].buckets = vec![(4, 2), (6, 2), (9, 1)];
        let delta = now.delta_since(&prev);
        assert_eq!(delta.counter_value("clf", "packets_sent"), Some(58));
        // Gauges carry the level, not a difference.
        assert_eq!(delta.gauge_value("stm", "channel_items"), Some(7));
        let h = delta.histogram("stm", "put_latency_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 50);
        // Bucket 4 was unchanged (2 -> 2) and is dropped from the delta.
        assert_eq!(h.buckets, vec![(6, 1), (9, 1)]);
        // A fresh series appears whole; unmoved series drop out of the
        // window entirely (only gauges keep reporting their level).
        let idle = now.delta_since(&now);
        assert_eq!(idle.counter_value("clf", "packets_sent"), None);
        assert!(idle.histogram("stm", "put_latency_us").is_none());
        assert_eq!(idle.gauge_value("stm", "channel_items"), Some(7));
        let fresh = now.delta_since(&Snapshot::default());
        assert_eq!(fresh.counter_value("clf", "packets_sent"), Some(100));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = sample().to_json();
        assert!(json.contains("\"packets_sent\""));
        assert!(json.contains("\"transport\": \"udp\""));
        assert!(json.contains("\"p50\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
