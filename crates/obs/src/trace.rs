//! End-to-end causal tracing of item lifecycles.
//!
//! The Space-Time Memory model gives every item a *timestamp*; this
//! module gives every sampled item a *trace*. A [`TraceContext`] is
//! born when a producer puts the item (deterministically sampled every
//! nth timestamp), rides along in the item's attributes and in an
//! optional RPC-header field across address spaces, and every
//! lifecycle edge — put, wire transfer, surrogate/proxy RPC, get,
//! consume, GC reclamation, `synchronize()` waits — records a
//! [`Span`] into a bounded per-address-space [`SpanStore`]. Pulling
//! and merging the stores cluster-wide yields one causally connected
//! timeline per `(channel, timestamp)` item, exportable as Chrome
//! trace-event JSON (`chrome://tracing` / Perfetto).
//!
//! Identifiers are seeded from the tracer's source name (splitmix64
//! over a counter) — no wall-clock entropy — so traces are
//! reproducible run to run, which the chaos suite and CI rely on.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifies one causal trace: every span of one item's lifecycle
/// shares its `TraceId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The propagated trace context: which trace, and which span is the
/// causal parent of whatever happens next. Carried in item attributes
/// and in the optional RPC-header field of both codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace every descendant span joins.
    pub trace: TraceId,
    /// The parent span for the next recorded edge.
    pub span: SpanId,
}

/// The lifecycle edge a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A producer placed the item into a channel or queue.
    Put,
    /// CLF handed the frame to the wire (includes retransmits in
    /// `detail`).
    WireSend,
    /// CLF delivered the frame from the wire.
    WireRecv,
    /// A surrogate or proxy carried the operation over RPC.
    Rpc,
    /// A consumer read the item.
    Get,
    /// A consumer marked the item consumed / advanced virtual time
    /// past it.
    Consume,
    /// The distributed GC reclaimed the item.
    GcReclaim,
    /// `synchronize()` blocked waiting for the next period.
    SyncWait,
    /// `synchronize()` arrived late and fired the exception handler.
    SyncLate,
}

impl SpanKind {
    /// The stable wire/name-format identifier.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Put => "put",
            SpanKind::WireSend => "wire_send",
            SpanKind::WireRecv => "wire_recv",
            SpanKind::Rpc => "rpc",
            SpanKind::Get => "get",
            SpanKind::Consume => "consume",
            SpanKind::GcReclaim => "gc_reclaim",
            SpanKind::SyncWait => "sync_wait",
            SpanKind::SyncLate => "sync_late",
        }
    }

    /// Parses [`SpanKind::name`] output.
    #[must_use]
    pub fn from_name(name: &str) -> Option<SpanKind> {
        Some(match name {
            "put" => SpanKind::Put,
            "wire_send" => SpanKind::WireSend,
            "wire_recv" => SpanKind::WireRecv,
            "rpc" => SpanKind::Rpc,
            "get" => SpanKind::Get,
            "consume" => SpanKind::Consume,
            "gc_reclaim" => SpanKind::GcReclaim,
            "sync_wait" => SpanKind::SyncWait,
            "sync_late" => SpanKind::SyncLate,
            _ => return None,
        })
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded lifecycle edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which address space recorded it (`as-0`, `client`, ...).
    pub source: String,
    /// The trace it belongs to.
    pub trace: TraceId,
    /// Its own id.
    pub id: SpanId,
    /// Causal parent, when known.
    pub parent: Option<SpanId>,
    /// Which lifecycle edge.
    pub kind: SpanKind,
    /// The resource touched (`chan:0/1`, `queue:2/0`, a channel
    /// name, or a subsystem like `rtsync`).
    pub resource: String,
    /// The STM timestamp of the item, or the tick index for sync
    /// spans.
    pub ts: i64,
    /// Microseconds since the recording tracer's epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Freeform qualifier (`retransmits=2`, `late_by=3ms`, ...).
    pub detail: String,
}

/// A bounded, overwrite-oldest span store. Recording never blocks:
/// the slot index comes from an atomic ticket, and a contended slot
/// drops the span (counted) rather than waiting.
pub struct SpanStore {
    slots: Vec<Mutex<Option<Span>>>,
    ticket: AtomicU64,
    dropped: AtomicU64,
}

/// Default per-address-space span capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

impl SpanStore {
    /// A store retaining at most `capacity` spans (newest win).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanStore {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            ticket: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one span; on slot contention the span is dropped so
    /// the hot path never blocks.
    pub fn record(&self, span: Span) {
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.slots.len() as u64) as usize;
        match self.slots[slot].try_lock() {
            Ok(mut guard) => *guard = Some(span),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Spans dropped due to slot contention.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total spans ever recorded (including overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
    }

    /// A copy of every retained span, ordered by start time.
    #[must_use]
    pub fn collect(&self) -> Vec<Span> {
        let mut out: Vec<Span> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|s| (s.start_us, s.id));
        out
    }

    /// Empties the store (tests and benches).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

impl fmt::Debug for SpanStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanStore")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-address-space tracing front end: deterministic sampling,
/// seeded id generation, and the span store.
pub struct Tracer {
    source: String,
    epoch: Instant,
    /// splitmix64 counter, seeded from the source name.
    ids: AtomicU64,
    /// Sample every nth timestamp; 0 disables tracing.
    every_nth: AtomicU64,
    store: SpanStore,
}

impl Tracer {
    /// A tracer attributed to `source`, sampling disabled, with the
    /// default span capacity.
    #[must_use]
    pub fn new(source: &str) -> Self {
        Tracer {
            source: source.to_owned(),
            epoch: Instant::now(),
            ids: AtomicU64::new(fnv1a(source)),
            every_nth: AtomicU64::new(0),
            store: SpanStore::new(DEFAULT_SPAN_CAPACITY),
        }
    }

    /// The attribution name stamped on recorded spans.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Sets the sampling period: trace every `every_nth`th timestamp
    /// (1 = everything, 0 = off).
    pub fn set_sampling(&self, every_nth: u64) {
        self.every_nth.store(every_nth, Ordering::Relaxed);
    }

    /// The current sampling period (0 = off).
    #[must_use]
    pub fn sampling(&self) -> u64 {
        self.every_nth.load(Ordering::Relaxed)
    }

    /// Whether items at timestamp `ts` are sampled. Deterministic:
    /// every address space agrees on which timestamps are traced.
    #[must_use]
    pub fn sample(&self, ts: i64) -> bool {
        match self.every_nth.load(Ordering::Relaxed) {
            0 => false,
            n => ts.rem_euclid(i64::try_from(n).unwrap_or(i64::MAX).max(1)) == 0,
        }
    }

    /// Microseconds since this tracer was created; span clock.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn next_id(&self) -> u64 {
        // `| 1` keeps 0 free as a wire sentinel for "no context".
        splitmix64(self.ids.fetch_add(1, Ordering::Relaxed)) | 1
    }

    /// Starts a new trace for a sampled timestamp, or `None` when
    /// `ts` falls outside the sampling period.
    #[must_use]
    pub fn begin_trace(&self, ts: i64) -> Option<TraceContext> {
        if !self.sample(ts) {
            return None;
        }
        Some(TraceContext {
            trace: TraceId(self.next_id()),
            span: SpanId(self.next_id()),
        })
    }

    /// Records a timed span closing now, started at `start_us`
    /// (from [`Tracer::now_us`]); returns the context descendants
    /// should parent under.
    pub fn finish(
        &self,
        ctx: TraceContext,
        kind: SpanKind,
        resource: &str,
        ts: i64,
        start_us: u64,
        detail: &str,
    ) -> TraceContext {
        let id = SpanId(self.next_id());
        let now = self.now_us();
        self.store.record(Span {
            source: self.source.clone(),
            trace: ctx.trace,
            id,
            parent: Some(ctx.span),
            kind,
            resource: resource.to_owned(),
            ts,
            start_us,
            dur_us: now.saturating_sub(start_us),
            detail: detail.to_owned(),
        });
        TraceContext {
            trace: ctx.trace,
            span: id,
        }
    }

    /// Records an instantaneous span (duration 0) happening now.
    pub fn instant(
        &self,
        ctx: TraceContext,
        kind: SpanKind,
        resource: &str,
        ts: i64,
        detail: &str,
    ) -> TraceContext {
        let now = self.now_us();
        self.finish(ctx, kind, resource, ts, now, detail)
    }

    /// This tracer's span store.
    #[must_use]
    pub fn store(&self) -> &SpanStore {
        &self.store
    }

    /// A mergeable dump of every retained span.
    #[must_use]
    pub fn dump(&self) -> TraceDump {
        TraceDump {
            spans: self.store.collect(),
            dropped: self.store.dropped(),
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("source", &self.source)
            .field("every_nth", &self.sampling())
            .field("store", &self.store)
            .finish()
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The ambient trace context of the calling thread, if any.
#[must_use]
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Replaces the calling thread's ambient context, returning the old
/// one. Prefer [`scope`] which restores automatically.
pub fn set_current(ctx: Option<TraceContext>) -> Option<TraceContext> {
    CURRENT.with(|c| c.replace(ctx))
}

/// Restores the previous ambient context when dropped.
#[derive(Debug)]
pub struct ScopeGuard {
    prev: Option<TraceContext>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        set_current(self.prev.take());
    }
}

/// Installs `ctx` as the ambient context until the guard drops.
#[must_use]
pub fn scope(ctx: Option<TraceContext>) -> ScopeGuard {
    ScopeGuard {
        prev: set_current(ctx),
    }
}

/// A serializable, mergeable collection of spans — the trace
/// analogue of [`crate::Snapshot`], carried by `TraceReport` replies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceDump {
    /// Retained spans, ordered by `(start_us, id)` within a source.
    pub spans: Vec<Span>,
    /// Spans lost to store contention, summed across sources.
    pub dropped: u64,
}

impl TraceDump {
    /// Folds `other` in: spans union (deduplicated by
    /// `(source, trace, id)`), dropped counts summed. Associative.
    pub fn merge(&mut self, other: &TraceDump) {
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<(String, u64, u64)> = self
            .spans
            .iter()
            .map(|s| (s.source.clone(), s.trace.0, s.id.0))
            .collect();
        for span in &other.spans {
            if seen.insert((span.source.clone(), span.trace.0, span.id.0)) {
                self.spans.push(span.clone());
            }
        }
        self.dropped += other.dropped;
        self.spans
            .sort_by(|a, b| (a.start_us, &a.source, a.id.0).cmp(&(b.start_us, &b.source, b.id.0)));
    }

    /// The distinct trace ids present, sorted.
    #[must_use]
    pub fn traces(&self) -> Vec<TraceId> {
        let mut out: Vec<TraceId> = self.spans.iter().map(|s| s.trace).collect();
        out.sort();
        out.dedup();
        out
    }

    /// All spans of one trace, ordered by start time.
    #[must_use]
    pub fn spans_for(&self, trace: TraceId) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.trace == trace).collect()
    }

    /// Spans grouped per item — keyed by `(trace, ts)` so one
    /// item's lifecycle across every address space lands in one
    /// timeline.
    #[must_use]
    pub fn timelines(&self) -> Vec<((TraceId, i64), Vec<&Span>)> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(u64, i64), Vec<&Span>> = BTreeMap::new();
        for span in &self.spans {
            groups
                .entry((span.trace.0, span.ts))
                .or_default()
                .push(span);
        }
        groups
            .into_iter()
            .map(|((trace, ts), spans)| ((TraceId(trace), ts), spans))
            .collect()
    }

    /// Serializes to the compact line format carried by
    /// `TraceReport`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("trc1 {}\n", self.dropped);
        for s in &self.spans {
            let parent = s
                .parent
                .map_or_else(|| "-".to_owned(), |p| format!("{:016x}", p.0));
            out.push_str(&format!(
                "P {} {:016x} {:016x} {} {} {} {} {} {} {}\n",
                escape(&s.source),
                s.trace.0,
                s.id.0,
                parent,
                s.kind.name(),
                escape(&s.resource),
                s.ts,
                s.start_us,
                s.dur_us,
                escape(&s.detail),
            ));
        }
        out.into_bytes()
    }

    /// Parses the [`TraceDump::encode`] format.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] naming the offending line.
    pub fn decode(bytes: &[u8]) -> Result<TraceDump, TraceParseError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| TraceParseError::new(0, "trace dump is not utf-8"))?;
        let mut lines = text.lines().enumerate();
        let dropped = match lines.next() {
            Some((_, header)) => {
                let mut parts = header.split(' ');
                if parts.next() != Some("trc1") {
                    return Err(TraceParseError::new(1, "bad header"));
                }
                parts
                    .next()
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| TraceParseError::new(1, "bad dropped count"))?
            }
            None => return Err(TraceParseError::new(1, "empty dump")),
        };
        let mut dump = TraceDump {
            spans: Vec::new(),
            dropped,
        };
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| TraceParseError::new(lineno, msg);
            let mut f = line.split(' ');
            if f.next() != Some("P") {
                return Err(err("unknown record kind"));
            }
            let source = unescape(f.next().ok_or_else(|| err("missing source"))?)
                .ok_or_else(|| err("bad source escape"))?;
            let trace = parse_hex(f.next()).ok_or_else(|| err("bad trace id"))?;
            let id = parse_hex(f.next()).ok_or_else(|| err("bad span id"))?;
            let parent = match f.next().ok_or_else(|| err("missing parent"))? {
                "-" => None,
                p => Some(SpanId(
                    u64::from_str_radix(p, 16).map_err(|_| err("bad parent id"))?,
                )),
            };
            let kind = f
                .next()
                .and_then(SpanKind::from_name)
                .ok_or_else(|| err("bad span kind"))?;
            let resource = unescape(f.next().ok_or_else(|| err("missing resource"))?)
                .ok_or_else(|| err("bad resource escape"))?;
            let ts = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad ts"))?;
            let start_us = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad start"))?;
            let dur_us = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad duration"))?;
            let detail = unescape(f.next().unwrap_or("")).ok_or_else(|| err("bad detail"))?;
            dump.spans.push(Span {
                source,
                trace: TraceId(trace),
                id: SpanId(id),
                parent,
                kind,
                resource,
                ts,
                start_us,
                dur_us,
                detail,
            });
        }
        Ok(dump)
    }

    /// Renders as Chrome trace-event JSON (the `traceEvents` object
    /// form), loadable in `chrome://tracing` and Perfetto. Each
    /// source becomes one pid (with a process-name metadata event);
    /// each trace becomes one tid so an item's lifecycle reads as a
    /// single row. Per-source clocks are normalized to start at 0.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        use std::collections::BTreeMap;
        let mut sources: Vec<&str> = self.spans.iter().map(|s| s.source.as_str()).collect();
        sources.sort_unstable();
        sources.dedup();
        let pid_of: BTreeMap<&str, usize> =
            sources.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut base: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.spans {
            let b = base.entry(s.source.as_str()).or_insert(u64::MAX);
            *b = (*b).min(s.start_us);
        }
        let mut events = Vec::new();
        for (&src, &pid) in &pid_of {
            events.push(format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": {}}}}}",
                json_string(src)
            ));
        }
        for s in &self.spans {
            let pid = pid_of[s.source.as_str()];
            let tid = s.trace.0 % 1_000_000;
            let ts = s.start_us - base[s.source.as_str()];
            let parent = s
                .parent
                .map_or_else(|| "null".to_owned(), |p| json_string(&p.to_string()));
            events.push(format!(
                "{{\"name\": {}, \"cat\": \"{}\", \"ph\": \"X\", \"pid\": {pid}, \
                 \"tid\": {tid}, \"ts\": {ts}, \"dur\": {}, \"args\": {{\
                 \"trace\": {}, \"span\": {}, \"parent\": {parent}, \
                 \"item_ts\": {}, \"detail\": {}}}}}",
                json_string(&format!("{} {}", s.kind.name(), s.resource)),
                s.kind.name(),
                s.dur_us.max(1),
                json_string(&s.trace.to_string()),
                json_string(&s.id.to_string()),
                s.ts,
                json_string(&s.detail),
            ));
        }
        let mut out = String::from("{\"traceEvents\": [\n  ");
        out.push_str(&events.join(",\n  "));
        out.push_str(&format!(
            "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"dropped_spans\": {}}}}}\n",
            self.dropped
        ));
        out
    }
}

fn parse_hex(field: Option<&str>) -> Option<u64> {
    u64::from_str_radix(field?, 16).ok()
}

/// A malformed [`TraceDump::encode`] payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    line: usize,
    message: String,
}

impl TraceParseError {
    fn new(line: usize, message: &str) -> Self {
        TraceParseError {
            line,
            message: message.to_owned(),
        }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace dump parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

fn is_plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-' | b':' | b'/' | b'=')
}

fn escape(s: &str) -> String {
    if s.is_empty() {
        return "%".to_owned();
    }
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_plain(b) {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    if s == "%" {
        return Some(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampled_tracer(source: &str, nth: u64) -> Tracer {
        let t = Tracer::new(source);
        t.set_sampling(nth);
        t
    }

    #[test]
    fn sampling_is_deterministic_and_periodic() {
        let t = sampled_tracer("as-0", 4);
        assert!(t.sample(0));
        assert!(!t.sample(1));
        assert!(!t.sample(3));
        assert!(t.sample(4));
        assert!(t.sample(8));
        // Negative timestamps use euclidean remainder.
        assert!(t.sample(-4));
        assert!(!t.sample(-3));
        // Off by default.
        assert!(!Tracer::new("x").sample(0));
        // Every-1 samples everything.
        assert!(sampled_tracer("y", 1).sample(17));
    }

    #[test]
    fn ids_are_seeded_not_random() {
        let a = Tracer::new("as-0");
        let b = Tracer::new("as-0");
        a.set_sampling(1);
        b.set_sampling(1);
        let ca = a.begin_trace(0).unwrap();
        let cb = b.begin_trace(0).unwrap();
        assert_eq!(ca, cb, "same source must yield the same id stream");
        let other = Tracer::new("as-1");
        other.set_sampling(1);
        assert_ne!(other.begin_trace(0).unwrap().trace, ca.trace);
        // 0 is reserved for "no context" on the wire.
        assert_ne!(ca.trace.0, 0);
        assert_ne!(ca.span.0, 0);
    }

    #[test]
    fn finish_links_parent_and_returns_child_context() {
        let t = sampled_tracer("as-0", 1);
        let root = t.begin_trace(7).unwrap();
        let start = t.now_us();
        let child = t.finish(root, SpanKind::Put, "chan:0/1", 7, start, "");
        assert_eq!(child.trace, root.trace);
        assert_ne!(child.span, root.span);
        let dump = t.dump();
        assert_eq!(dump.spans.len(), 1);
        let span = &dump.spans[0];
        assert_eq!(span.parent, Some(root.span));
        assert_eq!(span.id, child.span);
        assert_eq!(span.kind, SpanKind::Put);
        assert_eq!(span.source, "as-0");
    }

    #[test]
    fn store_bounds_and_never_blocks() {
        let store = SpanStore::new(4);
        let mk = |i: u64| Span {
            source: "s".into(),
            trace: TraceId(1),
            id: SpanId(i),
            parent: None,
            kind: SpanKind::Get,
            resource: "r".into(),
            ts: 0,
            start_us: i,
            dur_us: 0,
            detail: String::new(),
        };
        for i in 0..10 {
            store.record(mk(i));
        }
        let kept = store.collect();
        assert_eq!(kept.len(), 4);
        assert_eq!(store.recorded(), 10);
        // Newest four survive.
        assert!(kept.iter().all(|s| s.id.0 >= 6));
    }

    #[test]
    fn ambient_context_scoping() {
        assert_eq!(current(), None);
        let ctx = TraceContext {
            trace: TraceId(1),
            span: SpanId(2),
        };
        {
            let _g = scope(Some(ctx));
            assert_eq!(current(), Some(ctx));
            {
                let inner = TraceContext {
                    trace: TraceId(3),
                    span: SpanId(4),
                };
                let _g2 = scope(Some(inner));
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(ctx));
        }
        assert_eq!(current(), None);
    }

    fn sample_dump() -> TraceDump {
        let t = sampled_tracer("as-0", 1);
        let root = t.begin_trace(5).unwrap();
        let s = t.now_us();
        let c = t.finish(root, SpanKind::Put, "chan:0/1", 5, s, "bytes=64");
        t.instant(c, SpanKind::GcReclaim, "chan:0/1", 5, "policy=transparent");
        t.dump()
    }

    #[test]
    fn dump_encode_decode_round_trips() {
        let dump = sample_dump();
        let decoded = TraceDump::decode(&dump.encode()).unwrap();
        assert_eq!(decoded, dump);
    }

    #[test]
    fn dump_survives_awkward_strings() {
        let mut dump = TraceDump::default();
        dump.spans.push(Span {
            source: "weird space %50\n".into(),
            trace: TraceId(9),
            id: SpanId(10),
            parent: None,
            kind: SpanKind::Rpc,
            resource: String::new(),
            ts: -3,
            start_us: 1,
            dur_us: 2,
            detail: "a b=c,d".into(),
        });
        let decoded = TraceDump::decode(&dump.encode()).unwrap();
        assert_eq!(decoded, dump);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TraceDump::decode(b"nope").is_err());
        assert!(TraceDump::decode(b"trc1 0\nZ what").is_err());
        assert!(TraceDump::decode(b"trc1 0\nP s xx yy - put r 0 0 0 %").is_err());
        assert!(TraceDump::decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn merge_dedups_and_sums_dropped() {
        let mut a = sample_dump();
        let n = a.spans.len();
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.spans.len(), n, "identical spans must deduplicate");
        assert_eq!(a.dropped, 0);
        // A span from another source is kept.
        let other = Tracer::new("as-1");
        other.set_sampling(1);
        let ctx = other.begin_trace(5).unwrap();
        other.instant(ctx, SpanKind::Get, "chan:0/1", 5, "");
        a.merge(&other.dump());
        assert_eq!(a.spans.len(), n + 1);
    }

    #[test]
    fn timelines_group_by_trace_and_ts() {
        let t = sampled_tracer("as-0", 1);
        for ts in [3, 4] {
            let ctx = t.begin_trace(ts).unwrap();
            t.instant(ctx, SpanKind::Put, "chan:0/0", ts, "");
        }
        let dump = t.dump();
        let timelines = dump.timelines();
        assert_eq!(timelines.len(), 2);
        assert_eq!(timelines[0].1.len(), 1);
    }

    #[test]
    fn chrome_export_is_balanced_json_with_metadata() {
        let json = sample_dump().to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("gc_reclaim"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn spans_for_filters_one_trace() {
        let dump = sample_dump();
        let traces = dump.traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(dump.spans_for(traces[0]).len(), dump.spans.len());
    }
}
