//! Property tests of the flight-recorder history structures: the
//! delta-encoded wire format must round-trip any sample window exactly,
//! the ring must overwrite oldest-first with a faithful drop count, and
//! merging overlapping windows pulled through two different nodes must
//! reconstruct the union without duplicating or losing samples.

use proptest::prelude::*;

use dstampede_obs::{HistoryDump, MetricId, RingSeries, SeriesField, SeriesHistory};

const SOURCES: &[&str] = &["as-0", "as 1", "a%b=c", "nöde-2"];
const SUBSYSTEMS: &[&str] = &["stm", "clf", "rpc"];
const NAMES: &[&str] = &["puts", "msgs_sent", "srtt_us"];
const LABELS: &[&[(&str, &str)]] = &[&[], &[("transport", "udp")], &[("resource", "channel")]];

fn field_of(k: u8) -> SeriesField {
    match k % 3 {
        0 => SeriesField::Value,
        1 => SeriesField::Count,
        _ => SeriesField::Sum,
    }
}

/// One generated series: pool indices plus a drop count and raw
/// samples (timestamps and values both unconstrained — the delta codec
/// must survive descending clocks and sign flips).
type SeriesSpec = ((u8, u8, u8, u8, u8), u64, Vec<(i64, i64)>);

/// Builds a dump with key-deduplicated, key-sorted series, matching the
/// invariant `HistoryDump::decode` restores.
fn build_dump(specs: Vec<SeriesSpec>) -> HistoryDump {
    let mut by_key = std::collections::BTreeMap::new();
    for ((src, sub, name, lab, fld), dropped, samples) in specs {
        let series = SeriesHistory {
            source: SOURCES[src as usize % SOURCES.len()].to_owned(),
            id: MetricId::new(
                SUBSYSTEMS[sub as usize % SUBSYSTEMS.len()],
                NAMES[name as usize % NAMES.len()],
                LABELS[lab as usize % LABELS.len()],
            ),
            field: field_of(fld),
            dropped,
            samples,
        };
        by_key.insert(
            (series.source.clone(), series.id.clone(), series.field),
            series,
        );
    }
    HistoryDump {
        series: by_key.into_values().collect(),
    }
}

fn arb_dump() -> BoxedStrategy<HistoryDump> {
    proptest::collection::vec(
        (
            (
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
            ),
            any::<u64>(),
            proptest::collection::vec((any::<i64>(), any::<i64>()), 0..24),
        ),
        0..8,
    )
    .prop_map(build_dump)
    .boxed()
}

proptest! {
    /// Encode → decode reproduces every series — sources with spaces
    /// and escapes, arbitrary (even wrapping) timestamp/value deltas,
    /// empty windows — bit for bit.
    #[test]
    fn encode_decode_round_trips(dump in arb_dump()) {
        let decoded = HistoryDump::decode(&dump.encode()).unwrap();
        prop_assert_eq!(decoded, dump);
    }

    /// A ring retains exactly the newest `capacity` samples: length,
    /// drop count, and the reconstructed window all agree with a plain
    /// Vec truncated from the front.
    #[test]
    fn ring_overwrites_oldest_at_capacity(
        capacity in 1usize..16,
        pushes in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..64),
    ) {
        let mut ring = RingSeries::new(capacity);
        for &(ts, v) in &pushes {
            ring.push(ts, v);
        }
        let expect_len = pushes.len().min(capacity);
        prop_assert_eq!(ring.len(), expect_len);
        prop_assert_eq!(ring.dropped(), (pushes.len() - expect_len) as u64);
        let tail: Vec<(i64, i64)> = pushes[pushes.len() - expect_len..].to_vec();
        prop_assert_eq!(ring.samples(), tail);
    }

    /// Two nodes pull overlapping windows of the same origin ring;
    /// merging them — in either order — reconstructs the union of the
    /// windows with no duplicate timestamps and the larger drop count.
    #[test]
    fn merge_reunites_overlapping_windows(
        ticks in proptest::collection::vec(any::<i64>(), 1..32),
        split in any::<u8>(),
        overlap in any::<u8>(),
        drops in (any::<u32>(), any::<u32>()),
    ) {
        // The origin series: strictly ascending timestamps, arbitrary
        // monotone counter values.
        let truth: Vec<(i64, i64)> = ticks
            .iter()
            .enumerate()
            .map(|(i, &v)| (1_000 * i as i64, v))
            .collect();
        // Window A is a prefix, window B a suffix, overlapping in the
        // middle (B starts at or before A's end).
        let end_a = split as usize % truth.len() + 1; // 1..=len
        let start_b = overlap as usize % end_a; // 0..end_a
        let id = MetricId::new("stm", "puts", &[]);
        let window = |samples: Vec<(i64, i64)>, dropped: u64| HistoryDump {
            series: vec![SeriesHistory {
                source: "as-0".to_owned(),
                id: id.clone(),
                field: SeriesField::Value,
                dropped,
                samples,
            }],
        };
        let a = window(truth[..end_a].to_vec(), u64::from(drops.0));
        let b = window(truth[start_b..].to_vec(), u64::from(drops.1));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for merged in [&ab, &ba] {
            prop_assert_eq!(merged.series.len(), 1);
            let s = &merged.series[0];
            prop_assert_eq!(&s.samples, &truth);
            prop_assert_eq!(s.dropped, u64::from(drops.0.max(drops.1)));
        }
        prop_assert_eq!(ab, ba);
    }
}
