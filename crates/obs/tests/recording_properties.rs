//! Property tests of the open-loop recording primitives
//! (`dstampede_obs::recording`):
//!
//! * The coordinated-omission corrector only ever *adds* tail mass —
//!   for any workload where intended-start latency dominates service
//!   latency (which it does by construction: total >= service), the
//!   corrected histogram dominates the naive one at every quantile,
//!   and an injected stall strictly grows the corrected count.
//! * Windowed readout is lossless — merging the per-interval deltas of
//!   an arbitrarily-sliced recording reproduces the lifetime histogram
//!   exactly, and `Snapshot::delta_since` round-trips against `merge`.
//! * Interpolated quantiles are sane — inside the crossing bucket,
//!   monotone in `q`.

use proptest::prelude::*;

use dstampede_obs::recording::{HistogramWindow, LatencyRecorder};
use dstampede_obs::{bucket_bounds, Histogram, MetricId, Snapshot, HISTOGRAM_BUCKETS};

const QS: &[f64] = &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];

fn id() -> MetricId {
    MetricId::new("load", "latency_us", &[])
}

proptest! {
    /// In the coordinated-omission regime — a system that keeps up
    /// with its schedule (service < interval) except for stalls — the
    /// corrected distribution dominates the naive one at every probed
    /// quantile: each op's total >= its service, and every backfilled
    /// sample is >= interval, i.e. above the whole service
    /// distribution. (Without the service < interval constraint the
    /// property is genuinely false: backfill adds samples as small as
    /// one interval, which can sit below slow services.)
    #[test]
    fn corrected_dominates_naive_at_every_quantile(
        interval in 100u64..10_000,
        ops in proptest::collection::vec((0u64..100, 0u64..50), 1..200),
    ) {
        let r = LatencyRecorder::new();
        for &(svc_pct, stall_intervals) in &ops {
            // service strictly below the schedule interval; a nonzero
            // stall delays the intended start by whole intervals.
            let service = interval * svc_pct / 100;
            let total = service + interval * stall_intervals;
            r.record_op(total, service, interval);
        }
        for &q in QS {
            prop_assert!(
                r.corrected().quantile(q) >= r.naive().quantile(q),
                "q={q}: corrected {} < naive {}",
                r.corrected().quantile(q),
                r.naive().quantile(q)
            );
        }
    }

    /// Replaying the same on-schedule workload with one synthetic stall
    /// inserted backfills the hidden arrivals: the corrected count
    /// grows by exactly stall/interval extra samples and the corrected
    /// tail dominates the stall-free corrected tail.
    #[test]
    fn synthetic_stall_backfills_and_raises_the_tail(
        base_latency in 1u64..100,
        n_ops in 10usize..200,
        interval in 100u64..10_000,
        stall_intervals in 2u64..500,
    ) {
        let calm = LatencyRecorder::new();
        let stalled = LatencyRecorder::new();
        // A stall spanning `stall_intervals` schedule slots hides
        // stall_intervals - 1 arrivals (the stalled op itself occupies
        // the first slot; base_latency < interval is the sub-slot tail).
        let stall = interval * stall_intervals + base_latency;
        let hidden = stall_intervals - 1;
        for _ in 0..n_ops {
            calm.record_op(base_latency, base_latency, interval);
            stalled.record_op(base_latency, base_latency, interval);
        }
        stalled.record_op(stall, stall, interval);
        calm.record_op(base_latency, base_latency, interval);

        prop_assert_eq!(calm.backfilled(), 0);
        prop_assert_eq!(stalled.backfilled(), hidden);
        prop_assert_eq!(
            stalled.corrected().count(),
            calm.corrected().count() + hidden
        );
        for &q in QS {
            prop_assert!(stalled.corrected().quantile(q) >= calm.corrected().quantile(q));
        }
        // The uncorrected view underreports: naive gained one slow
        // sample where corrected gained 1 + stall_intervals.
        prop_assert_eq!(stalled.naive().count(), calm.naive().count());
    }

    /// Slicing a recording into arbitrary windows and merging the
    /// deltas reproduces the lifetime histogram exactly.
    #[test]
    fn interval_windows_merge_to_lifetime(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..50),
            1..10,
        ),
    ) {
        let h = Histogram::new();
        let mut w = HistogramWindow::new();
        let mut merged = Snapshot::default();
        for chunk in &chunks {
            for &v in chunk {
                h.record(v);
            }
            let mut windowed = Snapshot::default();
            windowed.histograms.push(w.advance(&h, id()));
            merged.merge(&windowed);
        }
        let lifetime = HistogramWindow::new().advance(&h, id());
        let got = merged.histogram("load", "latency_us").unwrap();
        prop_assert_eq!(got.count, lifetime.count);
        prop_assert_eq!(got.sum, lifetime.sum);
        prop_assert_eq!(&got.buckets, &lifetime.buckets);
        for &q in QS {
            prop_assert_eq!(got.quantile(q), lifetime.quantile(q));
        }
    }

    /// delta_since is the inverse of merge on histogram series:
    /// (prev merge delta).delta_since(prev) == delta.
    #[test]
    fn delta_since_inverts_merge(
        prev_vals in proptest::collection::vec(0u64..100_000, 0..40),
        delta_vals in proptest::collection::vec(0u64..100_000, 0..40),
    ) {
        let h = Histogram::new();
        let mut w = HistogramWindow::new();
        for &v in &prev_vals {
            h.record(v);
        }
        let mut prev = Snapshot::default();
        prev.histograms.push(w.advance(&h, id()));
        for &v in &delta_vals {
            h.record(v);
        }
        let expected = w.clone().advance(&h, id());
        let mut now = Snapshot::default();
        now.histograms.push(HistogramWindow::new().advance(&h, id()));
        let got = now.delta_since(&prev);
        match got.histogram("load", "latency_us") {
            Some(got) => {
                prop_assert_eq!(got.count, expected.count);
                prop_assert_eq!(got.sum, expected.sum);
                prop_assert_eq!(&got.buckets, &expected.buckets);
            }
            // An unmoved series drops out of the window entirely.
            None => prop_assert_eq!(expected.count, 0),
        }
    }

    /// Interpolated quantiles stay inside the bucket whose cumulative
    /// count crosses the threshold, and are monotone in q.
    #[test]
    fn quantiles_stay_in_bucket_and_are_monotone(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let buckets = h.buckets();
        let total: u64 = buckets.iter().sum();
        let mut last = 0u64;
        for &q in QS {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
            // Locate the crossing bucket independently and check
            // membership.
            let threshold = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
            let mut seen = 0;
            let mut crossing = HISTOGRAM_BUCKETS - 1;
            for (i, &n) in buckets.iter().enumerate() {
                if seen + n >= threshold {
                    crossing = i;
                    break;
                }
                seen += n;
            }
            let (lo, hi) = bucket_bounds(crossing);
            prop_assert!(v >= lo && v < hi.max(lo + 1), "q={q} value {v} outside [{lo}, {hi})");
        }
    }
}
