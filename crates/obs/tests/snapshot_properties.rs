//! Property tests of [`Snapshot::merge`]: the cluster-wide stats pull
//! merges per-address-space snapshots in whatever order replies arrive,
//! so merging must be associative and lossless (no sample is dropped or
//! double-counted regardless of grouping).

use proptest::prelude::*;

use dstampede_obs::{CounterSample, GaugeSample, HistogramSample, MetricId, Snapshot};

const SUBSYSTEMS: &[&str] = &["stm", "gc", "clf", "rpc"];
const NAMES: &[&str] = &["puts", "reclaimed_bytes", "latency_us"];
const LABELS: &[&[(&str, &str)]] = &[
    &[],
    &[("transport", "udp")],
    &[("transport", "mem"), ("kind", "channel")],
];

/// One generated sample: `(kind, subsystem, name, labels, value)`
/// indices plus a raw value.
type Entry = (u8, u8, u8, u8, u32);

/// Builds a canonical snapshot by folding singleton snapshots into an
/// accumulator, with one source drawn from a small pool.
fn build_snapshot((source, entries): (u8, Vec<Entry>)) -> Snapshot {
    let mut snap = Snapshot::default();
    snap.sources.push(format!("as-{}", source % 4));
    for &(kind, s, n, l, v) in &entries {
        let id = MetricId::new(
            SUBSYSTEMS[s as usize % SUBSYSTEMS.len()],
            NAMES[n as usize % NAMES.len()],
            LABELS[l as usize % LABELS.len()],
        );
        let mut single = Snapshot::default();
        match kind % 3 {
            0 => single.counters.push(CounterSample {
                id,
                value: u64::from(v),
            }),
            1 => single.gauges.push(GaugeSample {
                id,
                value: i64::from(v as i32),
            }),
            _ => single.histograms.push(HistogramSample {
                id,
                count: 1,
                sum: u64::from(v),
                buckets: vec![(v % 64, 1)],
            }),
        }
        snap.merge(&single);
    }
    snap
}

fn arb_snapshot() -> BoxedStrategy<Snapshot> {
    (
        any::<u8>(),
        proptest::collection::vec(
            (
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<u32>(),
            ),
            0..12,
        ),
    )
        .prop_map(build_snapshot)
        .boxed()
}

/// Totals that merging must preserve exactly: every sample either keeps
/// its own series or sums into a colliding one, so per-kind totals add.
#[derive(Debug, PartialEq, Eq)]
struct Totals {
    counter_sum: u64,
    gauge_sum: i64,
    histogram_count: u64,
    histogram_sum: u64,
    bucket_count: u64,
}

fn totals(snap: &Snapshot) -> Totals {
    Totals {
        counter_sum: snap.counters.iter().map(|c| c.value).sum(),
        gauge_sum: snap.gauges.iter().map(|g| g.value).sum(),
        histogram_count: snap.histograms.iter().map(|h| h.count).sum(),
        histogram_sum: snap.histograms.iter().map(|h| h.sum).sum(),
        bucket_count: snap
            .histograms
            .iter()
            .flat_map(|h| &h.buckets)
            .map(|&(_, n)| n)
            .sum(),
    }
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// Grouping never matters: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`.
    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// Merging is lossless: per-kind totals add exactly, and the source
    /// set is the union.
    #[test]
    fn merge_preserves_totals(a in arb_snapshot(), b in arb_snapshot()) {
        let m = merged(&a, &b);
        let (ta, tb, tm) = (totals(&a), totals(&b), totals(&m));
        prop_assert_eq!(tm.counter_sum, ta.counter_sum + tb.counter_sum);
        prop_assert_eq!(tm.gauge_sum, ta.gauge_sum + tb.gauge_sum);
        prop_assert_eq!(
            tm.histogram_count,
            ta.histogram_count + tb.histogram_count
        );
        prop_assert_eq!(tm.histogram_sum, ta.histogram_sum + tb.histogram_sum);
        prop_assert_eq!(tm.bucket_count, ta.bucket_count + tb.bucket_count);

        let mut union: Vec<String> = a.sources.clone();
        for s in &b.sources {
            if !union.contains(s) {
                union.push(s.clone());
            }
        }
        union.sort();
        prop_assert_eq!(m.sources, union);
    }

    /// The empty snapshot is the merge identity on canonical snapshots.
    #[test]
    fn empty_is_identity(a in arb_snapshot()) {
        prop_assert_eq!(merged(&a, &Snapshot::default()), a.clone());
        prop_assert_eq!(merged(&Snapshot::default(), &a), a);
    }

    /// The wire format round-trips any generated snapshot, so remote
    /// per-space reports survive the `StatsReport` hop unchanged.
    #[test]
    fn encode_decode_round_trips(a in arb_snapshot()) {
        let decoded = Snapshot::decode(&a.encode()).unwrap();
        prop_assert_eq!(decoded, a);
    }
}
