//! Address spaces: the unit of distribution.
//!
//! A D-Stampede computation is a set of *address spaces* ("the server
//! program creates multiple address spaces N₁ … N_k in the cluster", paper
//! §4), each owning a registry of channels and queues and connected to its
//! peers by CLF. An [`AddressSpace`] runs a dispatcher thread that fields
//! operations arriving from other address spaces; operations that may
//! block (a `get` waiting for an item) are offloaded to short-lived worker
//! threads so the dispatcher stays responsive — the threads-for-surrogates
//! structure of the original system.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use dstampede_clf::{ClfError, ClfTransport, TransportStats};
use dstampede_core::gc::{GcSummary, MinFloorAggregator};
use dstampede_core::thread::ThreadRegistry;
use dstampede_core::VirtualTime;
use dstampede_core::{
    AsId, ChanId, Channel, ChannelAttrs, Item, Queue, QueueAttrs, QueueId, ResourceId, StmError,
    StmRegistry, StmResult, Timestamp,
};
use dstampede_obs::{
    trace, HealthEngine, HealthPolicy, HealthReport, HealthState, HistoryDump, HistoryRecorder,
    MetricsRegistry, Snapshot, SpanKind, TraceContext, TraceDump,
};
use dstampede_wire::{NsEntry, Reply, ReplyFrame, Request, RequestFrame, WaitSpec};

use crate::exec::{execute, is_blocking, ConnTable};
use crate::failure::RpcConfig;
use crate::nameserver::NameServer;
use crate::placement::{self, Placement};
use crate::proto::{self, AsMessage, NO_REPLY};
use crate::proxy::{ChannelRef, QueueRef};
use crate::recorder::RecorderConfig;
use crate::replicate::{ReplicaAttrs, ReplicaStore, Replicator};

/// A call awaiting its reply: the reply channel plus the destination, so
/// a peer-death declaration can fail exactly the calls bound for that
/// peer.
struct PendingCall {
    tx: Sender<ReplyFrame>,
    dst: AsId,
}

/// One address space of a D-Stampede computation.
pub struct AddressSpace {
    id: AsId,
    registry: Arc<StmRegistry>,
    threads: Arc<ThreadRegistry>,
    transport: Arc<dyn ClfTransport>,
    nameserver: Option<Arc<NameServer>>,
    pending: Mutex<HashMap<u64, PendingCall>>,
    next_seq: AtomicU64,
    next_req_id: AtomicU64,
    conns: Arc<ConnTable>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    down: AtomicBool,
    gc_agg: Mutex<MinFloorAggregator>,
    gc_epochs: AtomicU64,
    metrics: Arc<MetricsRegistry>,
    peers: Mutex<Vec<AsId>>,
    last_heard: Mutex<HashMap<AsId, Instant>>,
    dead_peers: Mutex<HashSet<AsId>>,
    rpc: Mutex<RpcConfig>,
    /// Peers known NOT to understand the batched put/get frames; the proxy
    /// layer downgrades batches to singleton frames for them.
    batch_incapable: Mutex<HashSet<AsId>>,
    /// Peers known NOT to understand the flight-recorder pulls
    /// ([`Request::HistoryPull`]/[`Request::HealthPull`]); the cluster
    /// fan-outs skip them instead of erroring.
    recorder_incapable: Mutex<HashSet<AsId>>,
    /// The flight recorder's per-series sample rings.
    history: HistoryRecorder,
    /// Derived per-peer/per-resource health, behind a mutex so
    /// [`AddressSpace::set_health_policy`] can swap hysteresis before
    /// the first tick.
    health: Mutex<Arc<HealthEngine>>,
    /// Ticks recorded so far (the health engine's clock).
    recorder_ticks: AtomicU64,
    /// Transport counters at the previous tick, for per-tick deltas.
    prev_transport: Mutex<TransportStats>,
    /// Abnormal session-teardown count (dirty + lease-expired) at the
    /// previous tick, for the `sessions` churn subject's delta.
    prev_session_teardowns: Mutex<u64>,
    /// Where placed creates (end-device `ChannelCreate`/`QueueCreate`)
    /// land: hashed over live members, or the paper's creator-local.
    placement: Mutex<Placement>,
    /// Whether hosted containers are replicated to a follower.
    replication: AtomicBool,
    /// Replicas this space keeps on behalf of its peers.
    replicas: Arc<ReplicaStore>,
    /// The primary-side replication pump, started on demand.
    replicator: Mutex<Option<Arc<Replicator>>>,
    /// Failover adoptions performed here: dead primary's resource → the
    /// promoted local resource.
    promotions: Mutex<HashMap<ResourceId, ResourceId>>,
    /// Per-creation nonce feeding anonymous-resource placement keys.
    create_nonce: AtomicU64,
    /// Event-driven runtime handle, when the cluster runs in reactor
    /// mode. Lazily-started services (the replication pump) clock
    /// themselves on its timer wheel instead of spawning threads.
    reactor: Mutex<Option<crate::reactor::Reactor>>,
}

impl AddressSpace {
    /// Starts an address space on a transport. The address space's id is
    /// the transport's local id; pass `host_nameserver = true` for exactly
    /// one address space per computation (conventionally
    /// [`AsId::NAMESERVER`]).
    #[must_use]
    pub fn start(transport: Arc<dyn ClfTransport>, host_nameserver: bool) -> Arc<Self> {
        let id = transport.local();
        let metrics = Arc::new(MetricsRegistry::new(&format!("as-{}", id.0)));
        transport.bind_metrics(&metrics);
        let space = Arc::new(AddressSpace {
            id,
            registry: StmRegistry::with_metrics(id, Arc::clone(&metrics)),
            threads: ThreadRegistry::new(),
            transport,
            nameserver: host_nameserver.then(|| Arc::new(NameServer::new())),
            pending: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(1),
            next_req_id: AtomicU64::new(1),
            conns: Arc::new(ConnTable::new()),
            dispatcher: Mutex::new(None),
            down: AtomicBool::new(false),
            gc_agg: Mutex::new(MinFloorAggregator::new()),
            gc_epochs: AtomicU64::new(0),
            metrics,
            peers: Mutex::new(Vec::new()),
            last_heard: Mutex::new(HashMap::new()),
            dead_peers: Mutex::new(HashSet::new()),
            rpc: Mutex::new(RpcConfig::default()),
            batch_incapable: Mutex::new(HashSet::new()),
            recorder_incapable: Mutex::new(HashSet::new()),
            history: HistoryRecorder::new(dstampede_obs::DEFAULT_HISTORY_CAPACITY),
            health: Mutex::new(Arc::new(HealthEngine::new(HealthPolicy::default()))),
            recorder_ticks: AtomicU64::new(0),
            prev_transport: Mutex::new(TransportStats::default()),
            prev_session_teardowns: Mutex::new(0),
            placement: Mutex::new(Placement::default()),
            replication: AtomicBool::new(false),
            replicas: Arc::new(ReplicaStore::default()),
            replicator: Mutex::new(None),
            promotions: Mutex::new(HashMap::new()),
            create_nonce: AtomicU64::new(1),
            reactor: Mutex::new(None),
        });
        let dispatch_space = Arc::clone(&space);
        let handle = std::thread::Builder::new()
            .name(format!("as-{}-dispatch", id.0))
            .spawn(move || dispatch_loop(&dispatch_space))
            .expect("spawning the dispatcher thread failed");
        *space.dispatcher.lock() = Some(handle);
        space
    }

    /// This address space's id.
    #[must_use]
    pub fn id(&self) -> AsId {
        self.id
    }

    /// The container registry this address space owns.
    #[must_use]
    pub fn registry(&self) -> &Arc<StmRegistry> {
        &self.registry
    }

    /// The thread registry of this address space.
    #[must_use]
    pub fn threads(&self) -> &Arc<ThreadRegistry> {
        &self.threads
    }

    /// The CLF transport connecting this address space to its peers.
    #[must_use]
    pub fn transport(&self) -> &Arc<dyn ClfTransport> {
        &self.transport
    }

    /// The name server, when hosted here.
    #[must_use]
    pub fn nameserver(&self) -> Option<&Arc<NameServer>> {
        self.nameserver.as_ref()
    }

    /// Creates a channel owned by this address space.
    pub fn create_channel(&self, name: Option<String>, attrs: ChannelAttrs) -> Arc<Channel> {
        self.registry.create_channel(name, attrs)
    }

    /// Creates a queue owned by this address space.
    pub fn create_queue(&self, name: Option<String>, attrs: QueueAttrs) -> Arc<Queue> {
        self.registry.create_queue(name, attrs)
    }

    /// Sets the placement policy for placed creates (the cluster builder
    /// applies this to every member).
    pub fn set_placement(&self, placement: Placement) {
        *self.placement.lock() = placement;
    }

    /// The current placement policy.
    #[must_use]
    pub fn placement(&self) -> Placement {
        *self.placement.lock()
    }

    /// Hands this space a reactor: subsequently-started background
    /// services (the replication pump) run as timer-wheel tasks on it.
    pub fn set_reactor(&self, reactor: crate::reactor::Reactor) {
        *self.reactor.lock() = Some(reactor);
    }

    /// The reactor this space runs on, in reactor mode.
    #[must_use]
    pub fn reactor(&self) -> Option<crate::reactor::Reactor> {
        self.reactor.lock().clone()
    }

    /// Enables or disables replication of containers hosted here.
    pub fn set_replication(&self, on: bool) {
        self.replication.store(on, Ordering::SeqCst);
    }

    /// Whether hosted containers are replicated to a follower.
    #[must_use]
    pub fn replication_enabled(&self) -> bool {
        self.replication.load(Ordering::SeqCst)
    }

    /// The replicas this space keeps on behalf of its peers.
    #[must_use]
    pub fn replicas(&self) -> &Arc<ReplicaStore> {
        &self.replicas
    }

    /// The replication pump, if any puts have been replicated from here.
    #[must_use]
    pub fn replicator(&self) -> Option<Arc<Replicator>> {
        self.replicator.lock().clone()
    }

    /// The promoted local resource adopted for `resource` after its
    /// primary died, if this space performed that promotion.
    #[must_use]
    pub fn promotion_of(&self, resource: ResourceId) -> Option<ResourceId> {
        self.promotions.lock().get(&resource).copied()
    }

    /// Follows the failover pointer for a resource whose owner died:
    /// first this space's own promotions, then the name server's
    /// synthetic `promoted:<resource>` registration. `None` when no
    /// promotion happened (the resource was unreplicated, or its items
    /// died with the primary).
    #[must_use]
    pub fn resolve_failover(self: &Arc<Self>, resource: ResourceId) -> Option<ResourceId> {
        if let Some(new) = self.promotion_of(resource) {
            return Some(new);
        }
        match self.ns_lookup(&format!("promoted:{resource}")) {
            Ok((new, _)) => Some(new),
            Err(_) => None,
        }
    }

    /// Members not declared dead, in id order (placement's domain).
    #[must_use]
    pub fn live_members(&self) -> Vec<AsId> {
        let dead = self.dead_peers.lock();
        let mut live: Vec<AsId> = self
            .peers
            .lock()
            .iter()
            .copied()
            .filter(|p| !dead.contains(p))
            .collect();
        if live.is_empty() {
            live.push(self.id); // a solo space always hosts itself
        }
        live.sort_unstable_by_key(|m| m.0);
        live
    }

    /// Creates a channel wherever placement policy dictates: locally
    /// under [`Placement::CreatorLocal`], else on the live member that
    /// wins the rendezvous hash (which may still be this space).
    ///
    /// # Errors
    ///
    /// The remote creation's RPC error when the winner is another
    /// member and the call fails.
    pub fn create_channel_placed(
        self: &Arc<Self>,
        name: Option<String>,
        attrs: ChannelAttrs,
    ) -> StmResult<ChanId> {
        match self.placed_target(name.as_deref()) {
            Some(target) if target != self.id => {
                match self.call(target, Request::ChannelCreate { name, attrs })? {
                    Reply::Created {
                        resource: ResourceId::Channel(id),
                    } => Ok(id),
                    other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
                }
            }
            _ => Ok(self.host_channel(name, attrs).id()),
        }
    }

    /// Queue counterpart of [`AddressSpace::create_channel_placed`].
    ///
    /// # Errors
    ///
    /// As [`AddressSpace::create_channel_placed`].
    pub fn create_queue_placed(
        self: &Arc<Self>,
        name: Option<String>,
        attrs: QueueAttrs,
    ) -> StmResult<QueueId> {
        match self.placed_target(name.as_deref()) {
            Some(target) if target != self.id => {
                match self.call(target, Request::QueueCreate { name, attrs })? {
                    Reply::Created {
                        resource: ResourceId::Queue(id),
                    } => Ok(id),
                    other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
                }
            }
            _ => Ok(self.host_queue(name, attrs).id()),
        }
    }

    /// The member a new resource should land on, or `None` to create
    /// locally (creator-local policy, or nothing else alive).
    fn placed_target(&self, name: Option<&str>) -> Option<AsId> {
        if self.placement() == Placement::CreatorLocal {
            return None;
        }
        let nonce = self.create_nonce.fetch_add(1, Ordering::Relaxed);
        let key = placement::creation_key(name, self.id, nonce);
        placement::place(key, &self.live_members())
    }

    /// Creates a channel here as the terminal host: the container is
    /// local, and when replication is on it gains a follower replica and
    /// a put hook feeding the replication window.
    pub fn host_channel(
        self: &Arc<Self>,
        name: Option<String>,
        attrs: ChannelAttrs,
    ) -> Arc<Channel> {
        let chan = self.registry.create_channel(name.clone(), attrs);
        let resource = ResourceId::Channel(chan.id());
        if let Some(follower) = self.pick_follower(resource) {
            let open = Request::ReplicaOpenChannel {
                chan: chan.id(),
                name,
                attrs,
            };
            if self.open_replica(resource, follower, open) {
                let repl = self.replicator_handle();
                chan.add_put_hook(move |ev| repl.enqueue(ev));
            }
        }
        chan
    }

    /// Queue counterpart of [`AddressSpace::host_channel`].
    pub fn host_queue(self: &Arc<Self>, name: Option<String>, attrs: QueueAttrs) -> Arc<Queue> {
        let queue = self.registry.create_queue(name.clone(), attrs);
        let resource = ResourceId::Queue(queue.id());
        if let Some(follower) = self.pick_follower(resource) {
            let open = Request::ReplicaOpenQueue {
                queue: queue.id(),
                name,
                attrs,
            };
            if self.open_replica(resource, follower, open) {
                let repl = self.replicator_handle();
                queue.add_put_hook(move |ev| repl.enqueue(ev));
            }
        }
        queue
    }

    /// The follower for a resource hosted here: the rendezvous winner
    /// among the *other* live members, or `None` when replication is off
    /// or this space is alone.
    fn pick_follower(&self, resource: ResourceId) -> Option<AsId> {
        if !self.replication_enabled() {
            return None;
        }
        let others: Vec<AsId> = self
            .live_members()
            .into_iter()
            .filter(|m| *m != self.id)
            .collect();
        placement::place(placement::resource_key(resource), &others)
    }

    /// Records the replication route and schedules the follower's
    /// `ReplicaOpen*` — delivered asynchronously by the replicator's pump
    /// thread, because this may run on the dispatcher (a forwarded
    /// create), which must never block on its own peer RPC. `false` only
    /// when the follower is already known incapable (an old peer).
    fn open_replica(self: &Arc<Self>, resource: ResourceId, follower: AsId, open: Request) -> bool {
        let repl = self.replicator_handle();
        repl.track(resource, follower, open);
        repl.follower_of(resource).is_some()
    }

    /// The replication pump, started on first use.
    fn replicator_handle(self: &Arc<Self>) -> Arc<Replicator> {
        let mut slot = self.replicator.lock();
        if let Some(repl) = slot.as_ref() {
            return Arc::clone(repl);
        }
        let repl = match self.reactor() {
            Some(reactor) => Replicator::start_reactor(self, &reactor),
            None => Replicator::start(self),
        };
        *slot = Some(Arc::clone(&repl));
        repl
    }

    /// Resolves a channel id into a location-transparent reference.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] when the id is local but unknown.
    /// Remote ids resolve lazily: a dangling remote id fails at connect
    /// time instead.
    pub fn open_channel(self: &Arc<Self>, id: ChanId) -> StmResult<ChannelRef> {
        if id.owner == self.id {
            Ok(ChannelRef::local(self.registry.channel(id)?))
        } else {
            Ok(ChannelRef::remote(id, Arc::clone(self)))
        }
    }

    /// Resolves a queue id into a location-transparent reference.
    ///
    /// # Errors
    ///
    /// As [`AddressSpace::open_channel`].
    pub fn open_queue(self: &Arc<Self>, id: QueueId) -> StmResult<QueueRef> {
        if id.owner == self.id {
            Ok(QueueRef::local(self.registry.queue(id)?))
        } else {
            Ok(QueueRef::remote(id, Arc::clone(self)))
        }
    }

    /// Resolves either kind of resource id into a channel or queue
    /// reference pair (exactly one is `Some`).
    ///
    /// # Errors
    ///
    /// As [`AddressSpace::open_channel`].
    pub fn open_resource(
        self: &Arc<Self>,
        id: ResourceId,
    ) -> StmResult<(Option<ChannelRef>, Option<QueueRef>)> {
        match id {
            ResourceId::Channel(c) => Ok((Some(self.open_channel(c)?), None)),
            ResourceId::Queue(q) => Ok((None, Some(self.open_queue(q)?))),
        }
    }

    /// Spawns an OS thread registered with this address space's thread
    /// registry (the paper's dynamic thread creation). The thread's
    /// advisory virtual time feeds the distributed GC epoch reports; it is
    /// unregistered when the closure returns.
    pub fn spawn_thread<F, T>(self: &Arc<Self>, name: &str, f: F) -> std::thread::JoinHandle<T>
    where
        F: FnOnce(Arc<AddressSpace>, Arc<dstampede_core::thread::StThread>) -> T + Send + 'static,
        T: Send + 'static,
    {
        let space = Arc::clone(self);
        self.threads.spawn(name, move |thread| f(space, thread))
    }

    // ---- name-server access (local when hosted here, RPC otherwise) ----

    /// Registers a name with the computation's name server.
    ///
    /// # Errors
    ///
    /// [`StmError::NameExists`] on collision, [`StmError::Disconnected`]
    /// if the name-server address space is unreachable.
    pub fn ns_register(
        self: &Arc<Self>,
        name: &str,
        resource: ResourceId,
        meta: &str,
    ) -> StmResult<()> {
        if let Some(ns) = &self.nameserver {
            return ns.register(name, resource, meta);
        }
        match self.call(
            AsId::NAMESERVER,
            Request::NsRegister {
                name: name.to_owned(),
                resource,
                meta: meta.to_owned(),
            },
        )? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Non-blocking name lookup.
    ///
    /// # Errors
    ///
    /// [`StmError::NameAbsent`] when unregistered.
    pub fn ns_lookup(self: &Arc<Self>, name: &str) -> StmResult<(ResourceId, String)> {
        if let Some(ns) = &self.nameserver {
            return ns.lookup(name);
        }
        match self.call(
            AsId::NAMESERVER,
            Request::NsLookup {
                name: name.to_owned(),
                wait: WaitSpec::NonBlocking,
            },
        )? {
            Reply::NsFound { resource, meta } => Ok((resource, meta)),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Blocking name lookup, waiting until registered (or up to `timeout`).
    ///
    /// # Errors
    ///
    /// [`StmError::Timeout`] on expiry.
    pub fn ns_lookup_wait(
        self: &Arc<Self>,
        name: &str,
        timeout: Option<Duration>,
    ) -> StmResult<(ResourceId, String)> {
        if let Some(ns) = &self.nameserver {
            return ns.lookup_wait(name, timeout);
        }
        let wait = match timeout {
            None => WaitSpec::Forever,
            Some(d) => WaitSpec::TimeoutMs(u32::try_from(d.as_millis()).unwrap_or(u32::MAX)),
        };
        match self.call(
            AsId::NAMESERVER,
            Request::NsLookup {
                name: name.to_owned(),
                wait,
            },
        )? {
            Reply::NsFound { resource, meta } => Ok((resource, meta)),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Removes a name registration.
    ///
    /// # Errors
    ///
    /// [`StmError::NameAbsent`] when unregistered.
    pub fn ns_unregister(self: &Arc<Self>, name: &str) -> StmResult<()> {
        if let Some(ns) = &self.nameserver {
            return ns.unregister(name);
        }
        match self.call(
            AsId::NAMESERVER,
            Request::NsUnregister {
                name: name.to_owned(),
            },
        )? {
            Reply::Ok => Ok(()),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Lists every name registration.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] if the name-server address space is
    /// unreachable.
    pub fn ns_list(self: &Arc<Self>) -> StmResult<Vec<NsEntry>> {
        if let Some(ns) = &self.nameserver {
            return Ok(ns.list());
        }
        match self.call(AsId::NAMESERVER, Request::NsList)? {
            Reply::NsEntries { entries } => Ok(entries),
            other => Err(StmError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    // ---- telemetry ----

    /// The telemetry registry every subsystem of this address space
    /// (STM containers, GC, the CLF transport, surrogates) records into.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Declares the full membership of the computation so a cluster-wide
    /// stats pull knows whom to ask. Usually called by the cluster
    /// builder; this address space's own id may be included (it is
    /// skipped during fan-out).
    pub fn set_peers(&self, peers: Vec<AsId>) {
        *self.peers.lock() = peers;
    }

    /// The declared computation membership.
    #[must_use]
    pub fn peers(&self) -> Vec<AsId> {
        self.peers.lock().clone()
    }

    /// A snapshot of this address space's own metrics. The wire buffer
    /// pool's process-wide counters are refreshed into the `wire`
    /// subsystem gauges just before the snapshot is cut, so `stats`
    /// consumers see the current data-plane reuse figures.
    #[must_use]
    pub fn stats_snapshot(&self) -> Snapshot {
        let pool = dstampede_wire::pool::stats();
        let g = |name: &str, v: u64| {
            self.metrics
                .gauge("wire", name)
                .set(i64::try_from(v).unwrap_or(i64::MAX));
        };
        g("pool_hits", pool.hits);
        g("pool_misses", pool.misses);
        g("pool_recycled", pool.recycled);
        g("copies_avoided", pool.copies_avoided);
        g("bytes_copied_avoided", pool.bytes_copied_avoided);
        let d = |name: &str, v: u64| {
            self.metrics
                .gauge("obs", name)
                .set(i64::try_from(v).unwrap_or(i64::MAX));
        };
        d("span_drops", self.metrics.tracer().store().dropped());
        let events = self.metrics.events();
        d(
            "event_drops",
            events.emitted().saturating_sub(events.len() as u64),
        );
        d("history_drops", self.history.total_dropped());
        self.metrics.snapshot()
    }

    /// A cluster-wide snapshot: this address space's metrics merged with
    /// one [`Request::StatsPull`] round to every declared peer.
    /// Unreachable peers are skipped — the merged snapshot's `sources`
    /// list shows who answered.
    #[must_use]
    pub fn stats_cluster_snapshot(self: &Arc<Self>) -> Snapshot {
        let mut merged = self.stats_snapshot();
        for peer in self.peers() {
            if peer == self.id {
                continue;
            }
            let Ok(reply) = self.call(peer, Request::StatsPull { cluster: false }) else {
                continue;
            };
            if let Reply::StatsReport { snapshot } = reply {
                if let Ok(snap) = Snapshot::decode(&snapshot) {
                    merged.merge(&snap);
                }
            }
        }
        merged
    }

    /// A dump of this address space's own retained spans.
    #[must_use]
    pub fn trace_dump(&self) -> TraceDump {
        self.metrics.tracer().dump()
    }

    /// A cluster-wide trace: this address space's spans merged with one
    /// [`Request::TracePull`] round to every declared peer. Unreachable
    /// peers are skipped; duplicate spans merge away, so pulling from any
    /// address space yields the same connected traces.
    #[must_use]
    pub fn trace_cluster_dump(self: &Arc<Self>) -> TraceDump {
        let mut merged = self.trace_dump();
        for peer in self.peers() {
            if peer == self.id {
                continue;
            }
            let Ok(reply) = self.call(peer, Request::TracePull { cluster: false }) else {
                continue;
            };
            if let Reply::TraceReport { dump } = reply {
                if let Ok(dump) = TraceDump::decode(&dump) {
                    merged.merge(&dump);
                }
            }
        }
        merged
    }

    // ---- distributed GC epoch support ----

    /// Records another address space's epoch report (aggregator side).
    pub fn gc_record_report(&self, from: AsId, min_vt: VirtualTime) {
        self.gc_agg.lock().report(from, min_vt);
        self.gc_epochs.fetch_add(1, Ordering::Relaxed);
    }

    /// The cluster-wide virtual-time floor as currently aggregated.
    #[must_use]
    pub fn gc_global_floor(&self) -> VirtualTime {
        self.gc_agg.lock().global_floor()
    }

    /// This address space's local GC accounting, summed over its
    /// containers.
    #[must_use]
    pub fn gc_local_summary(&self) -> GcSummary {
        let mut summary = GcSummary {
            epochs: self.gc_epochs.load(Ordering::Relaxed),
            ..GcSummary::default()
        };
        for res in self.registry.resources() {
            match res {
                ResourceId::Channel(id) => {
                    if let Ok(c) = self.registry.channel(id) {
                        let s = c.stats();
                        summary.items += s.reclaimed_items;
                        summary.bytes += s.reclaimed_bytes;
                    }
                }
                ResourceId::Queue(id) => {
                    if let Ok(q) = self.registry.queue(id) {
                        let s = q.stats();
                        summary.items += s.reclaimed_items;
                        summary.bytes += s.reclaimed_bytes;
                    }
                }
            }
        }
        summary
    }

    /// Sets the shard count this address space's registry applies to
    /// containers created without an explicit `shards` attribute (`0`
    /// restores the built-in default). Shard counts never travel on the
    /// wire, so this also governs remote-requested creations.
    pub fn set_default_stm_shards(&self, n: u32) {
        self.registry.set_default_shards(n);
    }

    /// Marks whether `peer` understands the batched put/get frames
    /// ([`Request::PutBatch`]/[`Request::GetBatch`]). Defaults to `true`;
    /// set `false` for old peers so batch operations downgrade to
    /// singleton frames.
    pub fn set_peer_batch(&self, peer: AsId, supported: bool) {
        let mut incapable = self.batch_incapable.lock();
        if supported {
            incapable.remove(&peer);
        } else {
            incapable.insert(peer);
        }
    }

    /// Whether `peer` is believed to understand the batched frames.
    #[must_use]
    pub fn peer_supports_batch(&self, peer: AsId) -> bool {
        !self.batch_incapable.lock().contains(&peer)
    }

    /// Marks whether `peer` understands the CLF SACK fast path
    /// (selective-acknowledgment frames on the UDP transport). Defaults
    /// to `true`; set `false` for old peers so the transport downgrades
    /// to the legacy per-datagram cumulative-ACK exchange. Delegates to
    /// the transport; a no-op on transports without a SACK path (e.g.
    /// the in-memory fabric).
    pub fn set_peer_clf_sack(&self, peer: AsId, supported: bool) {
        self.transport.set_peer_sack(peer, supported);
    }

    // ---- flight recorder: history & health ----

    /// Marks whether `peer` understands the flight-recorder pulls
    /// ([`Request::HistoryPull`]/[`Request::HealthPull`]). Defaults to
    /// `true`; the cluster fan-outs skip peers marked `false` and mark
    /// a peer themselves when it rejects a pull as unhandled.
    pub fn set_peer_recorder(&self, peer: AsId, supported: bool) {
        let mut incapable = self.recorder_incapable.lock();
        if supported {
            incapable.remove(&peer);
        } else {
            incapable.insert(peer);
        }
    }

    /// Whether `peer` is believed to understand the recorder pulls.
    #[must_use]
    pub fn peer_supports_recorder(&self, peer: AsId) -> bool {
        !self.recorder_incapable.lock().contains(&peer)
    }

    /// Replaces the health engine's hysteresis policy. Called by
    /// [`crate::recorder::FlightRecorder::start`] before the first
    /// tick; calling it later discards accumulated health state.
    pub fn set_health_policy(&self, policy: HealthPolicy) {
        *self.health.lock() = Arc::new(HealthEngine::new(policy));
    }

    /// Records one flight-recorder tick: samples every registry series
    /// into the history rings and re-derives every health subject from
    /// the runtime's live signals (peer leases and death declarations,
    /// CLF retransmit/backpressure deltas, STM occupancy). Normally
    /// driven by [`crate::recorder::FlightRecorder`]; tests may call it
    /// directly for deterministic ticks.
    pub fn record_tick(&self, config: &RecorderConfig) {
        let tick = self.recorder_ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| i64::try_from(d.as_millis()).unwrap_or(i64::MAX))
            .unwrap_or(0);
        self.history.sample(&self.metrics, now_ms);

        let health = Arc::clone(&self.health.lock());
        let now = Instant::now();
        for peer in self.peers() {
            if peer == self.id {
                continue;
            }
            let subject = format!("peer:as-{}", peer.0);
            let (raw, reason) = if self.is_peer_dead(peer) {
                (HealthState::Dead, "declared dead".to_owned())
            } else {
                // Like check_leases, the lease clock of a peer never
                // heard from starts at the first look.
                let since = now.duration_since(*self.last_heard.lock().entry(peer).or_insert(now));
                if since > config.lease {
                    (
                        HealthState::Suspect,
                        format!("silent {}ms", since.as_millis()),
                    )
                } else if since > config.lease / 2 {
                    (
                        HealthState::Degraded,
                        format!("silent {}ms", since.as_millis()),
                    )
                } else {
                    (HealthState::Healthy, "lease current".to_owned())
                }
            };
            health.observe(tick, &subject, raw, &reason);
        }

        let stats = self.transport.stats();
        let prev = std::mem::replace(&mut *self.prev_transport.lock(), stats);
        let retransmits = stats.retransmits.saturating_sub(prev.retransmits);
        let backpressure = stats.backpressure.saturating_sub(prev.backpressure);
        let (raw, reason) = if backpressure > 0 {
            (
                HealthState::Degraded,
                format!("{backpressure} backpressure rejections"),
            )
        } else if retransmits >= config.retransmit_threshold {
            (
                HealthState::Degraded,
                format!("{retransmits} retransmits/tick"),
            )
        } else {
            (HealthState::Healthy, "transport nominal".to_owned())
        };
        health.observe(tick, "clf", raw, &reason);

        let occupancy = self.metrics.gauge("stm", "channel_items").get()
            + self.metrics.gauge("stm", "queue_items").get();
        let (raw, reason) = if occupancy > config.occupancy_watermark {
            (
                HealthState::Degraded,
                format!("occupancy {occupancy} over watermark"),
            )
        } else {
            (HealthState::Healthy, format!("occupancy {occupancy}"))
        };
        health.observe(tick, "stm", raw, &reason);

        if let Some(repl) = self.replicator() {
            let lag = repl.lag() as i64;
            let (raw, reason) = if lag > config.replication_lag_watermark {
                (
                    HealthState::Degraded,
                    format!("replication lag {lag} over watermark"),
                )
            } else {
                (HealthState::Healthy, format!("replication lag {lag}"))
            };
            health.observe(tick, "repl", raw, &reason);
        }

        // Session churn: a burst of abnormal teardowns (client crashes,
        // lease expiries) this tick degrades the `sessions` subject.
        // Only observed once a listener has accepted a session, so
        // listener-less spaces don't report a meaningless subject.
        if self.metrics.counter("session", "started").get() > 0 {
            let teardowns = self.metrics.counter("session", "dirty_teardowns").get()
                + self.metrics.counter("session", "lease_teardowns").get();
            let prev = std::mem::replace(&mut *self.prev_session_teardowns.lock(), teardowns);
            let churn = teardowns.saturating_sub(prev);
            let active = self.metrics.gauge("session", "active").get();
            let (raw, reason) = if churn >= config.session_churn_threshold {
                (
                    HealthState::Degraded,
                    format!("{churn} abnormal teardowns/tick, {active} active"),
                )
            } else {
                (
                    HealthState::Healthy,
                    format!("{churn} abnormal teardowns/tick, {active} active"),
                )
            };
            health.observe(tick, "sessions", raw, &reason);
        }
    }

    /// Ticks recorded so far.
    #[must_use]
    pub fn recorder_ticks(&self) -> u64 {
        self.recorder_ticks.load(Ordering::Relaxed)
    }

    /// This address space's own recorded metric history.
    #[must_use]
    pub fn history_dump(&self) -> HistoryDump {
        self.history.dump(&format!("as-{}", self.id.0))
    }

    /// This address space's own derived health report.
    #[must_use]
    pub fn health_report(&self) -> HealthReport {
        self.health.lock().report(&format!("as-{}", self.id.0))
    }

    /// The published health state of one local subject, if observed.
    #[must_use]
    pub fn health_state_of(&self, subject: &str) -> Option<HealthState> {
        self.health.lock().state_of(subject)
    }

    /// A cluster-wide history: this address space's rings merged with
    /// one [`Request::HistoryPull`] round to every declared peer.
    /// Unreachable peers are skipped; a peer that rejects the pull as
    /// unhandled (an old binary) is remembered via
    /// [`AddressSpace::set_peer_recorder`] and skipped from then on.
    #[must_use]
    pub fn history_cluster_dump(self: &Arc<Self>) -> HistoryDump {
        let mut merged = self.history_dump();
        for peer in self.recorder_fanout_peers() {
            match self.call(peer, Request::HistoryPull { cluster: false }) {
                Ok(Reply::HistoryReport { dump }) => {
                    if let Ok(dump) = HistoryDump::decode(&dump) {
                        merged.merge(&dump);
                    }
                }
                Ok(_) => {}
                Err(e) => self.note_recorder_pull_error(peer, &e),
            }
        }
        merged
    }

    /// A cluster-wide health report: this address space's subjects
    /// merged with one [`Request::HealthPull`] round to every declared
    /// peer, with the same old-peer downgrade as
    /// [`AddressSpace::history_cluster_dump`]. For a subject reported
    /// by several address spaces the fresher (then worse) entry wins,
    /// so pulling from any surviving address space converges.
    #[must_use]
    pub fn health_cluster_report(self: &Arc<Self>) -> HealthReport {
        let mut merged = self.health_report();
        for peer in self.recorder_fanout_peers() {
            match self.call(peer, Request::HealthPull { cluster: false }) {
                Ok(Reply::HealthReport { report }) => {
                    if let Ok(report) = HealthReport::decode(&report) {
                        merged.merge(&report);
                    }
                }
                Ok(_) => {}
                Err(e) => self.note_recorder_pull_error(peer, &e),
            }
        }
        merged
    }

    /// The peers a recorder fan-out should ask: everyone but us and
    /// the peers marked recorder-incapable.
    fn recorder_fanout_peers(&self) -> Vec<AsId> {
        let incapable = self.recorder_incapable.lock();
        self.peers()
            .into_iter()
            .filter(|p| *p != self.id && !incapable.contains(p))
            .collect()
    }

    /// Downgrades a peer that rejected a recorder pull as unhandled
    /// (it predates the flight recorder); transport-level failures are
    /// left alone so the peer is retried next pull.
    fn note_recorder_pull_error(&self, peer: AsId, e: &StmError) {
        if let StmError::Protocol(msg) = e {
            if msg.contains("unhandled request") {
                self.set_peer_recorder(peer, false);
            }
        }
    }

    // ---- failure detection & recovery ----

    /// Overrides the RPC deadline/retry policy (defaults to
    /// [`RpcConfig::default`]).
    pub fn set_rpc_config(&self, config: RpcConfig) {
        *self.rpc.lock() = config;
    }

    /// Renews a peer's lease; called for every message received from it.
    pub(crate) fn note_peer(&self, from: AsId) {
        self.last_heard.lock().insert(from, Instant::now());
    }

    /// Declares dead every live peer whose lease has expired. The lease
    /// clock of a peer never heard from starts at the first check.
    pub fn check_leases(self: &Arc<Self>, lease: Duration) {
        let now = Instant::now();
        let mut expired = Vec::new();
        {
            let mut heard = self.last_heard.lock();
            let dead = self.dead_peers.lock();
            for peer in self.peers.lock().iter().copied() {
                if peer == self.id || dead.contains(&peer) {
                    continue;
                }
                let since = now.duration_since(*heard.entry(peer).or_insert(now));
                if since > lease {
                    expired.push(peer);
                }
            }
        }
        for peer in expired {
            self.declare_peer_dead(peer);
        }
    }

    /// Whether `peer` has been declared dead.
    #[must_use]
    pub fn is_peer_dead(&self, peer: AsId) -> bool {
        self.dead_peers.lock().contains(&peer)
    }

    /// Every peer declared dead so far.
    #[must_use]
    pub fn dead_peers(&self) -> Vec<AsId> {
        self.dead_peers.lock().iter().copied().collect()
    }

    /// Declares a peer dead and runs the recovery path:
    ///
    /// 1. outstanding calls to the peer fail with
    ///    [`StmError::Disconnected`];
    /// 2. connections the peer opened here are orphaned — their virtual
    ///    time advances to infinity and their consume claims drop, so
    ///    per-container GC progresses, and in-flight queue tickets return
    ///    to the head of their queues for surviving getters;
    /// 3. the peer's stale report leaves the GC epoch aggregator, so the
    ///    global floor no longer waits on it;
    /// 4. the transport's per-peer ARQ state is purged, freeing buffered
    ///    unacknowledged packets;
    /// 5. replicas held here for the dead peer's containers are sealed
    ///    and promoted into live local containers, adopting the dead
    ///    primary's name-server registrations (see
    ///    [`AddressSpace::promote_replicas_of`]).
    ///
    /// Idempotent; a self- or repeat declaration is a no-op.
    pub fn declare_peer_dead(self: &Arc<Self>, peer: AsId) {
        if peer == self.id || !self.dead_peers.lock().insert(peer) {
            return;
        }
        dstampede_obs::error(
            "failure",
            format!("as-{} declared as-{} dead", self.id.0, peer.0),
        );
        self.metrics.counter("failure", "peers_declared_dead").inc();
        self.metrics
            .counter_labeled(
                "failure",
                "peer_dead",
                &[("peer", &format!("as-{}", peer.0))],
            )
            .inc();

        // 1. Fail calls waiting on the dead peer (dropping the sender
        //    wakes the caller with Disconnected).
        self.pending.lock().retain(|_, pc| pc.dst != peer);

        // 2. Orphan the dead peer's connections.
        let orphans = self.conns.remove_owned_by(peer);
        self.metrics
            .counter("failure", "orphaned_connections")
            .add(orphans.len() as u64);
        for entry in orphans {
            entry.orphan();
        }

        // 3. Drop its report from the GC epoch aggregator.
        self.gc_agg.lock().retire(peer);

        // 4. Free the transport's buffered state for it.
        self.transport.purge_peer(peer);

        // 5. Promote any replicas we held for the dead primary.
        self.promote_replicas_of(peer);
    }

    /// Failover promotion (death-recovery step 5): seals every replica
    /// whose primary is `peer`, rebuilds each as a live local container
    /// seeded with the replicated items, and adopts the primary's
    /// name-server registration so proxies re-resolve to the promoted
    /// copy. Every promotion is also registered under the synthetic name
    /// `promoted:<old-resource>` so clients holding only the dead
    /// resource id can find the successor.
    ///
    /// Replays are idempotent: channel re-puts hit `TsExists` and queue
    /// items keyed by their original timestamps dedup through the same
    /// path, so a retried death declaration cannot duplicate state.
    pub fn promote_replicas_of(self: &Arc<Self>, peer: AsId) {
        let taken = self.replicas.take_replicas_of(peer);
        for (old, replica) in taken {
            let n_items = replica.items.len();
            let new = match &replica.attrs {
                ReplicaAttrs::Channel(attrs) => {
                    let chan = self.host_channel(replica.name.clone(), *attrs);
                    let out = chan.connect_output();
                    for (ts, (tag, payload)) in &replica.items {
                        match out.try_put(
                            Timestamp::new(*ts),
                            Item::new(payload.clone()).with_tag(*tag),
                        ) {
                            Ok(()) | Err(StmError::TsExists) => {}
                            Err(e) => dstampede_obs::warn(
                                "repl",
                                format!(
                                    "as-{} dropped replicated item ts={ts} promoting {old}: {e}",
                                    self.id.0
                                ),
                            ),
                        }
                    }
                    out.disconnect();
                    ResourceId::Channel(chan.id())
                }
                ReplicaAttrs::Queue(attrs) => {
                    let queue = self.host_queue(replica.name.clone(), *attrs);
                    let out = queue.connect_output();
                    // BTreeMap iteration restores FIFO (timestamp) order.
                    for (ts, (tag, payload)) in &replica.items {
                        match out.try_put(
                            Timestamp::new(*ts),
                            Item::new(payload.clone()).with_tag(*tag),
                        ) {
                            Ok(()) | Err(StmError::TsExists) => {}
                            Err(e) => dstampede_obs::warn(
                                "repl",
                                format!(
                                    "as-{} dropped replicated item ts={ts} promoting {old}: {e}",
                                    self.id.0
                                ),
                            ),
                        }
                    }
                    out.disconnect();
                    ResourceId::Queue(queue.id())
                }
            };

            // Adopt the dead primary's name: drop its stale registration
            // (absent is fine) and re-register pointing at the promotion.
            if let Some(name) = &replica.name {
                let _ = self.ns_unregister(name);
                if let Err(e) = self.ns_register(
                    name,
                    new,
                    &format!("promoted from as-{} after failover", peer.0),
                ) {
                    dstampede_obs::warn(
                        "repl",
                        format!(
                            "as-{} could not adopt name {name:?} for promoted {old}: {e}",
                            self.id.0
                        ),
                    );
                }
            }
            // Successor pointer for clients holding only the old id.
            let _ = self.ns_register(
                &format!("promoted:{old}"),
                new,
                &format!("replica of {old} promoted from as-{}", peer.0),
            );

            self.promotions.lock().insert(old, new);
            self.metrics.counter("repl", "promotions").inc();
            dstampede_obs::warn(
                "repl",
                format!(
                    "as-{} promoted replica of {old} (primary as-{} dead) to {new} \
                     with {n_items} replicated items",
                    self.id.0, peer.0
                ),
            );
        }
    }

    // ---- RPC plumbing ----

    /// Performs a request against another address space (or inline against
    /// this one) and waits for the reply.
    ///
    /// Blocking operations (a `get`/`put`/`NsLookup` allowed to wait) keep
    /// a single attempt with an indefinite wait — waiting is their
    /// semantics. Non-blocking operations run under the [`RpcConfig`]
    /// deadline with jittered exponential backoff across transient
    /// transport failures; non-idempotent ones are wrapped in
    /// [`Request::WithId`] so a replayed attempt is answered from the
    /// executor's dedup cache instead of re-executing.
    ///
    /// # Errors
    ///
    /// The remote operation's error; [`StmError::Disconnected`] if the
    /// peer is (declared) dead or the transport closes;
    /// [`StmError::Timeout`] when the retry deadline expires.
    pub fn call(self: &Arc<Self>, dst: AsId, req: Request) -> StmResult<Reply> {
        if dst == self.id {
            return execute(self, &Arc::clone(&self.conns), None, None, req).into_result();
        }
        if self.down.load(Ordering::Acquire) {
            return Err(StmError::Disconnected);
        }
        if self.is_peer_dead(dst) {
            return Err(StmError::Disconnected);
        }
        if is_blocking(&req) {
            return match self.call_attempt(dst, req, None) {
                Attempt::Reply(frame) => {
                    propagate_reply_trace(&frame);
                    frame.reply.into_result()
                }
                Attempt::Fatal(e) => Err(e),
                // Unreachable without a timeout, but map it anyway.
                Attempt::Transient => Err(StmError::Disconnected),
            };
        }

        let config = *self.rpc.lock();
        let req = if is_idempotent(&req) {
            req
        } else {
            Request::WithId {
                req_id: self.next_req_id.fetch_add(1, Ordering::Relaxed),
                req: Box::new(req),
            }
        };
        let deadline = Instant::now() + config.deadline;
        let mut backoff = config.base_backoff;
        loop {
            match self.call_attempt(dst, req.clone(), Some(config.attempt_timeout)) {
                Attempt::Reply(frame) => {
                    propagate_reply_trace(&frame);
                    return frame.reply.into_result();
                }
                Attempt::Fatal(e) => return Err(e),
                Attempt::Transient => {}
            }
            if self.is_peer_dead(dst) || self.down.load(Ordering::Acquire) {
                return Err(StmError::Disconnected);
            }
            if Instant::now() >= deadline {
                self.metrics.counter("rpc", "deadline_exceeded").inc();
                return Err(StmError::Timeout);
            }
            self.metrics.counter("rpc", "retries").inc();
            std::thread::sleep(jittered(backoff, self.next_seq.load(Ordering::Relaxed)));
            backoff = (backoff * 2).min(config.max_backoff);
        }
    }

    /// One send/receive round. `timeout` of `None` waits indefinitely.
    /// The ambient trace context rides on the request frame, and a
    /// completed round is recorded as an [`SpanKind::Rpc`] span.
    fn call_attempt(&self, dst: AsId, req: Request, timeout: Option<Duration>) -> Attempt {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let ctx = trace::current();
        let name = req_name(&req);
        let started = Instant::now();
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(seq, PendingCall { tx, dst });
        let msg = match proto::encode_request(&RequestFrame {
            seq,
            req,
            trace: ctx,
        }) {
            Ok(m) => m,
            Err(e) => {
                self.pending.lock().remove(&seq);
                return Attempt::Fatal(e);
            }
        };
        if let Err(e) = self.transport.send_segments(dst, msg.segments()) {
            self.pending.lock().remove(&seq);
            return match e {
                ClfError::UnknownPeer | ClfError::Closed => Attempt::Fatal(clf_to_stm(&e)),
                // Timeout, I/O trouble, a full send buffer: retryable.
                _ => Attempt::Transient,
            };
        }
        match timeout {
            None => match rx.recv() {
                Ok(frame) => {
                    self.record_rpc_span(ctx, dst, name, started);
                    Attempt::Reply(frame)
                }
                Err(_) => Attempt::Fatal(StmError::Disconnected),
            },
            Some(d) => match rx.recv_timeout(d) {
                Ok(frame) => {
                    self.record_rpc_span(ctx, dst, name, started);
                    Attempt::Reply(frame)
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.pending.lock().remove(&seq);
                    Attempt::Transient
                }
                // Pending entry dropped: the peer was declared dead or we
                // shut down mid-call.
                Err(RecvTimeoutError::Disconnected) => Attempt::Fatal(StmError::Disconnected),
            },
        }
    }

    fn record_rpc_span(&self, ctx: Option<TraceContext>, dst: AsId, name: &str, started: Instant) {
        let Some(ctx) = ctx else { return };
        let tracer = self.metrics.tracer();
        let start = tracer
            .now_us()
            .saturating_sub(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        tracer.finish(
            ctx,
            SpanKind::Rpc,
            &format!("rpc:{}->{}", self.id.0, dst.0),
            0,
            start,
            name,
        );
    }

    /// Sends a request without expecting a reply (used by drop paths).
    pub fn cast(&self, dst: AsId, req: Request) {
        if dst == self.id || self.down.load(Ordering::Acquire) || self.is_peer_dead(dst) {
            return;
        }
        let frame = RequestFrame {
            seq: NO_REPLY,
            req,
            trace: trace::current(),
        };
        if let Ok(msg) = proto::encode_request(&frame) {
            let _ = self.transport.send_segments(dst, msg.segments());
        }
    }

    /// Shuts the address space down: closes every container, stops the
    /// dispatcher, and fails outstanding calls with
    /// [`StmError::Disconnected`]. Idempotent.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(repl) = self.replicator.lock().take() {
            repl.stop();
        }
        self.registry.close_all();
        self.transport.shutdown();
        self.pending.lock().clear(); // wakes callers with Disconnected
        if let Some(h) = self.dispatcher.lock().take() {
            let _ = h.join();
        }
        self.conns.clear();
    }

    /// Whether [`AddressSpace::shutdown`] has run.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("id", &self.id)
            .field("nameserver", &self.nameserver.is_some())
            .field("down", &self.down.load(Ordering::Relaxed))
            .finish()
    }
}

/// Outcome of one RPC attempt.
enum Attempt {
    /// The peer answered.
    Reply(ReplyFrame),
    /// A failure retrying cannot fix (unknown peer, peer declared dead).
    Fatal(StmError),
    /// A transient transport failure; the caller may retry.
    Transient,
}

/// Whether re-executing this request observes the same state transition as
/// executing it once — in which case a retried attempt needs no
/// [`Request::WithId`] dedup tag.
fn is_idempotent(req: &Request) -> bool {
    matches!(
        req,
        Request::Ping { .. }
            | Request::ChannelGet { .. }
            | Request::ChannelConsume { .. }
            | Request::ChannelSetVt { .. }
            | Request::NsLookup { .. }
            | Request::NsList
            | Request::StatsPull { .. }
            | Request::TracePull { .. }
            | Request::HistoryPull { .. }
            | Request::HealthPull { .. }
            | Request::GcReport { .. }
            | Request::Heartbeat { .. }
            | Request::Disconnect { .. }
    )
}

/// Makes the context carried on a reply frame ambient on the calling
/// thread: a get's reply carries the gotten item's context, which the
/// proxy layer re-attaches to the reconstructed [`dstampede_core::Item`].
/// Callers that care scope the ambient cell around the call.
fn propagate_reply_trace(frame: &ReplyFrame) {
    if frame.trace.is_some() {
        let _ = trace::set_current(frame.trace);
    }
}

/// A stable short name for a request variant, used as Rpc span detail.
fn req_name(req: &Request) -> &'static str {
    match req {
        Request::Attach { .. } => "attach",
        Request::Detach => "detach",
        Request::Ping { .. } => "ping",
        Request::ChannelCreate { .. } => "channel_create",
        Request::QueueCreate { .. } => "queue_create",
        Request::ConnectChannelIn { .. } => "connect_channel_in",
        Request::ConnectChannelOut { .. } => "connect_channel_out",
        Request::ConnectQueueIn { .. } => "connect_queue_in",
        Request::ConnectQueueOut { .. } => "connect_queue_out",
        Request::Disconnect { .. } => "disconnect",
        Request::ChannelPut { .. } => "channel_put",
        Request::ChannelGet { .. } => "channel_get",
        Request::ChannelConsume { .. } => "channel_consume",
        Request::ChannelSetVt { .. } => "channel_set_vt",
        Request::QueuePut { .. } => "queue_put",
        Request::QueueGet { .. } => "queue_get",
        Request::QueueConsume { .. } => "queue_consume",
        Request::QueueRequeue { .. } => "queue_requeue",
        Request::NsRegister { .. } => "ns_register",
        Request::NsLookup { .. } => "ns_lookup",
        Request::NsUnregister { .. } => "ns_unregister",
        Request::NsList => "ns_list",
        Request::InstallGarbageHook { .. } => "install_garbage_hook",
        Request::GcReport { .. } => "gc_report",
        Request::StatsPull { .. } => "stats_pull",
        Request::TracePull { .. } => "trace_pull",
        Request::HistoryPull { .. } => "history_pull",
        Request::HealthPull { .. } => "health_pull",
        Request::Heartbeat { .. } => "heartbeat",
        Request::PutBatch { .. } => "put_batch",
        Request::GetBatch { .. } => "get_batch",
        Request::ReplicaOpenChannel { .. } => "replica_open_channel",
        Request::ReplicaOpenQueue { .. } => "replica_open_queue",
        Request::ReplicatePut { .. } => "replicate_put",
        Request::WithId { req, .. } => req_name(req),
        _ => "unknown",
    }
}

/// Deterministic jitter: up to half the backoff again, keyed off the call
/// sequence counter so concurrent retriers desynchronise.
fn jittered(backoff: Duration, salt: u64) -> Duration {
    let hash = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
    let extra = backoff.as_micros() as u64 / 2;
    backoff + Duration::from_micros(if extra == 0 { 0 } else { hash % extra })
}

fn clf_to_stm(e: &ClfError) -> StmError {
    match e {
        ClfError::Closed => StmError::Disconnected,
        ClfError::UnknownPeer => StmError::NoSuchResource,
        other => StmError::Protocol(other.to_string()),
    }
}

fn dispatch_loop(space: &Arc<AddressSpace>) {
    loop {
        match space.transport.recv() {
            Ok((from, msg)) => handle_message(space, from, &msg),
            Err(ClfError::Closed) => break,
            Err(_) => {}
        }
    }
}

fn handle_message(space: &Arc<AddressSpace>, from: AsId, msg: &Bytes) {
    // Any traffic from a peer renews its lease.
    space.note_peer(from);
    match proto::decode(msg) {
        Ok(AsMessage::Request(frame)) => {
            if is_blocking(&frame.req) {
                let worker_space = Arc::clone(space);
                let builder =
                    std::thread::Builder::new().name(format!("as-{}-worker", space.id().0));
                let spawned = builder.spawn(move || {
                    let conns = Arc::clone(&worker_space.conns);
                    // The request's trace context becomes ambient for the
                    // duration of execution; whatever context execution
                    // leaves (e.g. the gotten item's) rides back on the
                    // reply frame.
                    let guard = trace::scope(frame.trace);
                    let reply = execute(&worker_space, &conns, None, Some(from), frame.req);
                    let reply_trace = trace::current();
                    drop(guard);
                    send_reply(&worker_space, from, frame.seq, reply, reply_trace);
                });
                if spawned.is_err() {
                    send_reply(
                        space,
                        from,
                        frame.seq,
                        Reply::from_error(&StmError::Protocol("worker spawn failed".into())),
                        None,
                    );
                }
            } else {
                let conns = Arc::clone(&space.conns);
                let guard = trace::scope(frame.trace);
                let reply = execute(space, &conns, None, Some(from), frame.req);
                let reply_trace = trace::current();
                drop(guard);
                send_reply(space, from, frame.seq, reply, reply_trace);
            }
        }
        Ok(AsMessage::Reply(frame)) => {
            if let Some(pc) = space.pending.lock().remove(&frame.seq) {
                let _ = pc.tx.send(frame);
            }
        }
        Err(_) => { /* malformed inter-AS message: drop */ }
    }
}

fn send_reply(
    space: &Arc<AddressSpace>,
    to: AsId,
    seq: u64,
    reply: Reply,
    trace: Option<TraceContext>,
) {
    if seq == NO_REPLY {
        return;
    }
    if let Ok(msg) = proto::encode_reply(&ReplyFrame {
        seq,
        gc_notes: Vec::new(),
        reply,
        trace,
    }) {
        let _ = space.transport.send_segments(to, msg.segments());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dstampede_clf::MemFabric;
    use dstampede_core::{GetSpec, Interest, Item, Timestamp};

    fn two_spaces() -> (Arc<AddressSpace>, Arc<AddressSpace>) {
        let fabric = MemFabric::new();
        let a = AddressSpace::start(fabric.endpoint(AsId(0)), true);
        let b = AddressSpace::start(fabric.endpoint(AsId(1)), false);
        (a, b)
    }

    #[test]
    fn ping_between_spaces() {
        let (a, b) = two_spaces();
        match b.call(AsId(0), Request::Ping { nonce: 42 }).unwrap() {
            Reply::Pong { nonce } => assert_eq!(nonce, 42),
            other => panic!("unexpected {other:?}"),
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn remote_channel_put_get_consume() {
        let (a, b) = two_spaces();
        let chan = a.create_channel(Some("video".into()), ChannelAttrs::default());

        // b connects remotely and exchanges items.
        let cref = b.open_channel(chan.id()).unwrap();
        assert!(!cref.is_local());
        let out = cref.connect_output().unwrap();
        let inp = cref.connect_input(Interest::FromEarliest).unwrap();
        out.put(
            Timestamp::new(1),
            Item::from_vec(vec![1, 2, 3]).with_tag(7),
            WaitSpec::Forever,
        )
        .unwrap();
        let (ts, item) = inp.get_blocking(GetSpec::Exact(Timestamp::new(1))).unwrap();
        assert_eq!(ts, Timestamp::new(1));
        assert_eq!(item.payload(), &[1, 2, 3]);
        assert_eq!(item.tag(), 7);
        inp.consume_until(ts).unwrap();
        // The owner reclaims once the only input connection consumed.
        for _ in 0..100 {
            if chan.live_items() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(chan.live_items(), 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn remote_blocking_get_waits_for_put() {
        let (a, b) = two_spaces();
        let chan = a.create_channel(None, ChannelAttrs::default());
        let cref = b.open_channel(chan.id()).unwrap();
        let inp = cref.connect_input(Interest::FromEarliest).unwrap();

        let chan2 = Arc::clone(&chan);
        // Through the named registry, not a raw spawn: leaked helpers show
        // up in teardown accounting.
        let h = a.threads().spawn("test-late-putter", move |_t| {
            std::thread::sleep(Duration::from_millis(40));
            let out = chan2.connect_output();
            out.put(Timestamp::new(5), Item::from_vec(vec![9])).unwrap();
        });
        let (ts, item) = inp.get_blocking(GetSpec::Exact(Timestamp::new(5))).unwrap();
        assert_eq!(ts, Timestamp::new(5));
        assert_eq!(item.payload(), &[9]);
        h.join().unwrap();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn remote_queue_round_trip_with_tickets() {
        let (a, b) = two_spaces();
        let q = a.create_queue(None, QueueAttrs::default());
        let qref = b.open_queue(q.id()).unwrap();
        let out = qref.connect_output().unwrap();
        let inp = qref.connect_input().unwrap();
        out.put(
            Timestamp::new(3),
            Item::from_vec(vec![5]).with_tag(1),
            WaitSpec::NonBlocking,
        )
        .unwrap();
        let (ts, item, ticket) = inp.get(WaitSpec::Forever).unwrap();
        assert_eq!(ts, Timestamp::new(3));
        assert_eq!(item.payload(), &[5]);
        inp.consume(ticket).unwrap();
        assert_eq!(q.stats().consumes, 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn nameserver_reachable_from_remote_space() {
        let (a, b) = two_spaces();
        let chan = a.create_channel(None, ChannelAttrs::default());
        let res = ResourceId::Channel(chan.id());
        b.ns_register("mixer", res, "composite").unwrap();
        assert_eq!(a.ns_lookup("mixer").unwrap(), (res, "composite".into()));
        assert_eq!(b.ns_lookup("mixer").unwrap(), (res, "composite".into()));
        assert_eq!(
            b.ns_register("mixer", res, "again").unwrap_err(),
            StmError::NameExists
        );
        assert_eq!(b.ns_list().unwrap().len(), 1);
        b.ns_unregister("mixer").unwrap();
        assert_eq!(b.ns_lookup("mixer").unwrap_err(), StmError::NameAbsent);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn blocking_ns_lookup_across_spaces() {
        let (a, b) = two_spaces();
        let chan = a.create_channel(None, ChannelAttrs::default());
        let res = ResourceId::Channel(chan.id());
        let b2 = Arc::clone(&b);
        let h = b.threads().spawn("test-ns-waiter", move |_t| {
            b2.ns_lookup_wait("late-name", None)
        });
        std::thread::sleep(Duration::from_millis(30));
        a.ns_register("late-name", res, "").unwrap();
        assert_eq!(h.join().unwrap().unwrap().0, res);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn remote_errors_propagate() {
        let (a, b) = two_spaces();
        // Connecting to a channel the owner does not have.
        let bogus = ChanId {
            owner: AsId(0),
            index: 999,
        };
        let cref = b.open_channel(bogus).unwrap();
        assert_eq!(
            cref.connect_input(Interest::FromEarliest).unwrap_err(),
            StmError::NoSuchResource
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn call_to_unknown_space_fails() {
        let (a, b) = two_spaces();
        assert_eq!(
            b.call(AsId(9), Request::Ping { nonce: 1 }).unwrap_err(),
            StmError::NoSuchResource
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_closes_containers() {
        let (a, b) = two_spaces();
        let chan = a.create_channel(None, ChannelAttrs::default());
        a.shutdown();
        a.shutdown();
        assert!(a.is_down());
        assert!(chan.is_closed());
        b.shutdown();
    }

    #[test]
    fn malformed_message_does_not_kill_dispatcher() {
        let fabric = MemFabric::new();
        let a = AddressSpace::start(fabric.endpoint(AsId(0)), true);
        let raw = fabric.endpoint(AsId(5));
        raw.send(AsId(0), Bytes::from_static(b"garbage")).unwrap();
        // The dispatcher must survive and keep answering.
        let b = AddressSpace::start(fabric.endpoint(AsId(1)), false);
        match b.call(AsId(0), Request::Ping { nonce: 7 }).unwrap() {
            Reply::Pong { nonce } => assert_eq!(nonce, 7),
            other => panic!("unexpected {other:?}"),
        }
        a.shutdown();
        b.shutdown();
    }
}
