//! `dstamped` — a standalone D-Stampede cluster daemon.
//!
//! Launches a cluster of address spaces with a TCP listener each, prints
//! the listener addresses, and serves end devices until stdin closes or
//! the process is killed. This is the "server program on the cluster" of
//! the paper's §4, as a deployable binary:
//!
//! ```text
//! dstamped [--address-spaces N] [--udp] [--gc-epoch-ms MS] [--trace-sampling N]
//! ```
//!
//! * `--address-spaces N` — number of address spaces (default 2). Address
//!   space 0 hosts the name server.
//! * `--udp` — interconnect the address spaces with the reliable-UDP CLF
//!   backend instead of in-process channels.
//! * `--gc-epoch-ms MS` — period of the distributed GC epoch reports
//!   (default 100).
//! * `--trace-sampling N` — causally trace every nth item timestamp
//!   (default 0 = off); pull with `trace` in `dstampede-cli`.
//!
//! Clients attach with `EndDevice::attach_{c,java}` to any printed
//! address.

use std::io::Read;
use std::time::Duration;

use dstampede_obs::Level;
use dstampede_runtime::{Cluster, ClusterTransport, GcEpochConfig, GcEpochService};

struct Options {
    address_spaces: u16,
    udp: bool,
    gc_epoch: Duration,
    trace_sampling: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        address_spaces: 2,
        udp: false,
        gc_epoch: Duration::from_millis(100),
        trace_sampling: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--address-spaces" => {
                opts.address_spaces =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        dstampede_obs::error("daemon", "--address-spaces needs a number");
                        std::process::exit(2);
                    });
            }
            "--udp" => opts.udp = true,
            "--gc-epoch-ms" => {
                let ms: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    dstampede_obs::error("daemon", "--gc-epoch-ms needs a number");
                    std::process::exit(2);
                });
                opts.gc_epoch = Duration::from_millis(ms);
            }
            "--trace-sampling" => {
                opts.trace_sampling =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        dstampede_obs::error("daemon", "--trace-sampling needs a number");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                println!(
                    "dstamped [--address-spaces N] [--udp] [--gc-epoch-ms MS] [--trace-sampling N]\n\
                     Runs a D-Stampede cluster until stdin closes."
                );
                std::process::exit(0);
            }
            other => {
                dstampede_obs::error("daemon", format!("unknown argument {other} (try --help)"));
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    // Operational milestones go through the event log; echo at Info so
    // they still reach the terminal.
    dstampede_obs::global().events().set_echo(Some(Level::Info));
    let opts = parse_args();
    let mut builder = Cluster::builder()
        .address_spaces(opts.address_spaces)
        .trace_sampling(opts.trace_sampling);
    if opts.udp {
        builder = builder.transport(ClusterTransport::Udp(dstampede_clf::UdpConfig::default()));
    }
    let cluster = match builder.build() {
        Ok(c) => c,
        Err(e) => {
            dstampede_obs::error("daemon", format!("failed to start cluster: {e}"));
            std::process::exit(1);
        }
    };
    let gc = GcEpochService::start(
        cluster.spaces(),
        GcEpochConfig {
            period: opts.gc_epoch,
        },
    );

    dstampede_obs::info(
        "daemon",
        format!(
            "dstamped: {} address spaces ({}), name server in as0",
            cluster.len(),
            if opts.udp {
                "udp clf"
            } else {
                "in-process clf"
            }
        ),
    );
    // The listener addresses are the daemon's machine-readable contract
    // (clients parse them from stdout), not diagnostics.
    for i in 0..cluster.len() as u16 {
        if let Ok(addr) = cluster.listener_addr(i) {
            println!("listener as{i}: {addr}");
        }
    }
    dstampede_obs::info("daemon", "serving; close stdin (ctrl-d) to shut down");

    // Serve until stdin closes.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    dstampede_obs::info("daemon", "shutting down");
    gc.shutdown();
    cluster.shutdown();
}
