//! Cluster assembly: multiple address spaces plus listeners.
//!
//! Mirrors the server-program startup of the paper's §4: "the server
//! program creates multiple address spaces N₁ … N_k in the cluster; the
//! server library spawns a listener thread in each address space". The
//! builder picks the CLF backend — in-process channels (one OS process
//! modelling one big SMP) or reliable UDP (separate sockets per address
//! space, modelling distinct cluster nodes).

use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use dstampede_clf::{
    udp_mesh, ClfTransport, FaultPlan, FaultTransport, MemFabric, NetProfile, ShapedTransport,
    UdpConfig,
};
use dstampede_core::{AsId, StmError, StmResult};

use crate::addrspace::AddressSpace;
use crate::failure::{FailureConfig, FailureDetector, RpcConfig};
use crate::listener::{Listener, ListenerConfig};
use crate::placement::Placement;
use crate::reactor::{PeriodicHandle, Reactor, ReactorConfig};
use crate::recorder::{FlightRecorder, RecorderConfig};

/// Which CLF backend interconnects the cluster's address spaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterTransport {
    /// In-process channels ("shared memory within an SMP").
    Mem,
    /// Reliable UDP sockets on loopback ("UDP over a LAN").
    Udp(UdpConfig),
}

/// Configures and builds a [`Cluster`].
#[derive(Debug)]
pub struct ClusterBuilder {
    address_spaces: u16,
    transport: ClusterTransport,
    listeners: bool,
    profile: NetProfile,
    failure: Option<FailureConfig>,
    rpc: Option<RpcConfig>,
    fault_plan: Option<Arc<FaultPlan>>,
    session_lease: Option<Duration>,
    max_sessions: Option<usize>,
    reactor: Option<ReactorConfig>,
    trace_sampling: u64,
    stm_shards: Option<u32>,
    recorder: Option<RecorderConfig>,
    placement: Placement,
    replication: bool,
}

impl ClusterBuilder {
    /// Starts a builder with one address space, in-process transport, and
    /// listeners enabled.
    #[must_use]
    pub fn new() -> Self {
        ClusterBuilder {
            address_spaces: 1,
            transport: ClusterTransport::Mem,
            listeners: true,
            profile: NetProfile::LOOPBACK,
            failure: None,
            rpc: None,
            fault_plan: None,
            session_lease: None,
            max_sessions: None,
            reactor: None,
            trace_sampling: 0,
            stm_shards: None,
            recorder: Some(RecorderConfig::default()),
            placement: Placement::default(),
            replication: true,
        }
    }

    /// Number of address spaces (≥ 1). `AS 0` hosts the name server.
    #[must_use]
    pub fn address_spaces(mut self, n: u16) -> Self {
        self.address_spaces = n.max(1);
        self
    }

    /// Selects the inter-AS transport backend.
    #[must_use]
    pub fn transport(mut self, t: ClusterTransport) -> Self {
        self.transport = t;
        self
    }

    /// Enables or disables per-address-space TCP listeners for end
    /// devices.
    #[must_use]
    pub fn listeners(mut self, enabled: bool) -> Self {
        self.listeners = enabled;
        self
    }

    /// Applies a latency/bandwidth profile to every inter-AS link
    /// (experiment reproduction; defaults to transparent).
    #[must_use]
    pub fn shaped(mut self, profile: NetProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Runs a heartbeat/lease failure detector in every address space
    /// (off by default). Also aligns the flight recorder's peer-health
    /// lease with the detector's, unless
    /// [`ClusterBuilder::flight_recorder`] overrode it explicitly.
    #[must_use]
    pub fn failure_detection(mut self, config: FailureConfig) -> Self {
        self.failure = Some(config);
        if self.recorder == Some(RecorderConfig::default()) {
            self.recorder = Some(RecorderConfig::for_failure(config));
        }
        self
    }

    /// Overrides the flight recorder's tick and health thresholds
    /// (defaults to [`RecorderConfig::default`]: a 1 s tick, ~5 min of
    /// history per series).
    #[must_use]
    pub fn flight_recorder(mut self, config: RecorderConfig) -> Self {
        self.recorder = Some(config);
        self
    }

    /// Disables the flight recorder (no sampling thread; `HistoryPull`
    /// then reports empty rings and `HealthPull` no subjects).
    #[must_use]
    pub fn flight_recorder_off(mut self) -> Self {
        self.recorder = None;
        self
    }

    /// Overrides the RPC deadline/retry policy of every address space.
    #[must_use]
    pub fn rpc_config(mut self, config: RpcConfig) -> Self {
        self.rpc = Some(config);
        self
    }

    /// Injects faults on every inter-AS link according to `plan`
    /// (chaos testing). The fault layer wraps outside any shaping, so
    /// partitions and crashes apply to the shaped traffic.
    #[must_use]
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Applies a session lease to every listener: end-device sessions
    /// silent past the lease are torn down (their connections release).
    #[must_use]
    pub fn session_lease(mut self, lease: Duration) -> Self {
        self.session_lease = Some(lease);
        self
    }

    /// Caps concurrently active surrogate sessions per listener.
    /// Connections arriving at capacity are shed with a clean reject
    /// frame (an error reply the client can back off on) instead of
    /// growing the per-session resource set without bound.
    #[must_use]
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = Some(n.max(1));
        self
    }

    /// Runs the cluster's server hot path on an event-driven reactor:
    /// listeners accept and serve surrogate sessions as cooperatively
    /// scheduled tasks (O(cores) threads instead of a thread per
    /// session), and the background services — failure detector, flight
    /// recorder, replication pump, CLF housekeeping — clock themselves
    /// on the reactor's timer wheel. Off by default (dedicated threads,
    /// the paper's §3.2.2 shape).
    #[must_use]
    pub fn reactor(mut self, config: ReactorConfig) -> Self {
        self.reactor = Some(config);
        self
    }

    /// Enables item-lifecycle tracing in every address space, sampling
    /// every `every_nth` timestamp deterministically (`1` traces
    /// everything, `0` — the default — disables tracing).
    #[must_use]
    pub fn trace_sampling(mut self, every_nth: u64) -> Self {
        self.trace_sampling = every_nth;
        self
    }

    /// Sets the internal storage shard count every address space applies
    /// to containers created without an explicit `shards` attribute
    /// (`stm_shards(1)` serializes each container behind a single lock —
    /// the pre-sharding behaviour, useful as a bench baseline).
    #[must_use]
    pub fn stm_shards(mut self, n: u32) -> Self {
        self.stm_shards = Some(n.max(1));
        self
    }

    /// Where placed creates (end-device `ChannelCreate`/`QueueCreate`)
    /// land: rendezvous-hashed over live members (the default), or
    /// [`Placement::CreatorLocal`] for the paper's creator-locality —
    /// the knob tests use to pin resources.
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Enables or disables follower replication of hosted containers
    /// (on by default; a single-space cluster has no follower and
    /// replicates nothing either way).
    #[must_use]
    pub fn replication(mut self, on: bool) -> Self {
        self.replication = on;
        self
    }

    /// Builds and starts the cluster.
    ///
    /// # Errors
    ///
    /// [`StmError::Protocol`] wrapping socket errors from the UDP backend
    /// or the listeners.
    pub fn build(self) -> StmResult<Cluster> {
        let transports: Vec<Arc<dyn ClfTransport>> = match self.transport {
            ClusterTransport::Mem => {
                let fabric = MemFabric::new();
                (0..self.address_spaces)
                    .map(|i| fabric.endpoint(AsId(i)) as Arc<dyn ClfTransport>)
                    .collect()
            }
            ClusterTransport::Udp(config) => udp_mesh(self.address_spaces, config)
                .map_err(|e| StmError::Protocol(e.to_string()))?
                .into_iter()
                .map(|ep| ep as Arc<dyn ClfTransport>)
                .collect(),
        };

        let spaces: Vec<Arc<AddressSpace>> = transports
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let t = if self.profile.is_transparent() {
                    t
                } else {
                    ShapedTransport::new(t, self.profile)
                };
                let t = match &self.fault_plan {
                    Some(plan) => {
                        FaultTransport::wrap(t, Arc::clone(plan)) as Arc<dyn ClfTransport>
                    }
                    None => t,
                };
                let space = AddressSpace::start(t, i == 0);
                if let Some(rpc) = self.rpc {
                    space.set_rpc_config(rpc);
                }
                if let Some(shards) = self.stm_shards {
                    space.set_default_stm_shards(shards);
                }
                space.metrics().tracer().set_sampling(self.trace_sampling);
                space
            })
            .collect();

        let reactor = match self.reactor {
            Some(config) => {
                Some(Reactor::start(config).map_err(|e| StmError::Protocol(e.to_string()))?)
            }
            None => None,
        };

        // Declare the full membership so cluster-wide stats pulls know
        // whom to fan out to.
        let members: Vec<AsId> = (0..self.address_spaces).map(AsId).collect();
        for s in &spaces {
            s.set_peers(members.clone());
            s.set_placement(self.placement);
            s.set_replication(self.replication && self.address_spaces > 1);
            if let Some(r) = &reactor {
                s.set_reactor(r.clone());
            }
        }

        let listeners = if self.listeners {
            let config = ListenerConfig {
                session_lease: self.session_lease,
                max_sessions: self.max_sessions,
            };
            spaces
                .iter()
                .map(|s| match &reactor {
                    Some(r) => Listener::start_reactor(Arc::clone(s), config, r),
                    None => Listener::start_with(Arc::clone(s), config),
                })
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| StmError::Protocol(e.to_string()))?
        } else {
            Vec::new()
        };

        let detectors = match self.failure {
            Some(config) => spaces
                .iter()
                .map(|s| match &reactor {
                    Some(r) => FailureDetector::start_reactor(Arc::clone(s), config, r),
                    None => FailureDetector::start(Arc::clone(s), config),
                })
                .collect(),
            None => Vec::new(),
        };

        let recorders = match self.recorder {
            Some(config) => spaces
                .iter()
                .map(|s| match &reactor {
                    Some(r) => FlightRecorder::start_reactor(Arc::clone(s), config, r),
                    None => FlightRecorder::start(Arc::clone(s), config),
                })
                .collect(),
            None => Vec::new(),
        };

        // In reactor mode, the timer wheel also clocks the transport's
        // RTO/pacing housekeeping and publishes the executor's own
        // counters into address space 0's registry so the flight
        // recorder's history rings pick them up as `exec/*` series.
        let mut periodics = Vec::new();
        if let Some(r) = &reactor {
            for s in &spaces {
                let transport = Arc::clone(s.transport());
                periodics.push(r.spawn_periodic(Duration::from_millis(5), move || {
                    transport.housekeep();
                    true
                }));
            }
            periodics.push(publish_exec_metrics(r, &spaces[0]));
        }

        Ok(Cluster {
            spaces,
            listeners,
            detectors,
            recorders,
            reactor,
            periodics,
        })
    }
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder::new()
    }
}

/// Mirrors the reactor's [`crate::reactor::ExecMetrics`] into an obs
/// registry every 250 ms: gauges are set, monotone counters are advanced
/// by their delta since the last publication.
fn publish_exec_metrics(reactor: &Reactor, space: &Arc<AddressSpace>) -> PeriodicHandle {
    use std::sync::atomic::Ordering::Relaxed;
    let m = space.metrics();
    let live = m.gauge("exec", "live_tasks");
    let ready = m.gauge("exec", "ready_depth");
    let spawned = m.counter("exec", "tasks_spawned");
    let wakeups = m.counter("exec", "poll_wakeups");
    let timer_fires = m.counter("exec", "timer_fires");
    let parks = m.counter("exec", "parks");
    let unparks = m.counter("exec", "unparks");
    let offloaded = m.counter("exec", "offloaded");
    let r = reactor.clone();
    let mut last = [0u64; 6];
    reactor.spawn_periodic(Duration::from_millis(250), move || {
        let x = r.metrics();
        live.set(i64::try_from(x.live_tasks.load(Relaxed)).unwrap_or(i64::MAX));
        ready.set(i64::try_from(r.ready_depth()).unwrap_or(i64::MAX));
        let now = [
            x.spawned.load(Relaxed),
            x.poll_wakeups.load(Relaxed),
            x.timer_fires.load(Relaxed),
            x.parks.load(Relaxed),
            x.unparks.load(Relaxed),
            x.offloaded.load(Relaxed),
        ];
        for (counter, (cur, prev)) in [
            &spawned,
            &wakeups,
            &timer_fires,
            &parks,
            &unparks,
            &offloaded,
        ]
        .into_iter()
        .zip(now.iter().zip(last.iter()))
        {
            counter.add(cur.saturating_sub(*prev));
        }
        last = now;
        true
    })
}

/// A running D-Stampede cluster.
pub struct Cluster {
    spaces: Vec<Arc<AddressSpace>>,
    listeners: Vec<Arc<Listener>>,
    detectors: Vec<Arc<FailureDetector>>,
    recorders: Vec<Arc<FlightRecorder>>,
    reactor: Option<Reactor>,
    periodics: Vec<PeriodicHandle>,
}

impl Cluster {
    /// Starts building a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// Convenience: an in-process cluster with `n` address spaces and
    /// listeners on each.
    ///
    /// # Errors
    ///
    /// As [`ClusterBuilder::build`].
    pub fn in_process(n: u16) -> StmResult<Cluster> {
        Cluster::builder().address_spaces(n).build()
    }

    /// Number of address spaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// Whether the cluster has no address spaces (never true for built
    /// clusters).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }

    /// The `i`-th address space.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] for out-of-range indices.
    pub fn space(&self, i: u16) -> StmResult<Arc<AddressSpace>> {
        self.spaces
            .get(usize::from(i))
            .cloned()
            .ok_or(StmError::NoSuchResource)
    }

    /// Every address space.
    #[must_use]
    pub fn spaces(&self) -> &[Arc<AddressSpace>] {
        &self.spaces
    }

    /// The TCP address end devices use to join via address space `i`.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] when listeners are disabled or the
    /// index is out of range.
    pub fn listener_addr(&self, i: u16) -> StmResult<SocketAddr> {
        self.listeners
            .get(usize::from(i))
            .map(|l| l.addr())
            .ok_or(StmError::NoSuchResource)
    }

    /// The `i`-th listener.
    ///
    /// # Errors
    ///
    /// As [`Cluster::listener_addr`].
    pub fn listener(&self, i: u16) -> StmResult<Arc<Listener>> {
        self.listeners
            .get(usize::from(i))
            .cloned()
            .ok_or(StmError::NoSuchResource)
    }

    /// Aggregated garbage-collection accounting across every address
    /// space (items/bytes reclaimed, epochs recorded at the aggregator).
    #[must_use]
    pub fn gc_summary(&self) -> dstampede_core::gc::GcSummary {
        self.spaces
            .iter()
            .map(|s| s.gc_local_summary())
            .fold(dstampede_core::gc::GcSummary::default(), |acc, s| {
                acc.merge(s)
            })
    }

    /// A merged telemetry snapshot over every address space (read
    /// directly, no RPC — for tooling co-located with the cluster; remote
    /// tooling uses a `StatsPull` request instead).
    #[must_use]
    pub fn stats_snapshot(&self) -> dstampede_obs::Snapshot {
        let mut merged = dstampede_obs::Snapshot::default();
        for s in &self.spaces {
            merged.merge(&s.stats_snapshot());
        }
        merged
    }

    /// A merged trace dump over every address space (read directly, no
    /// RPC — for tooling co-located with the cluster; remote tooling uses
    /// a `TracePull` request instead).
    #[must_use]
    pub fn trace_dump(&self) -> dstampede_obs::TraceDump {
        let mut merged = dstampede_obs::TraceDump::default();
        for s in &self.spaces {
            merged.merge(&s.trace_dump());
        }
        merged
    }

    /// A merged metric history over every address space (read directly,
    /// no RPC — for tooling co-located with the cluster; remote tooling
    /// uses a `HistoryPull` request instead).
    #[must_use]
    pub fn history_dump(&self) -> dstampede_obs::HistoryDump {
        let mut merged = dstampede_obs::HistoryDump::default();
        for s in &self.spaces {
            merged.merge(&s.history_dump());
        }
        merged
    }

    /// A merged health report over every address space (read directly,
    /// no RPC — for tooling co-located with the cluster; remote tooling
    /// uses a `HealthPull` request instead).
    #[must_use]
    pub fn health_report(&self) -> dstampede_obs::HealthReport {
        let mut merged = dstampede_obs::HealthReport::default();
        for s in &self.spaces {
            merged.merge(&s.health_report());
        }
        merged
    }

    /// The event-driven runtime, when built with
    /// [`ClusterBuilder::reactor`].
    #[must_use]
    pub fn reactor(&self) -> Option<&Reactor> {
        self.reactor.as_ref()
    }

    /// Stops flight recorders, failure detectors, and listeners, then
    /// shuts every address space down (and, in reactor mode, the
    /// executor last, joining its workers).
    pub fn shutdown(&self) {
        for p in &self.periodics {
            p.cancel();
        }
        for r in &self.recorders {
            r.stop();
        }
        for d in &self.detectors {
            d.stop();
        }
        for l in &self.listeners {
            l.shutdown();
        }
        for s in &self.spaces {
            s.shutdown();
        }
        if let Some(r) = &self.reactor {
            r.shutdown();
        }
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("address_spaces", &self.spaces.len())
            .field("listeners", &self.listeners.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
    use dstampede_wire::WaitSpec;

    #[test]
    fn in_process_cluster_basics() {
        let cluster = Cluster::in_process(3).unwrap();
        assert_eq!(cluster.len(), 3);
        assert!(!cluster.is_empty());
        assert!(cluster.space(0).unwrap().nameserver().is_some());
        assert!(cluster.space(1).unwrap().nameserver().is_none());
        assert!(cluster.space(9).is_err());
        assert!(cluster.listener_addr(0).is_ok());
        cluster.shutdown();
    }

    #[test]
    fn cross_space_stream_within_cluster() {
        let cluster = Cluster::in_process(2).unwrap();
        let owner = cluster.space(0).unwrap();
        let peer = cluster.space(1).unwrap();
        let chan = owner.create_channel(None, ChannelAttrs::default());
        let out = owner
            .open_channel(chan.id())
            .unwrap()
            .connect_output()
            .unwrap();
        let inp = peer
            .open_channel(chan.id())
            .unwrap()
            .connect_input(Interest::FromEarliest)
            .unwrap();
        for i in 0..10 {
            out.put(
                Timestamp::new(i),
                Item::from_vec(vec![i as u8]),
                WaitSpec::Forever,
            )
            .unwrap();
        }
        for i in 0..10 {
            let (ts, item) = inp.get_blocking(GetSpec::Exact(Timestamp::new(i))).unwrap();
            assert_eq!(ts.value(), i);
            assert_eq!(item.payload(), &[i as u8]);
            inp.consume_until(ts).unwrap();
        }
        cluster.shutdown();
    }

    #[test]
    fn udp_cluster_cross_space_stream() {
        let cluster = Cluster::builder()
            .address_spaces(2)
            .transport(ClusterTransport::Udp(UdpConfig::default()))
            .listeners(false)
            .build()
            .unwrap();
        let owner = cluster.space(0).unwrap();
        let peer = cluster.space(1).unwrap();
        let chan = owner.create_channel(None, ChannelAttrs::default());
        let out = owner
            .open_channel(chan.id())
            .unwrap()
            .connect_output()
            .unwrap();
        let inp = peer
            .open_channel(chan.id())
            .unwrap()
            .connect_input(Interest::FromEarliest)
            .unwrap();
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        out.put(
            Timestamp::new(1),
            Item::from_vec(payload.clone()),
            WaitSpec::Forever,
        )
        .unwrap();
        let (_, item) = inp.get_blocking(GetSpec::Exact(Timestamp::new(1))).unwrap();
        assert_eq!(item.payload(), &payload[..]);
        cluster.shutdown();
    }

    #[test]
    fn udp_cluster_peer_sack_downgrade_still_delivers() {
        let cluster = Cluster::builder()
            .address_spaces(2)
            .transport(ClusterTransport::Udp(UdpConfig::default()))
            .listeners(false)
            .build()
            .unwrap();
        let owner = cluster.space(0).unwrap();
        let peer = cluster.space(1).unwrap();
        // Downgrade both directions to the legacy cumulative-ACK
        // exchange before any traffic flows.
        owner.set_peer_clf_sack(peer.id(), false);
        peer.set_peer_clf_sack(owner.id(), false);
        let chan = owner.create_channel(None, ChannelAttrs::default());
        let out = owner
            .open_channel(chan.id())
            .unwrap()
            .connect_output()
            .unwrap();
        let inp = peer
            .open_channel(chan.id())
            .unwrap()
            .connect_input(Interest::FromEarliest)
            .unwrap();
        for i in 0..10i64 {
            out.put(
                Timestamp::new(i),
                Item::from_vec(vec![i as u8; 2048]),
                WaitSpec::Forever,
            )
            .unwrap();
        }
        for i in 0..10i64 {
            let (_, item) = inp.get_blocking(GetSpec::Exact(Timestamp::new(i))).unwrap();
            assert_eq!(item.payload(), &vec![i as u8; 2048][..]);
        }
        assert_eq!(
            owner.transport().stats().sack_frames,
            0,
            "downgraded peers must not receive SACK frames"
        );
        assert_eq!(peer.transport().stats().sack_frames, 0);
        cluster.shutdown();
    }

    #[test]
    fn gc_summary_aggregates_across_spaces() {
        let cluster = Cluster::builder()
            .address_spaces(2)
            .listeners(false)
            .build()
            .unwrap();
        for i in 0..2u16 {
            let space = cluster.space(i).unwrap();
            let chan = space.create_channel(None, ChannelAttrs::default());
            let out = space
                .open_channel(chan.id())
                .unwrap()
                .connect_output()
                .unwrap();
            let inp = space
                .open_channel(chan.id())
                .unwrap()
                .connect_input(Interest::FromEarliest)
                .unwrap();
            out.put(
                Timestamp::new(1),
                Item::from_vec(vec![0; 10]),
                WaitSpec::Forever,
            )
            .unwrap();
            inp.consume_until(Timestamp::new(1)).unwrap();
        }
        let summary = cluster.gc_summary();
        assert_eq!(summary.items, 2);
        assert_eq!(summary.bytes, 20);
        cluster.shutdown();
    }

    #[test]
    fn builder_without_listeners() {
        let cluster = Cluster::builder()
            .address_spaces(1)
            .listeners(false)
            .build()
            .unwrap();
        assert!(cluster.listener_addr(0).is_err());
        cluster.shutdown();
    }
}
