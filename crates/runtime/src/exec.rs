//! Shared execution of RPC operations against an address space.
//!
//! Both entry points into an address space — the inter-AS dispatcher and
//! the per-client surrogate threads — funnel requests through
//! [`execute`], which resolves session-local connection handles through a
//! [`ConnTable`] and performs the operation via the proxy layer. Surrogates
//! additionally pass a [`GcNoteQueue`]; garbage hooks installed on behalf
//! of the end device push into it, and the notes ride back piggy-backed on
//! the next reply (paper §3.2.4).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dstampede_core::{AsId, ResourceId, StmError, StmResult};
use dstampede_obs::trace;
use dstampede_wire::{BatchGot, GcNote, Reply, Request, WaitSpec};

use crate::addrspace::AddressSpace;
use crate::proxy::{wait_to_timeout, ChanInput, ChanOutput, QueueInput, QueueOutput};
use crate::replicate::ReplicaAttrs;

/// One session-local connection.
pub enum ConnEntry {
    /// Channel input connection.
    ChanIn(Arc<ChanInput>),
    /// Channel output connection.
    ChanOut(Arc<ChanOutput>),
    /// Queue input connection.
    QueueIn(Arc<QueueInput>),
    /// Queue output connection.
    QueueOut(Arc<QueueOutput>),
}

impl ConnEntry {
    /// Disconnects the underlying connection *explicitly*, on behalf of a
    /// dead owner. Blocked workers may still hold `Arc` clones of the
    /// connection — so merely dropping the table entry would not release
    /// the owner's GC claims; the explicit disconnect advances the
    /// connection's virtual time to infinity, drops its consume marks,
    /// and requeues any in-flight queue tickets.
    pub fn orphan(&self) {
        match self {
            ConnEntry::ChanIn(c) => c.disconnect(),
            ConnEntry::ChanOut(c) => c.disconnect(),
            ConnEntry::QueueIn(q) => q.disconnect(),
            ConnEntry::QueueOut(q) => q.disconnect(),
        }
    }
}

impl fmt::Debug for ConnEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnEntry::ChanIn(c) => write!(f, "ChanIn({})", c.channel_id()),
            ConnEntry::ChanOut(c) => write!(f, "ChanOut({})", c.channel_id()),
            ConnEntry::QueueIn(q) => write!(f, "QueueIn({})", q.queue_id()),
            ConnEntry::QueueOut(q) => write!(f, "QueueOut({})", q.queue_id()),
        }
    }
}

/// Replayed non-idempotent requests answered from cache, at most this
/// many remembered per table (FIFO eviction).
const REPLAY_CACHE_CAP: usize = 512;

/// Maps session-local `u64` handles to live connections.
///
/// Entries are `Arc`-shared so blocking operations can proceed on a clone
/// while the table lock is free; a disconnect removes the entry and the
/// connection closes when the last in-flight operation finishes. Each
/// entry is tagged with the peer address space that opened it (when opened
/// over inter-AS RPC), so [`ConnTable::remove_owned_by`] can reap a dead
/// peer's connections. The table also holds the dedup cache answering
/// replayed [`Request::WithId`] requests.
#[derive(Debug, Default)]
pub struct ConnTable {
    map: Mutex<HashMap<u64, (Option<AsId>, ConnEntry)>>,
    next: AtomicU64,
    replays: Mutex<ReplayCache>,
}

#[derive(Debug, Default)]
struct ReplayCache {
    replies: HashMap<(AsId, u64), Reply>,
    order: VecDeque<(AsId, u64)>,
}

impl ConnTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        ConnTable::default()
    }

    /// Stores a connection opened by `origin` (`None` for connections
    /// opened locally or by an end-device session), returning its handle.
    pub fn insert(&self, origin: Option<AsId>, entry: ConnEntry) -> u64 {
        let handle = self.next.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        self.map.lock().insert(handle, (origin, entry));
        handle
    }

    fn chan_in(&self, handle: u64) -> StmResult<Arc<ChanInput>> {
        match self.map.lock().get(&handle) {
            Some((_, ConnEntry::ChanIn(c))) => Ok(Arc::clone(c)),
            Some(_) => Err(StmError::BadMode),
            None => Err(StmError::NoSuchConnection),
        }
    }

    fn chan_out(&self, handle: u64) -> StmResult<Arc<ChanOutput>> {
        match self.map.lock().get(&handle) {
            Some((_, ConnEntry::ChanOut(c))) => Ok(Arc::clone(c)),
            Some(_) => Err(StmError::BadMode),
            None => Err(StmError::NoSuchConnection),
        }
    }

    fn queue_in(&self, handle: u64) -> StmResult<Arc<QueueInput>> {
        match self.map.lock().get(&handle) {
            Some((_, ConnEntry::QueueIn(q))) => Ok(Arc::clone(q)),
            Some(_) => Err(StmError::BadMode),
            None => Err(StmError::NoSuchConnection),
        }
    }

    fn queue_out(&self, handle: u64) -> StmResult<Arc<QueueOutput>> {
        match self.map.lock().get(&handle) {
            Some((_, ConnEntry::QueueOut(q))) => Ok(Arc::clone(q)),
            Some(_) => Err(StmError::BadMode),
            None => Err(StmError::NoSuchConnection),
        }
    }

    /// Removes a connection (it closes once in-flight operations drain).
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchConnection`] for unknown handles.
    pub fn remove(&self, handle: u64) -> StmResult<()> {
        self.map
            .lock()
            .remove(&handle)
            .map(|_| ())
            .ok_or(StmError::NoSuchConnection)
    }

    /// Removes and returns every connection `peer` opened (for orphaning
    /// after `peer` is declared dead).
    #[must_use]
    pub fn remove_owned_by(&self, peer: AsId) -> Vec<ConnEntry> {
        let mut map = self.map.lock();
        let handles: Vec<u64> = map
            .iter()
            .filter(|(_, (origin, _))| *origin == Some(peer))
            .map(|(h, _)| *h)
            .collect();
        handles
            .into_iter()
            .filter_map(|h| map.remove(&h).map(|(_, entry)| entry))
            .collect()
    }

    /// The cached reply for a replayed `(origin, req_id)`, if any.
    #[must_use]
    pub fn replay_hit(&self, origin: AsId, req_id: u64) -> Option<Reply> {
        self.replays.lock().replies.get(&(origin, req_id)).cloned()
    }

    /// Remembers the reply for `(origin, req_id)` so a retried request is
    /// answered without re-executing.
    pub fn record_replay(&self, origin: AsId, req_id: u64, reply: Reply) {
        let mut cache = self.replays.lock();
        let key = (origin, req_id);
        if cache.replies.insert(key, reply).is_none() {
            cache.order.push_back(key);
            if cache.order.len() > REPLAY_CACHE_CAP {
                if let Some(old) = cache.order.pop_front() {
                    cache.replies.remove(&old);
                }
            }
        }
    }

    /// Number of live connections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether no connections are open.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Drops every connection (session teardown).
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

/// Bounded queue of garbage notifications awaiting delivery to an end
/// device. Oldest notes are dropped beyond the cap — the client's hooks
/// are advisory resource-release callbacks, not a reliable stream.
#[derive(Debug, Default)]
pub struct GcNoteQueue {
    notes: Mutex<Vec<GcNote>>,
}

/// Maximum notes buffered per session.
const GC_NOTE_CAP: usize = 1024;

impl GcNoteQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        GcNoteQueue::default()
    }

    /// Appends a note, evicting the oldest past the cap.
    pub fn push(&self, note: GcNote) {
        let mut notes = self.notes.lock();
        if notes.len() >= GC_NOTE_CAP {
            notes.remove(0);
        }
        notes.push(note);
    }

    /// Takes every pending note.
    #[must_use]
    pub fn drain(&self) -> Vec<GcNote> {
        std::mem::take(&mut *self.notes.lock())
    }

    /// Number of pending notes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.notes.lock().len()
    }

    /// Whether no notes are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.notes.lock().is_empty()
    }
}

/// Whether executing this request may block the calling thread (the
/// dispatcher offloads such requests to a worker thread).
#[must_use]
pub fn is_blocking(req: &Request) -> bool {
    match req {
        Request::ChannelPut { wait, .. }
        | Request::ChannelGet { wait, .. }
        | Request::QueuePut { wait, .. }
        | Request::QueueGet { wait, .. }
        | Request::PutBatch { wait, .. }
        | Request::NsLookup { wait, .. } => !matches!(wait, WaitSpec::NonBlocking),
        // GetBatch resolves every spec non-blocking by contract.
        // A cluster-wide pull blocks on RPC rounds to every peer.
        Request::StatsPull { cluster }
        | Request::TracePull { cluster }
        | Request::HistoryPull { cluster }
        | Request::HealthPull { cluster } => *cluster,
        Request::WithId { req, .. } => is_blocking(req),
        _ => false,
    }
}

/// How a reactor surrogate should run one request (see
/// `crate::listener`'s reactor mode). Blocking waits cannot run on the
/// executor's worker pool directly — a parked worker starves every other
/// session — so each request is classified by where its wakeup would come
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShimPlan {
    /// Run [`execute`] inline: the request cannot actually block here
    /// (non-blocking wait, or a full-condition that reports/evicts
    /// instead of blocking).
    Inline,
    /// Rewrite the wait to `NonBlocking` and retry, parking a task waker
    /// on the local container's [`dstampede_core::WakerSet`] between
    /// attempts.
    Park,
    /// No local wakeup source (remote container, cluster-wide pull,
    /// blocking batch): offload the legacy blocking [`execute`] to a
    /// dedicated thread.
    Offload,
}

/// Classifies `req` for a reactor surrogate.
#[must_use]
pub fn shim_plan(space: &Arc<AddressSpace>, conns: &ConnTable, req: &Request) -> ShimPlan {
    if !is_blocking(req) {
        return ShimPlan::Inline;
    }
    match req {
        Request::ChannelGet { conn, .. } => match conns.chan_in(*conn) {
            Ok(c) if c.is_local() => ShimPlan::Park,
            Ok(_) => ShimPlan::Offload,
            // Unknown handle: inline execute reports the error.
            Err(_) => ShimPlan::Inline,
        },
        Request::QueueGet { conn, .. } => match conns.queue_in(*conn) {
            Ok(q) if q.is_local() => ShimPlan::Park,
            Ok(_) => ShimPlan::Offload,
            Err(_) => ShimPlan::Inline,
        },
        Request::ChannelPut { conn, .. } => match conns.chan_out(*conn) {
            Ok(c) => match c.local_blocks_when_full() {
                Some(true) => ShimPlan::Park,
                Some(false) => ShimPlan::Inline,
                None => ShimPlan::Offload,
            },
            Err(_) => ShimPlan::Inline,
        },
        Request::QueuePut { conn, .. } => match conns.queue_out(*conn) {
            Ok(q) => match q.local_blocks_when_full() {
                Some(true) => ShimPlan::Park,
                Some(false) => ShimPlan::Inline,
                None => ShimPlan::Offload,
            },
            Err(_) => ShimPlan::Inline,
        },
        // A blocking batch put that can really block has per-item blocking
        // semantics a whole-batch retry cannot reproduce (placed items
        // must not re-run); keep the legacy path on a thread.
        Request::PutBatch { conn, .. } => match conns.chan_out(*conn) {
            Ok(c) => match c.local_blocks_when_full() {
                Some(true) => ShimPlan::Offload,
                Some(false) => ShimPlan::Inline,
                None => ShimPlan::Offload,
            },
            Err(_) => match conns.queue_out(*conn) {
                Ok(q) => match q.local_blocks_when_full() {
                    Some(true) => ShimPlan::Offload,
                    Some(false) => ShimPlan::Inline,
                    None => ShimPlan::Offload,
                },
                Err(_) => ShimPlan::Inline,
            },
        },
        Request::NsLookup { .. } => {
            if space.nameserver().is_some() {
                ShimPlan::Park
            } else {
                ShimPlan::Offload
            }
        }
        Request::WithId { req, .. } => shim_plan(space, conns, req),
        // Cluster-wide pulls block on RPC rounds to every peer.
        _ => ShimPlan::Offload,
    }
}

/// Parks `waker` on the wakeup source a blocked `req` waits for. Returns
/// `false` when no local source exists (the caller falls back to inline
/// execution, which reports the underlying error).
pub fn register_parked_waker(
    space: &Arc<AddressSpace>,
    conns: &ConnTable,
    req: &Request,
    waker: &std::task::Waker,
) -> bool {
    match req {
        Request::ChannelGet { conn, .. } => conns
            .chan_in(*conn)
            .is_ok_and(|c| c.register_local_waker(waker)),
        Request::QueueGet { conn, .. } => conns
            .queue_in(*conn)
            .is_ok_and(|q| q.register_local_waker(waker)),
        Request::ChannelPut { conn, .. } => conns
            .chan_out(*conn)
            .is_ok_and(|c| c.register_local_waker(waker)),
        Request::QueuePut { conn, .. } => conns
            .queue_out(*conn)
            .is_ok_and(|q| q.register_local_waker(waker)),
        Request::NsLookup { .. } => match space.nameserver() {
            Some(ns) => {
                ns.register_waker(waker);
                true
            }
            None => false,
        },
        Request::WithId { req, .. } => register_parked_waker(space, conns, req, waker),
        _ => false,
    }
}

/// The request's wait discipline, when it carries one.
#[must_use]
pub fn wait_of(req: &Request) -> Option<WaitSpec> {
    match req {
        Request::ChannelPut { wait, .. }
        | Request::ChannelGet { wait, .. }
        | Request::QueuePut { wait, .. }
        | Request::QueueGet { wait, .. }
        | Request::PutBatch { wait, .. }
        | Request::NsLookup { wait, .. } => Some(*wait),
        Request::WithId { req, .. } => wait_of(req),
        _ => None,
    }
}

/// A copy of `req` with its wait discipline rewritten to `NonBlocking`,
/// for one shim attempt between parks.
#[must_use]
pub fn rewrite_nonblocking(req: &Request) -> Request {
    let mut copy = req.clone();
    fn set_wait(req: &mut Request) {
        match req {
            Request::ChannelPut { wait, .. }
            | Request::ChannelGet { wait, .. }
            | Request::QueuePut { wait, .. }
            | Request::QueueGet { wait, .. }
            | Request::PutBatch { wait, .. }
            | Request::NsLookup { wait, .. } => *wait = WaitSpec::NonBlocking,
            Request::WithId { req, .. } => set_wait(req),
            _ => {}
        }
    }
    set_wait(&mut copy);
    copy
}

/// Whether a reply to a `NonBlocking` attempt means "would have blocked"
/// for the shim retry loop: item not there yet ([`StmError::Absent`]),
/// name not registered yet ([`StmError::NameAbsent`]), or container full
/// ([`StmError::Full`] — only consulted when [`shim_plan`] already proved
/// the container blocks on full).
#[must_use]
pub fn reply_would_block(reply: &Reply) -> bool {
    match reply {
        Reply::Error { code, .. } => {
            *code == StmError::Absent.code()
                || *code == StmError::NameAbsent.code()
                || *code == StmError::Full.code()
        }
        _ => false,
    }
}

fn ok_or_error(result: StmResult<Reply>) -> Reply {
    match result {
        Ok(reply) => reply,
        Err(e) => Reply::from_error(&e),
    }
}

/// Executes one request against an address space.
///
/// `conns` resolves the request's session-local connection handles;
/// `gc` (surrogate sessions only) receives garbage notes for resources the
/// session installed hooks on; `origin` is the peer address space the
/// request arrived from (`None` for local and end-device-session calls) —
/// it tags connections for dead-peer reaping and keys the
/// [`Request::WithId`] dedup cache. `Attach`/`Detach` are
/// session-lifecycle messages handled by the transport layer and answered
/// with a protocol error here.
pub fn execute(
    space: &Arc<AddressSpace>,
    conns: &ConnTable,
    gc: Option<&Arc<GcNoteQueue>>,
    origin: Option<AsId>,
    req: Request,
) -> Reply {
    ok_or_error(execute_inner(space, conns, gc, origin, req))
}

fn execute_inner(
    space: &Arc<AddressSpace>,
    conns: &ConnTable,
    gc: Option<&Arc<GcNoteQueue>>,
    origin: Option<AsId>,
    req: Request,
) -> StmResult<Reply> {
    match req {
        Request::Attach { .. } | Request::Detach => Err(StmError::Protocol(
            "session lifecycle message outside a session".into(),
        )),
        Request::Ping { nonce } => Ok(Reply::Pong { nonce }),
        Request::Heartbeat { .. } => Ok(Reply::Ok), // lease renewed on receipt
        Request::WithId { req_id, req } => {
            let Some(origin_id) = origin else {
                return Err(StmError::Protocol("WithId without an origin".into()));
            };
            if let Some(hit) = conns.replay_hit(origin_id, req_id) {
                return Ok(hit);
            }
            // Errors are cached too: a replayed attempt must observe the
            // original outcome, whatever it was.
            let reply = execute(space, conns, gc, origin, *req);
            conns.record_replay(origin_id, req_id, reply.clone());
            Ok(reply)
        }
        // Creates route through placement only on their first hop
        // (`origin == None`: a local or end-device-session call). A create
        // arriving from a peer was already placed — it lands here, so a
        // forwarded create can never bounce again.
        Request::ChannelCreate { name, attrs } => {
            let resource = if origin.is_none() {
                ResourceId::Channel(space.create_channel_placed(name, attrs)?)
            } else {
                ResourceId::Channel(space.host_channel(name, attrs).id())
            };
            Ok(Reply::Created { resource })
        }
        Request::QueueCreate { name, attrs } => {
            let resource = if origin.is_none() {
                ResourceId::Queue(space.create_queue_placed(name, attrs)?)
            } else {
                ResourceId::Queue(space.host_queue(name, attrs).id())
            };
            Ok(Reply::Created { resource })
        }
        Request::ReplicaOpenChannel { chan, name, attrs } => {
            space.replicas().open(
                ResourceId::Channel(chan),
                name,
                ReplicaAttrs::Channel(attrs),
            );
            Ok(Reply::Ok)
        }
        Request::ReplicaOpenQueue { queue, name, attrs } => {
            space
                .replicas()
                .open(ResourceId::Queue(queue), name, ReplicaAttrs::Queue(attrs));
            Ok(Reply::Ok)
        }
        Request::ReplicatePut {
            resource,
            floor,
            items,
        } => {
            space.replicas().append(resource, floor, &items)?;
            Ok(Reply::Ok)
        }
        Request::ConnectChannelIn {
            chan,
            interest,
            filter,
        } => {
            let conn = space
                .open_channel(chan)?
                .connect_input_filtered(interest, filter)?;
            Ok(Reply::Connected {
                conn: conns.insert(origin, ConnEntry::ChanIn(Arc::new(conn))),
            })
        }
        Request::ConnectChannelOut { chan } => {
            let conn = space.open_channel(chan)?.connect_output()?;
            Ok(Reply::Connected {
                conn: conns.insert(origin, ConnEntry::ChanOut(Arc::new(conn))),
            })
        }
        Request::ConnectQueueIn { queue } => {
            let conn = space.open_queue(queue)?.connect_input()?;
            Ok(Reply::Connected {
                conn: conns.insert(origin, ConnEntry::QueueIn(Arc::new(conn))),
            })
        }
        Request::ConnectQueueOut { queue } => {
            let conn = space.open_queue(queue)?.connect_output()?;
            Ok(Reply::Connected {
                conn: conns.insert(origin, ConnEntry::QueueOut(Arc::new(conn))),
            })
        }
        Request::Disconnect { conn } => {
            conns.remove(conn)?;
            Ok(Reply::Ok)
        }
        Request::ChannelPut {
            conn,
            ts,
            tag,
            payload,
            wait,
        } => {
            let out = conns.chan_out(conn)?;
            // The ambient context (scoped from the request frame by the
            // transport layer) rides into the item so downstream spans —
            // gets, consumes, GC reclamation — join the originating trace.
            let item = dstampede_core::Item::new(payload)
                .with_tag(tag)
                .with_trace(trace::current());
            out.put(ts, item, wait)?;
            Ok(Reply::Ok)
        }
        Request::ChannelGet { conn, spec, wait } => {
            let inp = conns.chan_in(conn)?;
            let (ts, item) = inp.get(spec, wait)?;
            // Export the item's context as the ambient context so the
            // transport layer can stamp it onto the reply frame, carrying
            // the trace back to the caller's address space.
            if item.trace_context().is_some() {
                let _ = trace::set_current(item.trace_context());
            }
            Ok(Reply::Item {
                ts,
                tag: item.tag(),
                payload: item.payload_bytes(),
            })
        }
        Request::ChannelConsume { conn, upto } => {
            conns.chan_in(conn)?.consume_until(upto)?;
            Ok(Reply::Ok)
        }
        Request::ChannelSetVt { conn, vt } => {
            conns
                .chan_in(conn)?
                .set_vt(dstampede_core::VirtualTime::at(vt))?;
            Ok(Reply::Ok)
        }
        Request::QueuePut {
            conn,
            ts,
            tag,
            payload,
            wait,
        } => {
            let out = conns.queue_out(conn)?;
            let item = dstampede_core::Item::new(payload)
                .with_tag(tag)
                .with_trace(trace::current());
            out.put(ts, item, wait)?;
            Ok(Reply::Ok)
        }
        Request::QueueGet { conn, wait } => {
            let inp = conns.queue_in(conn)?;
            let (ts, item, ticket) = inp.get(wait)?;
            if item.trace_context().is_some() {
                let _ = trace::set_current(item.trace_context());
            }
            Ok(Reply::QueueItem {
                ts,
                tag: item.tag(),
                payload: item.payload_bytes(),
                ticket,
            })
        }
        Request::QueueConsume { conn, ticket } => {
            conns.queue_in(conn)?.consume(ticket)?;
            Ok(Reply::Ok)
        }
        Request::QueueRequeue { conn, ticket } => {
            conns.queue_in(conn)?.requeue(ticket)?;
            Ok(Reply::Ok)
        }
        Request::PutBatch { conn, items, wait } => {
            // One frame serves both container kinds: the connection handle
            // decides whether the batch lands in a channel or a queue.
            let entries: Vec<(dstampede_core::Timestamp, dstampede_core::Item)> = items
                .into_iter()
                .map(|i| {
                    // Per-item contexts beat the frame-level ambient one,
                    // so every item keeps an independent causal identity.
                    let ctx = i.trace.or_else(trace::current);
                    (
                        i.ts,
                        dstampede_core::Item::new(i.payload)
                            .with_tag(i.tag)
                            .with_trace(ctx),
                    )
                })
                .collect();
            let results = match conns.chan_out(conn) {
                Ok(out) => out.put_many(entries, wait)?,
                Err(StmError::BadMode) => conns.queue_out(conn)?.put_many(entries, wait)?,
                Err(e) => return Err(e),
            };
            Ok(Reply::BatchResults {
                codes: results
                    .iter()
                    .map(|r| match r {
                        Ok(()) => 0,
                        Err(e) => e.code(),
                    })
                    .collect(),
            })
        }
        Request::GetBatch { conn, specs, max } => {
            let items = match conns.chan_in(conn) {
                Ok(inp) => inp
                    .get_many(&specs)?
                    .into_iter()
                    .map(|r| match r {
                        Ok((ts, item)) => BatchGot {
                            code: 0,
                            ts,
                            tag: item.tag(),
                            payload: item.payload_bytes(),
                            ticket: 0,
                            trace: item.trace_context(),
                        },
                        Err(e) => BatchGot {
                            code: e.code(),
                            ts: dstampede_core::Timestamp::new(0),
                            tag: 0,
                            payload: bytes::Bytes::new(),
                            ticket: 0,
                            trace: None,
                        },
                    })
                    .collect(),
                Err(StmError::BadMode) => conns
                    .queue_in(conn)?
                    .dequeue_many(max as usize)?
                    .into_iter()
                    .map(|(ts, item, ticket)| BatchGot {
                        code: 0,
                        ts,
                        tag: item.tag(),
                        payload: item.payload_bytes(),
                        ticket,
                        trace: item.trace_context(),
                    })
                    .collect(),
                Err(e) => return Err(e),
            };
            Ok(Reply::BatchItems { items })
        }
        Request::NsRegister {
            name,
            resource,
            meta,
        } => {
            space.ns_register(&name, resource, &meta)?;
            Ok(Reply::Ok)
        }
        Request::NsLookup { name, wait } => {
            let (resource, meta) = match wait_to_timeout(wait) {
                None => space.ns_lookup(&name)?,
                Some(timeout) => space.ns_lookup_wait(&name, timeout)?,
            };
            Ok(Reply::NsFound { resource, meta })
        }
        Request::NsUnregister { name } => {
            space.ns_unregister(&name)?;
            Ok(Reply::Ok)
        }
        Request::NsList => Ok(Reply::NsEntries {
            entries: space.ns_list()?,
        }),
        Request::InstallGarbageHook { resource } => {
            let Some(queue) = gc else {
                return Err(StmError::BadMode);
            };
            if resource.owner() != space.id() {
                // Hooks relay only for containers in the surrogate's own
                // address space (the paper's application structure); see
                // DESIGN.md "limitations".
                return Err(StmError::BadMode);
            }
            // Hold the session's note queue weakly: when the surrogate
            // session ends, its hook becomes a no-op instead of pinning the
            // queue for the container's lifetime.
            let sink = Arc::downgrade(queue);
            match resource {
                ResourceId::Channel(id) => {
                    let chan = space.registry().channel(id)?;
                    chan.add_garbage_hook(move |e| {
                        if let Some(sink) = sink.upgrade() {
                            sink.push(GcNote {
                                resource: e.resource,
                                ts: e.ts,
                                tag: e.tag,
                                len: e.len,
                            });
                        }
                    });
                }
                ResourceId::Queue(id) => {
                    let q = space.registry().queue(id)?;
                    q.add_garbage_hook(move |e| {
                        if let Some(sink) = sink.upgrade() {
                            sink.push(GcNote {
                                resource: e.resource,
                                ts: e.ts,
                                tag: e.tag,
                                len: e.len,
                            });
                        }
                    });
                }
            }
            Ok(Reply::Ok)
        }
        Request::GcReport { from, min_vt } => {
            space.gc_record_report(from, dstampede_core::VirtualTime::at(min_vt));
            Ok(Reply::Ok)
        }
        Request::StatsPull { cluster } => {
            let snap = if cluster {
                space.stats_cluster_snapshot()
            } else {
                space.stats_snapshot()
            };
            Ok(Reply::StatsReport {
                snapshot: bytes::Bytes::from(snap.encode()),
            })
        }
        Request::TracePull { cluster } => {
            let dump = if cluster {
                space.trace_cluster_dump()
            } else {
                space.trace_dump()
            };
            Ok(Reply::TraceReport {
                dump: bytes::Bytes::from(dump.encode()),
            })
        }
        Request::HistoryPull { cluster } => {
            let dump = if cluster {
                space.history_cluster_dump()
            } else {
                space.history_dump()
            };
            Ok(Reply::HistoryReport {
                dump: bytes::Bytes::from(dump.encode()),
            })
        }
        Request::HealthPull { cluster } => {
            let report = if cluster {
                space.health_cluster_report()
            } else {
                space.health_report()
            };
            Ok(Reply::HealthReport {
                report: bytes::Bytes::from(report.encode()),
            })
        }
        other => Err(StmError::Protocol(format!("unhandled request {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_core::{AsId, ChanId, Timestamp};

    #[test]
    fn conn_table_handles_are_unique_and_typed() {
        let table = ConnTable::new();
        assert!(table.is_empty());
        assert_eq!(table.remove(1).unwrap_err(), StmError::NoSuchConnection);
        assert_eq!(table.chan_in(1).unwrap_err(), StmError::NoSuchConnection);
    }

    #[test]
    fn gc_note_queue_caps_and_drains() {
        let q = GcNoteQueue::new();
        let note = GcNote {
            resource: ResourceId::Channel(ChanId {
                owner: AsId(0),
                index: 1,
            }),
            ts: Timestamp::new(1),
            tag: 0,
            len: 8,
        };
        for _ in 0..(GC_NOTE_CAP + 10) {
            q.push(note);
        }
        assert_eq!(q.len(), GC_NOTE_CAP);
        let drained = q.drain();
        assert_eq!(drained.len(), GC_NOTE_CAP);
        assert!(q.is_empty());
    }

    #[test]
    fn blocking_classification() {
        use dstampede_core::GetSpec;
        let blocking = Request::ChannelGet {
            conn: 1,
            spec: GetSpec::Latest,
            wait: WaitSpec::Forever,
        };
        let non_blocking = Request::ChannelGet {
            conn: 1,
            spec: GetSpec::Latest,
            wait: WaitSpec::NonBlocking,
        };
        assert!(is_blocking(&blocking));
        assert!(!is_blocking(&non_blocking));
        assert!(!is_blocking(&Request::NsList));
        assert!(is_blocking(&Request::NsLookup {
            name: "x".into(),
            wait: WaitSpec::TimeoutMs(10),
        }));
    }
}
