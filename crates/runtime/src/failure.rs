//! Failure detection: heartbeats, leases, and RPC retry tuning.
//!
//! The paper's §3.3 lists node failure as unhandled: "currently, the
//! D-Stampede runtime does not handle failures of the cluster nodes". This
//! module is the implementation's extension over that limitation. Every
//! address space runs a [`FailureDetector`] that periodically casts a
//! [`Request::Heartbeat`] to each declared peer and checks a *lease* per
//! peer: any traffic from a peer (heartbeat, request, or reply) renews its
//! lease, and a peer silent for `missed` consecutive periods is declared
//! dead. Declaring death triggers the recovery path in
//! [`crate::addrspace::AddressSpace::declare_peer_dead`]: pending calls to
//! the peer fail, its surrogate connections are orphaned (releasing GC
//! claims and requeueing in-flight queue tickets), its stale GC report is
//! retired from the epoch aggregator, and the transport's per-peer ARQ
//! state is purged.
//!
//! [`RpcConfig`] tunes the companion mechanism on the caller side:
//! deadlines and jittered exponential backoff for retried RPCs (see
//! [`crate::addrspace::AddressSpace::call`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dstampede_wire::Request;

use crate::addrspace::AddressSpace;

/// Tuning for the RPC deadline/retry policy of [`AddressSpace::call`].
///
/// Only *non-blocking* operations retry: a blocking `get` may legitimately
/// wait forever, so it keeps a single attempt with an indefinite wait.
/// Non-idempotent operations are wrapped in [`Request::WithId`] before the
/// first attempt so the executor can answer a replayed attempt with the
/// original reply instead of re-executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// Total time budget for one logical call, across every retry.
    pub deadline: Duration,
    /// Wait for a reply to a single attempt before retrying.
    pub attempt_timeout: Duration,
    /// First retry backoff; doubles per retry (with jitter).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            deadline: Duration::from_secs(2),
            attempt_timeout: Duration::from_millis(500),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        }
    }
}

/// Tuning for the heartbeat/lease failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureConfig {
    /// Interval between heartbeat rounds.
    pub period: Duration,
    /// A peer silent for this many consecutive periods is declared dead.
    pub missed: u32,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            period: Duration::from_millis(25),
            missed: 4,
        }
    }
}

impl FailureConfig {
    /// The lease duration implied by this configuration.
    #[must_use]
    pub fn lease(&self) -> Duration {
        self.period * self.missed.max(1)
    }
}

/// Per-address-space heartbeat sender and lease checker.
///
/// One detector runs per address space. Each round it casts a heartbeat to
/// every declared live peer, then expires leases; an expired lease feeds
/// [`AddressSpace::declare_peer_dead`]. Stopping the detector (or dropping
/// it) ends the thread; death declarations already made stay in force.
pub struct FailureDetector {
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    periodic: Mutex<Option<crate::reactor::PeriodicHandle>>,
}

impl FailureDetector {
    /// Starts the detector thread for an address space.
    #[must_use]
    pub fn start(space: Arc<AddressSpace>, config: FailureConfig) -> Arc<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let lease = config.lease();
        let handle = std::thread::Builder::new()
            .name(format!("as-{}-failure", space.id().0))
            .spawn(move || {
                let mut incarnation: u64 = 0;
                while !thread_stop.load(Ordering::Acquire) {
                    if space.is_down() {
                        break;
                    }
                    incarnation += 1;
                    for peer in space.peers() {
                        if peer == space.id() || space.is_peer_dead(peer) {
                            continue;
                        }
                        space.cast(peer, Request::Heartbeat { incarnation });
                    }
                    space.check_leases(lease);
                    std::thread::sleep(config.period);
                }
            })
            .expect("spawning the failure detector thread failed");
        Arc::new(FailureDetector {
            stop,
            thread: Mutex::new(Some(handle)),
            periodic: Mutex::new(None),
        })
    }

    /// Starts the detector as a periodic reactor task: the heartbeat and
    /// lease cadence becomes one timer-wheel entry instead of a dedicated
    /// sleeping thread.
    #[must_use]
    pub fn start_reactor(
        space: Arc<AddressSpace>,
        config: FailureConfig,
        reactor: &crate::reactor::Reactor,
    ) -> Arc<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let task_stop = Arc::clone(&stop);
        let lease = config.lease();
        let mut incarnation: u64 = 0;
        let handle = reactor.spawn_periodic(config.period, move || {
            if task_stop.load(Ordering::Acquire) || space.is_down() {
                return false;
            }
            incarnation += 1;
            for peer in space.peers() {
                if peer == space.id() || space.is_peer_dead(peer) {
                    continue;
                }
                space.cast(peer, Request::Heartbeat { incarnation });
            }
            space.check_leases(lease);
            true
        });
        Arc::new(FailureDetector {
            stop,
            thread: Mutex::new(None),
            periodic: Mutex::new(Some(handle)),
        })
    }

    /// Stops the detector. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
        if let Some(p) = self.periodic.lock().take() {
            p.cancel();
        }
    }
}

impl fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailureDetector")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for FailureDetector {
    fn drop(&mut self) {
        self.stop();
    }
}
