//! Distributed garbage-collection epochs.
//!
//! Per-container reclamation is precise and local to the owner (connection
//! state lives where the container lives; see [`crate::proxy`]). What
//! remains distributed is the *cluster-wide* view: "garbage collection is
//! performed on the cluster concurrent with application execution" (paper
//! §3.2.2). The epoch service provides that view: every address space
//! periodically reports the minimum virtual time of its registered threads
//! to the aggregator in address space 0, which maintains the global
//! virtual-time floor — the boundary below which every timestamp in the
//! computation is provably dead. Applications and tooling read it for
//! monitoring and for sizing retention windows.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dstampede_core::AsId;
#[cfg(test)]
use dstampede_core::VirtualTime;
use dstampede_wire::Request;

use crate::addrspace::AddressSpace;

/// Tuning for the epoch service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcEpochConfig {
    /// Interval between reports from each address space.
    pub period: Duration,
}

impl Default for GcEpochConfig {
    fn default() -> Self {
        GcEpochConfig {
            period: Duration::from_millis(50),
        }
    }
}

/// Periodic reporter threads feeding the aggregator in address space 0.
pub struct GcEpochService {
    stop: Arc<AtomicBool>,
    reporters: Mutex<Vec<std::thread::JoinHandle<()>>>,
    periodics: Mutex<Vec<crate::reactor::PeriodicHandle>>,
}

impl GcEpochService {
    /// Starts a reporter thread for each given address space.
    ///
    /// Pass every address space of the computation, including address
    /// space 0 itself (its report is recorded directly).
    #[must_use]
    pub fn start(spaces: &[Arc<AddressSpace>], config: GcEpochConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let mut reporters = Vec::with_capacity(spaces.len());
        for space in spaces {
            let space = Arc::clone(space);
            let stop2 = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name(format!("as-{}-gc-epoch", space.id().0))
                .spawn(move || {
                    while !stop2.load(Ordering::Acquire) {
                        report_once(&space);
                        std::thread::sleep(config.period);
                    }
                })
                .expect("spawning the GC epoch reporter failed");
            reporters.push(handle);
        }
        GcEpochService {
            stop,
            reporters: Mutex::new(reporters),
            periodics: Mutex::new(Vec::new()),
        }
    }

    /// Starts the reporters as periodic reactor tasks: the epoch cadence
    /// becomes one timer-wheel entry per address space instead of a
    /// dedicated sleeping thread each. A non-nameserver report is a peer
    /// RPC with a bounded deadline; at the default 50 ms cadence that is
    /// an acceptable occupancy for one of the executor's workers.
    #[must_use]
    pub fn start_reactor(
        spaces: &[Arc<AddressSpace>],
        config: GcEpochConfig,
        reactor: &crate::reactor::Reactor,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let mut periodics = Vec::with_capacity(spaces.len());
        for space in spaces {
            let space = Arc::clone(space);
            let stop2 = Arc::clone(&stop);
            periodics.push(reactor.spawn_periodic(config.period, move || {
                if stop2.load(Ordering::Acquire) {
                    return false;
                }
                report_once(&space);
                true
            }));
        }
        GcEpochService {
            stop,
            reporters: Mutex::new(Vec::new()),
            periodics: Mutex::new(periodics),
        }
    }

    /// Stops every reporter. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for h in self.reporters.lock().drain(..) {
            let _ = h.join();
        }
        for p in self.periodics.lock().drain(..) {
            p.cancel();
        }
    }
}

impl fmt::Debug for GcEpochService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcEpochService")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .field("reporters", &self.reporters.lock().len())
            .finish()
    }
}

impl Drop for GcEpochService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sends (or locally records) one epoch report for an address space.
pub fn report_once(space: &Arc<AddressSpace>) {
    if space.is_down() {
        return;
    }
    let started = std::time::Instant::now();
    let min_vt = space.threads().min_vt();
    if space.id() == AsId::NAMESERVER {
        space.gc_record_report(space.id(), min_vt);
    } else {
        // Fire-and-forget: a lost report is corrected next epoch.
        space.cast(
            AsId::NAMESERVER,
            Request::GcReport {
                from: space.id(),
                min_vt: min_vt.floor(),
            },
        );
    }
    let metrics = space.metrics();
    metrics.counter("gc", "epochs").inc();
    metrics
        .histogram("gc", "epoch_duration_us")
        .record_duration(started.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use dstampede_core::Timestamp;

    fn vt(v: i64) -> VirtualTime {
        VirtualTime::at(Timestamp::new(v))
    }

    #[test]
    fn epochs_aggregate_cluster_minimum() {
        let cluster = Cluster::builder()
            .address_spaces(3)
            .listeners(false)
            .build()
            .unwrap();
        let a0 = cluster.space(0).unwrap();
        let a1 = cluster.space(1).unwrap();
        let a2 = cluster.space(2).unwrap();

        let t0 = a0.threads().register("t0");
        let t1 = a1.threads().register("t1");
        let t2 = a2.threads().register("t2");
        t0.set_vt(vt(30));
        t1.set_vt(vt(10));
        t2.set_vt(vt(20));

        let service = GcEpochService::start(
            cluster.spaces(),
            GcEpochConfig {
                period: Duration::from_millis(10),
            },
        );
        // Wait for at least one round of reports to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while a0.gc_global_floor() != vt(10) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(a0.gc_global_floor(), vt(10));

        // Advancing the slowest thread advances the global floor.
        t1.set_vt(vt(25));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while a0.gc_global_floor() != vt(20) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(a0.gc_global_floor(), vt(20));

        service.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn manual_report_and_summary() {
        let cluster = Cluster::builder()
            .address_spaces(1)
            .listeners(false)
            .build()
            .unwrap();
        let a0 = cluster.space(0).unwrap();
        let t = a0.threads().register("worker");
        t.set_vt(vt(5));
        report_once(&a0);
        assert_eq!(a0.gc_global_floor(), vt(5));
        let summary = a0.gc_local_summary();
        assert_eq!(summary.items, 0);
        assert!(summary.epochs >= 1);
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let cluster = Cluster::builder()
            .address_spaces(1)
            .listeners(false)
            .build()
            .unwrap();
        let service = GcEpochService::start(cluster.spaces(), GcEpochConfig::default());
        service.shutdown();
        service.shutdown();
        cluster.shutdown();
    }
}
