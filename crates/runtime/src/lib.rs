//! # dstampede-runtime — the distributed D-Stampede runtime
//!
//! Distributes the space-time memory of `dstampede-core` across *address
//! spaces* connected by CLF, following the architecture of the paper's
//! §3.2:
//!
//! * [`AddressSpace`] — owns a container registry and runs a dispatcher
//!   for operations arriving from peers;
//! * [`ChannelRef`]/[`QueueRef`] — location-transparent access: the same
//!   connection API whether the container is local or remote;
//! * [`NameServer`] — the rendezvous registry hosted in address space 0;
//! * [`Listener`] — accepts end devices and spawns a *surrogate thread*
//!   per client, which fields all of that client's calls and queues its
//!   garbage-collection notifications;
//! * [`Cluster`] — assembles N address spaces over shared-memory or
//!   reliable-UDP CLF, with a listener per address space.
//!
//! ## Example
//!
//! A two-address-space cluster streaming across spaces:
//!
//! ```
//! use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
//! use dstampede_runtime::Cluster;
//! use dstampede_wire::WaitSpec;
//!
//! # fn main() -> Result<(), dstampede_core::StmError> {
//! let cluster = Cluster::in_process(2)?;
//! let chan = cluster.space(0)?.create_channel(None, ChannelAttrs::default());
//!
//! let out = cluster.space(0)?.open_channel(chan.id())?.connect_output()?;
//! let inp = cluster
//!     .space(1)?
//!     .open_channel(chan.id())?
//!     .connect_input(Interest::FromEarliest)?;
//!
//! out.put(Timestamp::new(0), Item::from_vec(vec![42]), WaitSpec::Forever)?;
//! let (_, item) = inp.get_blocking(GetSpec::Exact(Timestamp::new(0)))?;
//! assert_eq!(item.payload(), &[42]);
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addrspace;
pub mod cluster;
pub mod exec;
pub mod failure;
pub mod gc_epoch;
pub mod listener;
pub mod nameserver;
pub mod placement;
pub mod proto;
pub mod proxy;
pub mod reactor;
pub mod recorder;
pub mod replicate;

pub use addrspace::AddressSpace;
pub use cluster::{Cluster, ClusterBuilder, ClusterTransport};
pub use exec::{ConnEntry, ConnTable, GcNoteQueue};
pub use failure::{FailureConfig, FailureDetector, RpcConfig};
pub use gc_epoch::{GcEpochConfig, GcEpochService};
pub use listener::{Listener, ListenerConfig, ListenerStats};
pub use nameserver::NameServer;
pub use placement::Placement;
pub use proxy::{ChanInput, ChanOutput, ChannelRef, QueueInput, QueueOutput, QueueRef};
pub use reactor::{Reactor, ReactorConfig};
pub use recorder::{FlightRecorder, RecorderConfig};
pub use replicate::{ReplicaStore, Replicator};
