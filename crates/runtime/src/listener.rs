//! The listener and surrogate threads.
//!
//! "There is a listener thread on the cluster (part of the server library)
//! that listens to new end devices joining a D-Stampede computation. Upon
//! joining, a specific surrogate thread is created on the cluster on
//! behalf of the new end device. All subsequent D-Stampede calls from this
//! end device are fielded and carried out by this specific surrogate
//! thread. ... The surrogate thread ceases to exist when the end device
//! goes away." (paper §3.2.2)
//!
//! Sessions negotiate their codec with a single identification byte (XDR
//! for C clients, JDR for Java clients) and then exchange length-prefixed
//! frames. If a client vanishes without detaching — a crash, the failure
//! case the paper lists as unhandled (§3.3) — the surrogate tears the
//! session down anyway: its connections drop, releasing GC claims and
//! requeueing in-flight queue items. That cleanup is this implementation's
//! extension over the paper.

use std::fmt;
use std::io::Read;
#[cfg(test)]
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dstampede_obs::trace;
use dstampede_wire::{
    codec_for, read_frame_bytes, write_encoded, CodecId, Reply, ReplyFrame, Request,
};

use crate::addrspace::AddressSpace;
use crate::exec::{execute, ConnTable, GcNoteQueue};

/// Tuning for a listener's surrogate sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ListenerConfig {
    /// Tears a session down when the end device sends nothing for this
    /// long — the session lease. Long-idle clients keep their lease alive
    /// with [`Request::Heartbeat`] (any request renews it). `None`
    /// disables the lease: a vanished client is only noticed when the
    /// kernel reports the TCP connection gone.
    pub session_lease: Option<Duration>,
}

/// How a surrogate session ended.
enum SessionEnd {
    /// The client sent `Detach`.
    Clean,
    /// I/O or protocol error — the client crashed or corrupted the stream.
    Dirty,
    /// The session lease expired without traffic.
    LeaseExpired,
}

/// Counters describing a listener's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ListenerStats {
    /// Sessions accepted so far.
    pub sessions_started: u64,
    /// Sessions that ended with a clean `Detach`.
    pub clean_detaches: u64,
    /// Sessions that ended on I/O or protocol error (client crash).
    pub dirty_teardowns: u64,
    /// Sessions torn down because their lease expired (silent client).
    pub lease_teardowns: u64,
    /// Surrogates currently alive.
    pub active_surrogates: usize,
}

#[derive(Debug, Default)]
struct ListenerCounters {
    sessions_started: AtomicU64,
    clean_detaches: AtomicU64,
    dirty_teardowns: AtomicU64,
    lease_teardowns: AtomicU64,
    active: AtomicUsize,
}

/// The same lifecycle events mirrored into the address space's metrics
/// registry, so session churn is visible to `stats`, snapshots, and the
/// flight recorder's `sessions` health subject (the local-only
/// [`ListenerStats`] view predates the registry and is kept for tests).
/// Arcs are resolved once at listener startup; the per-session path
/// pays only the atomic bumps.
struct SessionMetrics {
    started: Arc<dstampede_obs::Counter>,
    clean: Arc<dstampede_obs::Counter>,
    dirty: Arc<dstampede_obs::Counter>,
    lease: Arc<dstampede_obs::Counter>,
    active: Arc<dstampede_obs::Gauge>,
}

impl SessionMetrics {
    fn for_space(space: &AddressSpace) -> Self {
        let m = space.metrics();
        SessionMetrics {
            started: m.counter("session", "started"),
            clean: m.counter("session", "clean_detaches"),
            dirty: m.counter("session", "dirty_teardowns"),
            lease: m.counter("session", "lease_teardowns"),
            active: m.gauge("session", "active"),
        }
    }
}

/// A TCP listener accepting end devices into an address space.
pub struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ListenerCounters>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Listener {
    /// Starts a listener for the given address space on an ephemeral
    /// loopback port, with no session lease.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn start(space: Arc<AddressSpace>) -> std::io::Result<Arc<Listener>> {
        Listener::start_with(space, ListenerConfig::default())
    }

    /// Starts a listener with explicit session tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn start_with(
        space: Arc<AddressSpace>,
        config: ListenerConfig,
    ) -> std::io::Result<Arc<Listener>> {
        let tcp = TcpListener::bind("127.0.0.1:0")?;
        tcp.set_nonblocking(true)?;
        let addr = tcp.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ListenerCounters::default());

        let loop_stop = Arc::clone(&stop);
        let loop_counters = Arc::clone(&counters);
        let handle = std::thread::Builder::new()
            .name(format!("as-{}-listener", space.id().0))
            .spawn(move || {
                accept_loop(&space, &tcp, config, &loop_stop, &loop_counters);
            })?;

        Ok(Arc::new(Listener {
            addr,
            stop,
            counters,
            accept_thread: Mutex::new(Some(handle)),
        }))
    }

    /// The address end devices connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of session counters.
    #[must_use]
    pub fn stats(&self) -> ListenerStats {
        ListenerStats {
            sessions_started: self.counters.sessions_started.load(Ordering::Relaxed),
            clean_detaches: self.counters.clean_detaches.load(Ordering::Relaxed),
            dirty_teardowns: self.counters.dirty_teardowns.load(Ordering::Relaxed),
            lease_teardowns: self.counters.lease_teardowns.load(Ordering::Relaxed),
            active_surrogates: self.counters.active.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new sessions (existing surrogates run on).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for Listener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Listener")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    space: &Arc<AddressSpace>,
    tcp: &TcpListener,
    config: ListenerConfig,
    stop: &Arc<AtomicBool>,
    counters: &Arc<ListenerCounters>,
) {
    let metrics = Arc::new(SessionMetrics::for_space(space));
    let mut next_session: u64 = 1;
    while !stop.load(Ordering::Acquire) {
        match tcp.accept() {
            Ok((stream, _)) => {
                let session = next_session;
                next_session += 1;
                counters.sessions_started.fetch_add(1, Ordering::Relaxed);
                counters.active.fetch_add(1, Ordering::Relaxed);
                metrics.started.inc();
                metrics.active.inc();
                let surrogate_space = Arc::clone(space);
                let surrogate_counters = Arc::clone(counters);
                let surrogate_metrics = Arc::clone(&metrics);
                let spawned = std::thread::Builder::new()
                    .name(format!("surrogate-{session}"))
                    .spawn(move || {
                        let end = run_surrogate(&surrogate_space, stream, session, config);
                        let (counter, metric) = match end {
                            SessionEnd::Clean => {
                                (&surrogate_counters.clean_detaches, &surrogate_metrics.clean)
                            }
                            SessionEnd::Dirty => (
                                &surrogate_counters.dirty_teardowns,
                                &surrogate_metrics.dirty,
                            ),
                            SessionEnd::LeaseExpired => (
                                &surrogate_counters.lease_teardowns,
                                &surrogate_metrics.lease,
                            ),
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        metric.inc();
                        surrogate_counters.active.fetch_sub(1, Ordering::Relaxed);
                        surrogate_metrics.active.dec();
                    });
                if spawned.is_err() {
                    counters.active.fetch_sub(1, Ordering::Relaxed);
                    metrics.active.dec();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Runs one surrogate session to completion.
fn run_surrogate(
    space: &Arc<AddressSpace>,
    mut stream: std::net::TcpStream,
    session: u64,
    config: ListenerConfig,
) -> SessionEnd {
    let _ = stream.set_nodelay(true);
    // The lease doubles as the read timeout: a client silent past it is
    // presumed crashed, and the session (with its connections and their
    // GC claims) is torn down instead of lingering forever.
    let _ = stream.set_read_timeout(config.session_lease);

    // Codec negotiation: one identification byte.
    let mut codec_byte = [0u8; 1];
    if stream.read_exact(&mut codec_byte).is_err() {
        return SessionEnd::Dirty;
    }
    let Ok(codec_id) = CodecId::from_byte(codec_byte[0]) else {
        return SessionEnd::Dirty;
    };
    let codec = codec_for(codec_id);

    let conns = ConnTable::new();
    let gc = Arc::new(GcNoteQueue::new());
    let latency = space.metrics().histogram("rpc", "surrogate_latency_us");

    loop {
        let frame = match read_frame_bytes(&mut stream) {
            Ok(f) => f,
            Err(e)
                if config.session_lease.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                dstampede_obs::warn(
                    "listener",
                    format!("session {session} lease expired; tearing down"),
                );
                space
                    .metrics()
                    .counter("failure", "session_lease_expirations")
                    .inc();
                return SessionEnd::LeaseExpired; // conns drop: claims release
            }
            Err(_) => return SessionEnd::Dirty, // client went away
        };
        let request = match codec.decode_request(&frame) {
            Ok(r) => r,
            Err(_) => return SessionEnd::Dirty, // protocol corruption
        };
        let (reply, done, reply_trace) = match request.req {
            Request::Attach { .. } => (
                Reply::Attached {
                    session,
                    as_id: space.id(),
                },
                false,
                None,
            ),
            Request::Detach => (Reply::Ok, true, None),
            other => {
                // The end device's trace context becomes ambient while the
                // surrogate carries out the call on its behalf, so spans
                // recorded on the cluster parent under the device's span.
                let guard = trace::scope(request.trace);
                let started = std::time::Instant::now();
                let reply = execute(space, &conns, Some(&gc), None, other);
                latency.record_duration(started.elapsed());
                let reply_trace = trace::current();
                drop(guard);
                (reply, false, reply_trace)
            }
        };
        let reply_frame = ReplyFrame {
            seq: request.seq,
            gc_notes: gc.drain(),
            reply,
            trace: reply_trace,
        };
        let encoded = match codec.encode_reply(&reply_frame) {
            Ok(b) => b,
            Err(_) => return SessionEnd::Dirty,
        };
        if write_encoded(&mut stream, &encoded).is_err() {
            return SessionEnd::Dirty;
        }
        if done {
            return SessionEnd::Clean; // conns drop here: clean detach
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_clf::MemFabric;
    use dstampede_core::AsId;
    use dstampede_wire::RequestFrame;

    fn setup() -> (Arc<AddressSpace>, Arc<Listener>) {
        let fabric = MemFabric::new();
        let space = AddressSpace::start(fabric.endpoint(AsId(0)), true);
        let listener = Listener::start(Arc::clone(&space)).unwrap();
        (space, listener)
    }

    fn attach_raw(addr: SocketAddr, codec: CodecId) -> std::net::TcpStream {
        let mut s = dstampede_clf::tcp_connect(addr).unwrap();
        s.write_all(&[codec.byte()]).unwrap();
        s
    }

    fn roundtrip(
        stream: &mut std::net::TcpStream,
        codec: &dyn dstampede_wire::Codec,
        seq: u64,
        req: Request,
    ) -> ReplyFrame {
        let encoded = codec.encode_request(&RequestFrame::new(seq, req)).unwrap();
        write_encoded(&mut *stream, &encoded).unwrap();
        let frame = read_frame_bytes(&mut *stream).unwrap();
        codec.decode_reply(&frame).unwrap()
    }

    #[test]
    fn attach_ping_detach_with_both_codecs() {
        let (space, listener) = setup();
        for codec_id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(codec_id);
            let mut s = attach_raw(listener.addr(), codec_id);
            let reply = roundtrip(
                &mut s,
                codec.as_ref(),
                1,
                Request::Attach {
                    client_name: "t".into(),
                },
            );
            assert!(matches!(reply.reply, Reply::Attached { .. }));
            let reply = roundtrip(&mut s, codec.as_ref(), 2, Request::Ping { nonce: 5 });
            assert_eq!(reply.reply, Reply::Pong { nonce: 5 });
            assert_eq!(reply.seq, 2);
            let reply = roundtrip(&mut s, codec.as_ref(), 3, Request::Detach);
            assert_eq!(reply.reply, Reply::Ok);
        }
        // Wait for surrogate threads to finish.
        for _ in 0..100 {
            if listener.stats().active_surrogates == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = listener.stats();
        assert_eq!(stats.sessions_started, 2);
        assert_eq!(stats.clean_detaches, 2);
        assert_eq!(stats.dirty_teardowns, 0);
        listener.shutdown();
        space.shutdown();
    }

    #[test]
    fn client_crash_tears_surrogate_down() {
        let (space, listener) = setup();
        let codec = codec_for(CodecId::Xdr);
        let mut s = attach_raw(listener.addr(), CodecId::Xdr);
        let _ = roundtrip(
            &mut s,
            codec.as_ref(),
            1,
            Request::Attach {
                client_name: "crasher".into(),
            },
        );
        drop(s); // crash without Detach
        for _ in 0..200 {
            if listener.stats().active_surrogates == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = listener.stats();
        assert_eq!(stats.active_surrogates, 0);
        assert_eq!(stats.dirty_teardowns, 1);
        listener.shutdown();
        space.shutdown();
    }

    #[test]
    fn bad_codec_byte_closes_session() {
        let (space, listener) = setup();
        let mut s = dstampede_clf::tcp_connect(listener.addr()).unwrap();
        s.write_all(&[99]).unwrap();
        // The surrogate drops the connection; a read returns EOF.
        let mut buf = [0u8; 1];
        // Allow time for teardown.
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0);
        listener.shutdown();
        space.shutdown();
    }
}
