//! The listener and surrogate threads.
//!
//! "There is a listener thread on the cluster (part of the server library)
//! that listens to new end devices joining a D-Stampede computation. Upon
//! joining, a specific surrogate thread is created on the cluster on
//! behalf of the new end device. All subsequent D-Stampede calls from this
//! end device are fielded and carried out by this specific surrogate
//! thread. ... The surrogate thread ceases to exist when the end device
//! goes away." (paper §3.2.2)
//!
//! Sessions negotiate their codec with a single identification byte (XDR
//! for C clients, JDR for Java clients) and then exchange length-prefixed
//! frames. If a client vanishes without detaching — a crash, the failure
//! case the paper lists as unhandled (§3.3) — the surrogate tears the
//! session down anyway: its connections drop, releasing GC claims and
//! requeueing in-flight queue items. That cleanup is this implementation's
//! extension over the paper.

use std::collections::HashMap;
use std::fmt;
use std::future::Future;
use std::io::Read;
#[cfg(test)]
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::Poll;
use std::time::Duration;

use parking_lot::Mutex;

use bytes::Bytes;
use dstampede_core::StmError;
use dstampede_obs::trace;
use dstampede_obs::trace::TraceContext;
use dstampede_wire::{
    codec_for, read_frame_bytes, write_encoded, CodecId, EncodedFrame, Reply, ReplyFrame, Request,
    WaitSpec, MAX_FRAME,
};

use crate::addrspace::AddressSpace;
use crate::exec::{
    execute, register_parked_waker, reply_would_block, rewrite_nonblocking, shim_plan, wait_of,
    ConnTable, GcNoteQueue, ShimPlan,
};
use crate::reactor::{AsyncTcpListener, AsyncTcpStream, PeriodicHandle, Reactor, Sleep};

/// Tuning for a listener's surrogate sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ListenerConfig {
    /// Tears a session down when the end device sends nothing for this
    /// long — the session lease. Long-idle clients keep their lease alive
    /// with [`Request::Heartbeat`] (any request renews it). `None`
    /// disables the lease: a vanished client is only noticed when the
    /// kernel reports the TCP connection gone.
    pub session_lease: Option<Duration>,
    /// Upper bound on concurrently active surrogate sessions. A
    /// connection arriving at capacity is shed with a clean reject frame
    /// (an [`StmError::Full`]-coded error answering its first request)
    /// instead of growing the session set without bound. `None` admits
    /// every connection.
    pub max_sessions: Option<usize>,
}

/// How a surrogate session ended.
enum SessionEnd {
    /// The client sent `Detach`.
    Clean,
    /// I/O or protocol error — the client crashed or corrupted the stream.
    Dirty,
    /// The session lease expired without traffic.
    LeaseExpired,
}

/// Counters describing a listener's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ListenerStats {
    /// Sessions accepted so far.
    pub sessions_started: u64,
    /// Sessions that ended with a clean `Detach`.
    pub clean_detaches: u64,
    /// Sessions that ended on I/O or protocol error (client crash).
    pub dirty_teardowns: u64,
    /// Sessions torn down because their lease expired (silent client).
    pub lease_teardowns: u64,
    /// Connections shed at the [`ListenerConfig::max_sessions`] cap.
    pub sessions_rejected: u64,
    /// Surrogates currently alive.
    pub active_surrogates: usize,
}

#[derive(Debug, Default)]
struct ListenerCounters {
    sessions_started: AtomicU64,
    clean_detaches: AtomicU64,
    dirty_teardowns: AtomicU64,
    lease_teardowns: AtomicU64,
    sessions_rejected: AtomicU64,
    active: AtomicUsize,
}

/// The same lifecycle events mirrored into the address space's metrics
/// registry, so session churn is visible to `stats`, snapshots, and the
/// flight recorder's `sessions` health subject (the local-only
/// [`ListenerStats`] view predates the registry and is kept for tests).
/// Arcs are resolved once at listener startup; the per-session path
/// pays only the atomic bumps.
struct SessionMetrics {
    started: Arc<dstampede_obs::Counter>,
    clean: Arc<dstampede_obs::Counter>,
    dirty: Arc<dstampede_obs::Counter>,
    lease: Arc<dstampede_obs::Counter>,
    rejected: Arc<dstampede_obs::Counter>,
    active: Arc<dstampede_obs::Gauge>,
}

impl SessionMetrics {
    fn for_space(space: &AddressSpace) -> Self {
        let m = space.metrics();
        SessionMetrics {
            started: m.counter("session", "started"),
            clean: m.counter("session", "clean_detaches"),
            dirty: m.counter("session", "dirty_teardowns"),
            lease: m.counter("session", "lease_teardowns"),
            rejected: m.counter("session", "rejected"),
            active: m.gauge("session", "active"),
        }
    }
}

/// Per-session state shared between a reactor surrogate, the lease
/// reaper, and listener shutdown. Reactor surrogates cannot use
/// `set_read_timeout` (the socket is nonblocking), so one periodic task
/// scans these slots and shuts down the socket of any session whose
/// pending frame read has outlived the lease; the surrogate's read then
/// fails and `expired` tells it why. [`Listener::shutdown`] closes every
/// registered socket the same way: a frozen executor cannot answer
/// clients, so their sockets must deliver EOF instead (the legacy path
/// does not need this — its surrogate threads outlive the listener).
struct LeaseSlot {
    /// Tick at which the current frame read started.
    read_started: Arc<AtomicU64>,
    /// Whether the surrogate is currently parked in a frame read. The
    /// lease clocks only the wait for the *next request*, matching the
    /// legacy read-timeout semantics: a long-blocking STM call does not
    /// expire the session.
    reading: Arc<AtomicBool>,
    /// Set by the reaper before shutting the socket down.
    expired: Arc<AtomicBool>,
    /// Shares the surrogate's descriptor rather than duplicating it:
    /// one fd per session instead of two at 10⁴ sessions.
    sock: std::sync::Arc<std::net::TcpStream>,
}

type LeaseTable = Arc<Mutex<HashMap<u64, LeaseSlot>>>;

/// A TCP listener accepting end devices into an address space.
pub struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ListenerCounters>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    reaper: Mutex<Option<PeriodicHandle>>,
    reactor_mode: bool,
    /// Reactor-mode session sockets, closed on shutdown (empty in legacy
    /// mode, where surrogate threads survive the listener).
    sessions: LeaseTable,
}

impl Listener {
    /// Starts a listener for the given address space on an ephemeral
    /// loopback port, with no session lease.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn start(space: Arc<AddressSpace>) -> std::io::Result<Arc<Listener>> {
        Listener::start_with(space, ListenerConfig::default())
    }

    /// Starts a listener with explicit session tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn start_with(
        space: Arc<AddressSpace>,
        config: ListenerConfig,
    ) -> std::io::Result<Arc<Listener>> {
        let tcp = TcpListener::bind("127.0.0.1:0")?;
        tcp.set_nonblocking(true)?;
        let addr = tcp.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ListenerCounters::default());

        let loop_stop = Arc::clone(&stop);
        let loop_counters = Arc::clone(&counters);
        let handle = std::thread::Builder::new()
            .name(format!("as-{}-listener", space.id().0))
            .spawn(move || {
                accept_loop(&space, &tcp, config, &loop_stop, &loop_counters);
            })?;

        Ok(Arc::new(Listener {
            addr,
            stop,
            counters,
            accept_thread: Mutex::new(Some(handle)),
            reaper: Mutex::new(None),
            reactor_mode: false,
            sessions: Arc::new(Mutex::new(HashMap::new())),
        }))
    }

    /// Starts a listener whose accept loop and surrogates run as reactor
    /// tasks instead of dedicated threads: one parked state machine per
    /// session, O(cores) threads total. Wire clients cannot tell the two
    /// modes apart.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn start_reactor(
        space: Arc<AddressSpace>,
        config: ListenerConfig,
        reactor: &Reactor,
    ) -> std::io::Result<Arc<Listener>> {
        let tcp = TcpListener::bind("127.0.0.1:0")?;
        let addr = tcp.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ListenerCounters::default());
        let leases: LeaseTable = Arc::new(Mutex::new(HashMap::new()));

        let reaper = config.session_lease.map(|lease| {
            let lease_ticks = reactor.ticks_of(lease).max(1);
            let period =
                Duration::from_millis(u64::try_from(lease.as_millis() / 4).unwrap_or(u64::MAX))
                    .clamp(Duration::from_millis(10), Duration::from_secs(1));
            let reaper_reactor = reactor.clone();
            let reaper_leases = Arc::clone(&leases);
            reactor.spawn_periodic(period, move || {
                let now = reaper_reactor.now_tick();
                for slot in reaper_leases.lock().values() {
                    if slot.reading.load(Ordering::Acquire)
                        && now.saturating_sub(slot.read_started.load(Ordering::Acquire))
                            > lease_ticks
                    {
                        slot.expired.store(true, Ordering::Release);
                        let _ = slot.sock.shutdown(std::net::Shutdown::Both);
                    }
                }
                true
            })
        });

        let accepter = AsyncTcpListener::new(tcp, reactor)?;
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_reactor = reactor.clone();
        let accept_leases = Arc::clone(&leases);
        reactor.spawn(async move {
            let metrics = Arc::new(SessionMetrics::for_space(&space));
            let mut next_session: u64 = 1;
            loop {
                let Ok((stream, _)) = accepter.accept().await else {
                    break;
                };
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let at_capacity = config
                    .max_sessions
                    .is_some_and(|max| accept_counters.active.load(Ordering::Relaxed) >= max);
                if at_capacity {
                    accept_counters
                        .sessions_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    metrics.rejected.inc();
                    let reject_reactor = accept_reactor.clone();
                    accept_reactor.spawn(async move {
                        reject_session_async(stream, &reject_reactor).await;
                    });
                    continue;
                }
                let session = next_session;
                next_session += 1;
                accept_counters
                    .sessions_started
                    .fetch_add(1, Ordering::Relaxed);
                accept_counters.active.fetch_add(1, Ordering::Relaxed);
                metrics.started.inc();
                metrics.active.inc();
                let surrogate_space = Arc::clone(&space);
                let surrogate_counters = Arc::clone(&accept_counters);
                let surrogate_metrics = Arc::clone(&metrics);
                let surrogate_reactor = accept_reactor.clone();
                let surrogate_leases = Arc::clone(&accept_leases);
                accept_reactor.spawn(async move {
                    let end = run_surrogate_async(
                        &surrogate_space,
                        &surrogate_reactor,
                        stream,
                        session,
                        &surrogate_leases,
                    )
                    .await;
                    let (counter, metric) = match end {
                        SessionEnd::Clean => {
                            (&surrogate_counters.clean_detaches, &surrogate_metrics.clean)
                        }
                        SessionEnd::Dirty => (
                            &surrogate_counters.dirty_teardowns,
                            &surrogate_metrics.dirty,
                        ),
                        SessionEnd::LeaseExpired => (
                            &surrogate_counters.lease_teardowns,
                            &surrogate_metrics.lease,
                        ),
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    metric.inc();
                    surrogate_counters.active.fetch_sub(1, Ordering::Relaxed);
                    surrogate_metrics.active.dec();
                });
            }
        });

        Ok(Arc::new(Listener {
            addr,
            stop,
            counters,
            accept_thread: Mutex::new(None),
            reaper: Mutex::new(reaper),
            reactor_mode: true,
            sessions: leases,
        }))
    }

    /// The address end devices connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of session counters.
    #[must_use]
    pub fn stats(&self) -> ListenerStats {
        ListenerStats {
            sessions_started: self.counters.sessions_started.load(Ordering::Relaxed),
            clean_detaches: self.counters.clean_detaches.load(Ordering::Relaxed),
            dirty_teardowns: self.counters.dirty_teardowns.load(Ordering::Relaxed),
            lease_teardowns: self.counters.lease_teardowns.load(Ordering::Relaxed),
            sessions_rejected: self.counters.sessions_rejected.load(Ordering::Relaxed),
            active_surrogates: self.counters.active.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new sessions (existing surrogates run on).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        if let Some(p) = self.reaper.lock().take() {
            p.cancel();
        }
        if self.reactor_mode {
            // Poke the parked accept task so it observes `stop` and exits.
            let _ = std::net::TcpStream::connect(self.addr);
            // Close every live session socket: once the executor stops,
            // frozen surrogate tasks can never answer again, so clients
            // (including connection-handle drops sending `Disconnect`)
            // must see EOF rather than hang. Surrogates parked in a frame
            // read finish now, while the workers are still running.
            for slot in self.sessions.lock().values() {
                let _ = slot.sock.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl fmt::Debug for Listener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Listener")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    space: &Arc<AddressSpace>,
    tcp: &TcpListener,
    config: ListenerConfig,
    stop: &Arc<AtomicBool>,
    counters: &Arc<ListenerCounters>,
) {
    let metrics = Arc::new(SessionMetrics::for_space(space));
    let mut next_session: u64 = 1;
    while !stop.load(Ordering::Acquire) {
        match tcp.accept() {
            Ok((stream, _)) => {
                let at_capacity = config
                    .max_sessions
                    .is_some_and(|max| counters.active.load(Ordering::Relaxed) >= max);
                if at_capacity {
                    counters.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                    metrics.rejected.inc();
                    reject_session(stream);
                    continue;
                }
                let session = next_session;
                next_session += 1;
                counters.sessions_started.fetch_add(1, Ordering::Relaxed);
                counters.active.fetch_add(1, Ordering::Relaxed);
                metrics.started.inc();
                metrics.active.inc();
                let surrogate_space = Arc::clone(space);
                let surrogate_counters = Arc::clone(counters);
                let surrogate_metrics = Arc::clone(&metrics);
                let spawned = std::thread::Builder::new()
                    .name(format!("surrogate-{session}"))
                    .spawn(move || {
                        let end = run_surrogate(&surrogate_space, stream, session, config);
                        let (counter, metric) = match end {
                            SessionEnd::Clean => {
                                (&surrogate_counters.clean_detaches, &surrogate_metrics.clean)
                            }
                            SessionEnd::Dirty => (
                                &surrogate_counters.dirty_teardowns,
                                &surrogate_metrics.dirty,
                            ),
                            SessionEnd::LeaseExpired => (
                                &surrogate_counters.lease_teardowns,
                                &surrogate_metrics.lease,
                            ),
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        metric.inc();
                        surrogate_counters.active.fetch_sub(1, Ordering::Relaxed);
                        surrogate_metrics.active.dec();
                    });
                if spawned.is_err() {
                    counters.active.fetch_sub(1, Ordering::Relaxed);
                    metrics.active.dec();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Runs one surrogate session to completion.
fn run_surrogate(
    space: &Arc<AddressSpace>,
    mut stream: std::net::TcpStream,
    session: u64,
    config: ListenerConfig,
) -> SessionEnd {
    let _ = stream.set_nodelay(true);
    // The lease doubles as the read timeout: a client silent past it is
    // presumed crashed, and the session (with its connections and their
    // GC claims) is torn down instead of lingering forever.
    let _ = stream.set_read_timeout(config.session_lease);

    // Codec negotiation: one identification byte.
    let mut codec_byte = [0u8; 1];
    if stream.read_exact(&mut codec_byte).is_err() {
        return SessionEnd::Dirty;
    }
    let Ok(codec_id) = CodecId::from_byte(codec_byte[0]) else {
        return SessionEnd::Dirty;
    };
    let codec = codec_for(codec_id);

    let conns = ConnTable::new();
    let gc = Arc::new(GcNoteQueue::new());
    let latency = space.metrics().histogram("rpc", "surrogate_latency_us");

    loop {
        let frame = match read_frame_bytes(&mut stream) {
            Ok(f) => f,
            Err(e)
                if config.session_lease.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                dstampede_obs::warn(
                    "listener",
                    format!("session {session} lease expired; tearing down"),
                );
                space
                    .metrics()
                    .counter("failure", "session_lease_expirations")
                    .inc();
                return SessionEnd::LeaseExpired; // conns drop: claims release
            }
            Err(_) => return SessionEnd::Dirty, // client went away
        };
        let request = match codec.decode_request(&frame) {
            Ok(r) => r,
            Err(_) => return SessionEnd::Dirty, // protocol corruption
        };
        let (reply, done, reply_trace) = match request.req {
            Request::Attach { .. } => (
                Reply::Attached {
                    session,
                    as_id: space.id(),
                },
                false,
                None,
            ),
            Request::Detach => (Reply::Ok, true, None),
            other => {
                // The end device's trace context becomes ambient while the
                // surrogate carries out the call on its behalf, so spans
                // recorded on the cluster parent under the device's span.
                let guard = trace::scope(request.trace);
                let started = std::time::Instant::now();
                let reply = execute(space, &conns, Some(&gc), None, other);
                latency.record_duration(started.elapsed());
                let reply_trace = trace::current();
                drop(guard);
                (reply, false, reply_trace)
            }
        };
        let reply_frame = ReplyFrame {
            seq: request.seq,
            gc_notes: gc.drain(),
            reply,
            trace: reply_trace,
        };
        let encoded = match codec.encode_reply(&reply_frame) {
            Ok(b) => b,
            Err(_) => return SessionEnd::Dirty,
        };
        if write_encoded(&mut stream, &encoded).is_err() {
            return SessionEnd::Dirty;
        }
        if done {
            return SessionEnd::Clean; // conns drop here: clean detach
        }
    }
}

/// The reply shed connections get at the session cap: a stable
/// [`StmError::Full`] code so clients can back off and retry, with a
/// detail string naming the real cause.
fn capacity_reply() -> Reply {
    Reply::Error {
        code: StmError::Full.code(),
        detail: "listener at max-sessions capacity; retry later".to_owned(),
    }
}

/// Sheds one legacy-path connection at capacity: negotiates the codec,
/// answers the first frame (the `Attach`) with [`capacity_reply`], and
/// closes. A short read timeout bounds how long a silent peer can stall
/// the accept loop.
fn reject_session(mut stream: std::net::TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut codec_byte = [0u8; 1];
    if stream.read_exact(&mut codec_byte).is_err() {
        return;
    }
    let Ok(codec_id) = CodecId::from_byte(codec_byte[0]) else {
        return;
    };
    let codec = codec_for(codec_id);
    let Ok(frame) = read_frame_bytes(&mut stream) else {
        return;
    };
    let Ok(request) = codec.decode_request(&frame) else {
        return;
    };
    let reply_frame = ReplyFrame {
        seq: request.seq,
        gc_notes: Vec::new(),
        reply: capacity_reply(),
        trace: None,
    };
    if let Ok(encoded) = codec.encode_reply(&reply_frame) {
        let _ = write_encoded(&mut stream, &encoded);
    }
}

/// Async twin of [`read_frame_bytes`], buffered: each `read` drains as
/// much as the socket holds, so a header+body frame costs one syscall
/// instead of two and a pipelined frame already buffered costs none.
struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader {
            buf: vec![0; 8 * 1024],
            start: 0,
            end: 0,
        }
    }

    fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Pulls more bytes off the socket, compacting (and growing, bounded
    /// by the `MAX_FRAME` check in `read_frame`) so at least `need`
    /// bytes of spare room exist.
    async fn fill(&mut self, stream: &AsyncTcpStream, need: usize) -> std::io::Result<()> {
        if self.start > 0 && (self.start == self.end || self.buf.len() - self.end < need) {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() < self.end + need {
            self.buf.resize(self.end + need, 0);
        }
        let n = stream.read_some(&mut self.buf[self.end..]).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed mid-read",
            ));
        }
        self.end += n;
        Ok(())
    }

    async fn read_frame(&mut self, stream: &AsyncTcpStream) -> std::io::Result<Bytes> {
        while self.buffered() < 4 {
            self.fill(stream, 4 - self.buffered()).await?;
        }
        let header: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 buffered bytes");
        let len = u32::from_be_bytes(header) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds limit"),
            ));
        }
        while self.buffered() < 4 + len {
            self.fill(stream, 4 + len - self.buffered()).await?;
        }
        let mut payload = dstampede_wire::pool::get(len).into_vec();
        payload.clear();
        payload.extend_from_slice(&self.buf[self.start + 4..self.start + 4 + len]);
        self.start += 4 + len;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        Ok(Bytes::from(payload))
    }
}

/// Async twin of [`write_encoded`]: header and segments flattened into
/// one buffer (no vectored nonblocking write in std).
async fn write_encoded_async(stream: &AsyncTcpStream, frame: &EncodedFrame) -> std::io::Result<()> {
    if frame.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", frame.len()),
        ));
    }
    let mut buf = Vec::with_capacity(4 + frame.len());
    buf.extend_from_slice(&u32::try_from(frame.len()).unwrap_or(u32::MAX).to_be_bytes());
    for seg in frame.segments() {
        buf.extend_from_slice(seg);
    }
    stream.write_all(&buf).await
}

/// Races `fut` against an absolute-tick deadline. `None` on timeout.
async fn with_deadline<F: Future + Unpin>(mut sleep: Sleep, mut fut: F) -> Option<F::Output> {
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = Pin::new(&mut fut).poll(cx) {
            return Poll::Ready(Some(v));
        }
        if Pin::new(&mut sleep).poll(cx).is_ready() {
            return Poll::Ready(None);
        }
        Poll::Pending
    })
    .await
}

/// Reactor twin of [`reject_session`], bounded by a timer-wheel deadline
/// instead of a read timeout.
async fn reject_session_async(stream: std::net::TcpStream, reactor: &Reactor) {
    let _ = stream.set_nodelay(true);
    let Ok(stream) = AsyncTcpStream::new(stream, reactor) else {
        return;
    };
    let sleep = reactor.sleep(Duration::from_millis(200));
    let exchange = Box::pin(async {
        let mut codec_byte = [0u8; 1];
        stream.read_exact(&mut codec_byte).await.ok()?;
        let codec_id = CodecId::from_byte(codec_byte[0]).ok()?;
        let codec = codec_for(codec_id);
        let frame = FrameReader::new().read_frame(&stream).await.ok()?;
        let request = codec.decode_request(&frame).ok()?;
        let reply_frame = ReplyFrame {
            seq: request.seq,
            gc_notes: Vec::new(),
            reply: capacity_reply(),
            trace: None,
        };
        let encoded = codec.encode_reply(&reply_frame).ok()?;
        write_encoded_async(&stream, &encoded).await.ok()
    });
    let _ = with_deadline(sleep, exchange).await;
}

/// Runs one surrogate session as a reactor task, registering its lease
/// slot for the reaper while it lives.
async fn run_surrogate_async(
    space: &Arc<AddressSpace>,
    reactor: &Reactor,
    stream: std::net::TcpStream,
    session: u64,
    leases: &LeaseTable,
) -> SessionEnd {
    let _ = stream.set_nodelay(true);
    let stream = std::sync::Arc::new(stream);
    let read_started = Arc::new(AtomicU64::new(reactor.now_tick()));
    let reading = Arc::new(AtomicBool::new(false));
    let expired = Arc::new(AtomicBool::new(false));
    // Registered for every session, not only leased ones: listener
    // shutdown needs the socket to deliver EOF to the client.
    leases.lock().insert(
        session,
        LeaseSlot {
            read_started: Arc::clone(&read_started),
            reading: Arc::clone(&reading),
            expired: Arc::clone(&expired),
            sock: std::sync::Arc::clone(&stream),
        },
    );
    let end = surrogate_frames(space, reactor, stream, session, &read_started, &reading).await;
    leases.lock().remove(&session);
    if matches!(end, SessionEnd::Dirty) && expired.load(Ordering::Acquire) {
        dstampede_obs::warn(
            "listener",
            format!("session {session} lease expired; tearing down"),
        );
        space
            .metrics()
            .counter("failure", "session_lease_expirations")
            .inc();
        return SessionEnd::LeaseExpired;
    }
    end
}

/// The reactor surrogate's frame loop — mirrors [`run_surrogate`], with
/// blocking requests dispatched per [`shim_plan`] so a wait parks this
/// task, never a worker thread.
async fn surrogate_frames(
    space: &Arc<AddressSpace>,
    reactor: &Reactor,
    stream: std::sync::Arc<std::net::TcpStream>,
    session: u64,
    read_started: &AtomicU64,
    reading: &AtomicBool,
) -> SessionEnd {
    let Ok(stream) = AsyncTcpStream::from_shared(stream, reactor) else {
        return SessionEnd::Dirty;
    };

    let mut codec_byte = [0u8; 1];
    read_started.store(reactor.now_tick(), Ordering::Release);
    reading.store(true, Ordering::Release);
    let negotiated = stream.read_exact(&mut codec_byte).await;
    reading.store(false, Ordering::Release);
    if negotiated.is_err() {
        return SessionEnd::Dirty;
    }
    let Ok(codec_id) = CodecId::from_byte(codec_byte[0]) else {
        return SessionEnd::Dirty;
    };
    let codec = codec_for(codec_id);

    let conns = Arc::new(ConnTable::new());
    let gc = Arc::new(GcNoteQueue::new());
    let latency = space.metrics().histogram("rpc", "surrogate_latency_us");
    let mut frames = FrameReader::new();

    loop {
        read_started.store(reactor.now_tick(), Ordering::Release);
        reading.store(true, Ordering::Release);
        let frame = frames.read_frame(&stream).await;
        reading.store(false, Ordering::Release);
        let Ok(frame) = frame else {
            return SessionEnd::Dirty; // client (or the lease reaper) closed
        };
        let request = match codec.decode_request(&frame) {
            Ok(r) => r,
            Err(_) => return SessionEnd::Dirty, // protocol corruption
        };
        let (reply, done, reply_trace) = match request.req {
            Request::Attach { .. } => (
                Reply::Attached {
                    session,
                    as_id: space.id(),
                },
                false,
                None,
            ),
            Request::Detach => (Reply::Ok, true, None),
            other => {
                let started = std::time::Instant::now();
                let (reply, reply_trace) =
                    dispatch_shimmed(space, reactor, &conns, &gc, other, request.trace).await;
                latency.record_duration(started.elapsed());
                (reply, false, reply_trace)
            }
        };
        let reply_frame = ReplyFrame {
            seq: request.seq,
            gc_notes: gc.drain(),
            reply,
            trace: reply_trace,
        };
        let encoded = match codec.encode_reply(&reply_frame) {
            Ok(b) => b,
            Err(_) => return SessionEnd::Dirty,
        };
        if write_encoded_async(&stream, &encoded).await.is_err() {
            return SessionEnd::Dirty;
        }
        if done {
            return SessionEnd::Clean; // conns drop here: clean detach
        }
    }
}

/// Executes one surrogate request under the shim discipline: inline when
/// it cannot block, parked on the container's waker set when the wakeup
/// is local, offloaded to a blocking thread otherwise. The end device's
/// trace context is scoped around each synchronous slice — never across
/// an await, since the ambient scope is thread-local.
async fn dispatch_shimmed(
    space: &Arc<AddressSpace>,
    reactor: &Reactor,
    conns: &Arc<ConnTable>,
    gc: &Arc<GcNoteQueue>,
    req: Request,
    trace_ctx: Option<TraceContext>,
) -> (Reply, Option<TraceContext>) {
    match shim_plan(space, conns, &req) {
        ShimPlan::Inline => {
            let guard = trace::scope(trace_ctx);
            let reply = execute(space, conns, Some(gc), None, req);
            let reply_trace = trace::current();
            drop(guard);
            (reply, reply_trace)
        }
        ShimPlan::Park => park_execute(space, reactor, conns, gc, req, trace_ctx).await,
        ShimPlan::Offload => {
            let space = Arc::clone(space);
            let conns = Arc::clone(conns);
            let gc = Arc::clone(gc);
            reactor
                .run_blocking("surrogate-offload", move || {
                    let guard = trace::scope(trace_ctx);
                    let reply = execute(&space, &conns, Some(&gc), None, req);
                    let reply_trace = trace::current();
                    drop(guard);
                    (reply, reply_trace)
                })
                .await
        }
    }
}

/// Runs a blocking request as park-and-retry: register this task's waker
/// on the wakeup source, attempt a `NonBlocking` rewrite, and go
/// `Pending` while the attempt reports would-block. Registration happens
/// *before* the attempt (the [`dstampede_core::WakerSet`] contract), so
/// a publish racing the attempt re-wakes the task instead of being lost.
/// `TimeoutMs` waits arm a timer-wheel [`Sleep`] checked after each
/// failed attempt.
async fn park_execute(
    space: &Arc<AddressSpace>,
    reactor: &Reactor,
    conns: &Arc<ConnTable>,
    gc: &Arc<GcNoteQueue>,
    req: Request,
    trace_ctx: Option<TraceContext>,
) -> (Reply, Option<TraceContext>) {
    let attempt = rewrite_nonblocking(&req);
    let mut sleep = match wait_of(&req) {
        Some(WaitSpec::TimeoutMs(ms)) => Some(reactor.sleep(Duration::from_millis(u64::from(ms)))),
        _ => None,
    };
    std::future::poll_fn(move |cx| {
        let registered = register_parked_waker(space, conns, &req, cx.waker());
        let guard = trace::scope(trace_ctx);
        let reply = execute(space, conns, Some(gc), None, attempt.clone());
        let reply_trace = trace::current();
        drop(guard);
        // An unregistrable source (conn torn down mid-request) degrades
        // to the inline attempt's own error rather than spinning.
        if !(registered && reply_would_block(&reply)) {
            return Poll::Ready((reply, reply_trace));
        }
        if let Some(s) = sleep.as_mut() {
            if Pin::new(s).poll(cx).is_ready() {
                return Poll::Ready((Reply::from_error(&StmError::Timeout), None));
            }
        }
        Poll::Pending
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_clf::MemFabric;
    use dstampede_core::AsId;
    use dstampede_wire::RequestFrame;

    fn setup() -> (Arc<AddressSpace>, Arc<Listener>) {
        let fabric = MemFabric::new();
        let space = AddressSpace::start(fabric.endpoint(AsId(0)), true);
        let listener = Listener::start(Arc::clone(&space)).unwrap();
        (space, listener)
    }

    fn attach_raw(addr: SocketAddr, codec: CodecId) -> std::net::TcpStream {
        let mut s = dstampede_clf::tcp_connect(addr).unwrap();
        s.write_all(&[codec.byte()]).unwrap();
        s
    }

    fn roundtrip(
        stream: &mut std::net::TcpStream,
        codec: &dyn dstampede_wire::Codec,
        seq: u64,
        req: Request,
    ) -> ReplyFrame {
        let encoded = codec.encode_request(&RequestFrame::new(seq, req)).unwrap();
        write_encoded(&mut *stream, &encoded).unwrap();
        let frame = read_frame_bytes(&mut *stream).unwrap();
        codec.decode_reply(&frame).unwrap()
    }

    #[test]
    fn attach_ping_detach_with_both_codecs() {
        let (space, listener) = setup();
        for codec_id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(codec_id);
            let mut s = attach_raw(listener.addr(), codec_id);
            let reply = roundtrip(
                &mut s,
                codec.as_ref(),
                1,
                Request::Attach {
                    client_name: "t".into(),
                },
            );
            assert!(matches!(reply.reply, Reply::Attached { .. }));
            let reply = roundtrip(&mut s, codec.as_ref(), 2, Request::Ping { nonce: 5 });
            assert_eq!(reply.reply, Reply::Pong { nonce: 5 });
            assert_eq!(reply.seq, 2);
            let reply = roundtrip(&mut s, codec.as_ref(), 3, Request::Detach);
            assert_eq!(reply.reply, Reply::Ok);
        }
        // Wait for surrogate threads to finish.
        for _ in 0..100 {
            if listener.stats().active_surrogates == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = listener.stats();
        assert_eq!(stats.sessions_started, 2);
        assert_eq!(stats.clean_detaches, 2);
        assert_eq!(stats.dirty_teardowns, 0);
        listener.shutdown();
        space.shutdown();
    }

    #[test]
    fn client_crash_tears_surrogate_down() {
        let (space, listener) = setup();
        let codec = codec_for(CodecId::Xdr);
        let mut s = attach_raw(listener.addr(), CodecId::Xdr);
        let _ = roundtrip(
            &mut s,
            codec.as_ref(),
            1,
            Request::Attach {
                client_name: "crasher".into(),
            },
        );
        drop(s); // crash without Detach
        for _ in 0..200 {
            if listener.stats().active_surrogates == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = listener.stats();
        assert_eq!(stats.active_surrogates, 0);
        assert_eq!(stats.dirty_teardowns, 1);
        listener.shutdown();
        space.shutdown();
    }

    #[test]
    fn bad_codec_byte_closes_session() {
        let (space, listener) = setup();
        let mut s = dstampede_clf::tcp_connect(listener.addr()).unwrap();
        s.write_all(&[99]).unwrap();
        // The surrogate drops the connection; a read returns EOF.
        let mut buf = [0u8; 1];
        // Allow time for teardown.
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0);
        listener.shutdown();
        space.shutdown();
    }
}
