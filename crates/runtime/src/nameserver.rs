//! The name server.
//!
//! "Application threads can register (and un-register) all pertinent
//! information (such as names of channels and queues, as well as their
//! intended use in the application) with this name server. Any new thread
//! that starts up in the application anywhere in the entire network of the
//! Octopus model can query this name server" (paper §3.1).
//!
//! One instance lives in address space [`AsId::NAMESERVER`]
//! (conventionally `AS 0`); remote address spaces and end devices reach it
//! through the normal RPC vocabulary. Lookups can block until the name
//! appears, which is how dynamically-joining components rendezvous.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dstampede_core::{ResourceId, StmError, StmResult, WakerSet};
use dstampede_wire::NsEntry;

#[allow(unused_imports)] // doc link
use dstampede_core::AsId;

/// The registry of named resources.
pub struct NameServer {
    entries: Mutex<HashMap<String, (ResourceId, String)>>,
    cv: Condvar,
    /// Reactor-task counterpart of `cv`: parked wakers, woken on every
    /// registration.
    wakers: WakerSet,
}

impl NameServer {
    /// An empty name server.
    #[must_use]
    pub fn new() -> Self {
        NameServer {
            entries: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            wakers: WakerSet::new(),
        }
    }

    /// Registers `name → resource` with free-form metadata.
    ///
    /// # Errors
    ///
    /// [`StmError::NameExists`] if the name is taken.
    pub fn register(&self, name: &str, resource: ResourceId, meta: &str) -> StmResult<()> {
        let mut entries = self.entries.lock();
        if entries.contains_key(name) {
            return Err(StmError::NameExists);
        }
        entries.insert(name.to_owned(), (resource, meta.to_owned()));
        drop(entries);
        self.cv.notify_all();
        self.wakers.wake_all();
        Ok(())
    }

    /// Non-blocking lookup.
    ///
    /// # Errors
    ///
    /// [`StmError::NameAbsent`] if not registered.
    pub fn lookup(&self, name: &str) -> StmResult<(ResourceId, String)> {
        self.entries
            .lock()
            .get(name)
            .cloned()
            .ok_or(StmError::NameAbsent)
    }

    /// Blocking lookup: waits until the name is registered, or up to
    /// `timeout` when one is given.
    ///
    /// # Errors
    ///
    /// [`StmError::Timeout`] on expiry.
    pub fn lookup_wait(
        &self,
        name: &str,
        timeout: Option<Duration>,
    ) -> StmResult<(ResourceId, String)> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut entries = self.entries.lock();
        loop {
            if let Some(found) = entries.get(name) {
                return Ok(found.clone());
            }
            match deadline {
                None => self.cv.wait(&mut entries),
                Some(d) => {
                    if self.cv.wait_until(&mut entries, d).timed_out() {
                        return Err(StmError::Timeout);
                    }
                }
            }
        }
    }

    /// Parks a reactor task until the next registration. Register first,
    /// then retry [`NameServer::lookup`]; spurious wakes are expected.
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.wakers.register(waker);
    }

    /// Removes a registration.
    ///
    /// # Errors
    ///
    /// [`StmError::NameAbsent`] if not registered.
    pub fn unregister(&self, name: &str) -> StmResult<()> {
        self.entries
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or(StmError::NameAbsent)
    }

    /// Every current registration, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<NsEntry> {
        let mut out: Vec<NsEntry> = self
            .entries
            .lock()
            .iter()
            .map(|(name, (resource, meta))| NsEntry {
                name: name.clone(),
                resource: *resource,
                meta: meta.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registrations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

impl Default for NameServer {
    fn default() -> Self {
        NameServer::new()
    }
}

impl fmt::Debug for NameServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameServer")
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_core::{AsId, ChanId};
    use std::sync::Arc;
    use std::thread;

    fn res(i: u32) -> ResourceId {
        ResourceId::Channel(ChanId {
            owner: AsId(0),
            index: i,
        })
    }

    #[test]
    fn register_lookup_unregister() {
        let ns = NameServer::new();
        ns.register("cam0", res(1), "left camera").unwrap();
        assert_eq!(ns.lookup("cam0").unwrap(), (res(1), "left camera".into()));
        ns.unregister("cam0").unwrap();
        assert_eq!(ns.lookup("cam0").unwrap_err(), StmError::NameAbsent);
    }

    #[test]
    fn duplicate_name_rejected() {
        let ns = NameServer::new();
        ns.register("x", res(1), "").unwrap();
        assert_eq!(
            ns.register("x", res(2), "").unwrap_err(),
            StmError::NameExists
        );
        // Original mapping untouched.
        assert_eq!(ns.lookup("x").unwrap().0, res(1));
    }

    #[test]
    fn unregister_missing_errors() {
        let ns = NameServer::new();
        assert_eq!(ns.unregister("ghost").unwrap_err(), StmError::NameAbsent);
    }

    #[test]
    fn blocking_lookup_waits_for_registration() {
        let ns = Arc::new(NameServer::new());
        let ns2 = Arc::clone(&ns);
        // Through the named registry, not a raw spawn: leaked helpers show
        // up in teardown accounting.
        let reg = Arc::new(dstampede_core::thread::ThreadRegistry::default());
        let h = reg.spawn("test-ns-waiter", move |_t| ns2.lookup_wait("late", None));
        thread::sleep(Duration::from_millis(30));
        ns.register("late", res(5), "m").unwrap();
        assert_eq!(h.join().unwrap().unwrap(), (res(5), "m".into()));
    }

    #[test]
    fn blocking_lookup_times_out() {
        let ns = NameServer::new();
        assert_eq!(
            ns.lookup_wait("never", Some(Duration::from_millis(20)))
                .unwrap_err(),
            StmError::Timeout
        );
    }

    #[test]
    fn list_is_sorted() {
        let ns = NameServer::new();
        ns.register("zeta", res(1), "").unwrap();
        ns.register("alpha", res(2), "").unwrap();
        let names: Vec<String> = ns.list().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(ns.len(), 2);
        assert!(!ns.is_empty());
    }

    #[test]
    fn re_register_after_unregister() {
        let ns = NameServer::new();
        ns.register("n", res(1), "").unwrap();
        ns.unregister("n").unwrap();
        ns.register("n", res(2), "").unwrap();
        assert_eq!(ns.lookup("n").unwrap().0, res(2));
    }
}
