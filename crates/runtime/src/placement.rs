//! Consistent-hash placement of STM resources across address spaces.
//!
//! The paper pins every channel and queue to the address space that
//! created it; a dying node takes its containers with it. This module
//! decides placement by *rendezvous (highest-random-weight) hashing*
//! instead: every `(resource key, member)` pair gets a deterministic
//! pseudo-random score and the resource lives on the highest-scoring live
//! member, with the runner-up acting as its replication follower.
//!
//! Rendezvous hashing gives the two properties the cluster needs without
//! any coordination state:
//!
//! * **minimal disruption** — when a member dies, only the resources it
//!   hosted re-place (every other key keeps its argmax);
//! * **balance** — scores are uniform, so keys spread evenly across
//!   members (within small-sample noise).
//!
//! Scores must agree on every node, so the mix is a fixed splitmix64-style
//! permutation of the key and the member id — no `RandomState`, no seeds.

use dstampede_core::{AsId, ResourceId};

/// The placement policy for new channels and queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Place by rendezvous hashing over live cluster members (the
    /// default): a resource created through an end-device session lands
    /// on the member that wins the hash, wherever the creator attached.
    #[default]
    Hashed,
    /// The paper's behavior: resources live in the address space that
    /// created them. Kept as a knob for tests and single-node layouts.
    CreatorLocal,
}

/// splitmix64 finalizer: a full-avalanche permutation of a 64-bit word.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of `member` for `key`. Higher wins.
#[must_use]
pub fn rendezvous_score(key: u64, member: AsId) -> u64 {
    // Mix the member id in with a second round so adjacent ids decorrelate.
    mix(key ^ mix(0x5265_6e64_657a_0000 | u64::from(member.0)))
}

/// The member that should host `key`: the highest rendezvous score, ties
/// broken toward the smaller id. `None` when `members` is empty.
#[must_use]
pub fn place(key: u64, members: &[AsId]) -> Option<AsId> {
    members
        .iter()
        .copied()
        .max_by_key(|m| (rendezvous_score(key, *m), std::cmp::Reverse(m.0)))
}

/// The primary and follower for `key`: the two highest-scoring members.
/// The follower is `None` when fewer than two members are live.
#[must_use]
pub fn place_pair(key: u64, members: &[AsId]) -> (Option<AsId>, Option<AsId>) {
    let primary = place(key, members);
    let follower = primary.and_then(|p| {
        let rest: Vec<AsId> = members.iter().copied().filter(|m| *m != p).collect();
        place(key, &rest)
    });
    (primary, follower)
}

/// The placement key for a new resource.
///
/// Named resources key on the name alone so every node — and every
/// incarnation of the cluster — places them identically. Anonymous
/// resources key on `(creator, nonce)`, which is stable for the lifetime
/// of the resource but unique per creation.
#[must_use]
pub fn creation_key(name: Option<&str>, creator: AsId, nonce: u64) -> u64 {
    match name {
        Some(name) => {
            // FNV-1a over the name bytes, then one mix round.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            mix(h)
        }
        None => mix((u64::from(creator.0) << 48) ^ nonce),
    }
}

/// The follower-selection key for an existing resource, derived from its
/// identity so every surviving node agrees on who held the replica.
#[must_use]
pub fn resource_key(resource: ResourceId) -> u64 {
    let (kind, owner, index) = match resource {
        ResourceId::Channel(c) => (0u64, c.owner.0, c.index),
        ResourceId::Queue(q) => (1u64, q.owner.0, q.index),
    };
    mix((kind << 62) | (u64::from(owner) << 32) | u64::from(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u16) -> Vec<AsId> {
        (0..n).map(AsId).collect()
    }

    #[test]
    fn empty_membership_places_nowhere() {
        assert_eq!(place(7, &[]), None);
        assert_eq!(place_pair(7, &[]), (None, None));
    }

    #[test]
    fn single_member_hosts_everything() {
        let m = members(1);
        for key in 0..64 {
            assert_eq!(place(key, &m), Some(AsId(0)));
            assert_eq!(place_pair(key, &m), (Some(AsId(0)), None));
        }
    }

    #[test]
    fn pair_is_two_distinct_members() {
        let m = members(4);
        for key in 0..256 {
            let (p, f) = place_pair(key, &m);
            let (p, f) = (p.unwrap(), f.unwrap());
            assert_ne!(p, f, "key {key}");
            assert!(m.contains(&p) && m.contains(&f));
        }
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let m = members(5);
        let mut shuffled = m.clone();
        shuffled.reverse();
        for key in 0..512 {
            assert_eq!(place(key, &m), place(key, &shuffled));
        }
    }

    #[test]
    fn departures_only_move_the_departed_members_keys() {
        let before = members(5);
        let after: Vec<AsId> = before.iter().copied().filter(|m| m.0 != 3).collect();
        for key in 0..2048 {
            let was = place(key, &before).unwrap();
            let now = place(key, &after).unwrap();
            if was.0 == 3 {
                assert_ne!(now.0, 3);
            } else {
                assert_eq!(was, now, "key {key} moved without its host dying");
            }
        }
    }

    #[test]
    fn named_keys_ignore_creator() {
        assert_eq!(
            creation_key(Some("tracker"), AsId(0), 1),
            creation_key(Some("tracker"), AsId(7), 99)
        );
        assert_ne!(
            creation_key(Some("tracker"), AsId(0), 1),
            creation_key(Some("tracker2"), AsId(0), 1)
        );
    }

    #[test]
    fn anonymous_keys_differ_per_nonce() {
        assert_ne!(
            creation_key(None, AsId(1), 1),
            creation_key(None, AsId(1), 2)
        );
    }

    #[test]
    fn balance_is_within_2x_of_ideal() {
        let m = members(4);
        let keys = 4000u64;
        let mut counts = vec![0usize; m.len()];
        for key in 0..keys {
            counts[place(key, &m).unwrap().0 as usize] += 1;
        }
        let ideal = keys as usize / m.len();
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c < ideal * 2 && *c > ideal / 2,
                "member {i} hosts {c} of {keys} (ideal {ideal})"
            );
        }
    }
}
