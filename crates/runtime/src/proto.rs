//! Inter-address-space protocol over CLF.
//!
//! Address spaces exchange the same [`Request`](dstampede_wire::Request)/
//! [`Reply`](dstampede_wire::Reply) vocabulary the
//! end-device RPC uses (marshalled with XDR — the server library "is in C",
//! paper §3.2.3), wrapped in a one-byte envelope distinguishing requests
//! from replies. Correlation rides on the frame's `seq`; `seq == 0` marks a
//! fire-and-forget request that expects no reply (used by connection
//! teardown on drop paths).

use bytes::Bytes;

use dstampede_core::{StmError, StmResult};
use dstampede_wire::{Codec, EncodedFrame, ReplyFrame, RequestFrame, XdrCodec};

/// `seq` value marking a request that expects no reply.
pub const NO_REPLY: u64 = 0;

const KIND_REQUEST: u8 = 0;
const KIND_REPLY: u8 = 1;

/// A decoded inter-AS message.
#[derive(Debug, Clone, PartialEq)]
pub enum AsMessage {
    /// An operation to execute here (the local AS owns the target).
    Request(RequestFrame),
    /// The answer to an operation we issued.
    Reply(ReplyFrame),
}

/// Encodes a request envelope as scatter-gather segments (the one-byte
/// kind prefix plus the codec's [`EncodedFrame`]; item payloads stay
/// borrowed).
///
/// # Errors
///
/// [`StmError::Protocol`] if marshalling fails (should not happen for
/// well-formed frames).
pub fn encode_request(frame: &RequestFrame) -> StmResult<EncodedFrame> {
    let mut body = XdrCodec::new()
        .encode_request(frame)
        .map_err(|e| StmError::Protocol(e.to_string()))?;
    body.prepend(Bytes::from_static(&[KIND_REQUEST]));
    Ok(body)
}

/// Encodes a reply envelope as scatter-gather segments.
///
/// # Errors
///
/// [`StmError::Protocol`] if marshalling fails.
pub fn encode_reply(frame: &ReplyFrame) -> StmResult<EncodedFrame> {
    let mut body = XdrCodec::new()
        .encode_reply(frame)
        .map_err(|e| StmError::Protocol(e.to_string()))?;
    body.prepend(Bytes::from_static(&[KIND_REPLY]));
    Ok(body)
}

/// Decodes an inter-AS envelope; item payloads in the decoded frame are
/// slice views into `msg`.
///
/// # Errors
///
/// [`StmError::Protocol`] on malformed envelopes.
pub fn decode(msg: &Bytes) -> StmResult<AsMessage> {
    let kind = *msg
        .first()
        .ok_or_else(|| StmError::Protocol("empty inter-as message".into()))?;
    let body = msg.slice(1..);
    let codec = XdrCodec::new();
    match kind {
        KIND_REQUEST => Ok(AsMessage::Request(
            codec
                .decode_request(&body)
                .map_err(|e| StmError::Protocol(e.to_string()))?,
        )),
        KIND_REPLY => Ok(AsMessage::Reply(
            codec
                .decode_reply(&body)
                .map_err(|e| StmError::Protocol(e.to_string()))?,
        )),
        other => Err(StmError::Protocol(format!(
            "unknown inter-as envelope kind {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_wire::{Reply, Request};

    #[test]
    fn request_envelope_round_trips() {
        let frame = RequestFrame::new(7, Request::Ping { nonce: 3 });
        let bytes = encode_request(&frame).unwrap().to_bytes();
        assert_eq!(decode(&bytes).unwrap(), AsMessage::Request(frame));
    }

    #[test]
    fn reply_envelope_round_trips() {
        let frame = ReplyFrame::new(7, vec![], Reply::Pong { nonce: 3 });
        let bytes = encode_reply(&frame).unwrap().to_bytes();
        assert_eq!(decode(&bytes).unwrap(), AsMessage::Reply(frame));
    }

    #[test]
    fn malformed_envelopes_rejected() {
        assert!(matches!(decode(&Bytes::new()), Err(StmError::Protocol(_))));
        assert!(matches!(
            decode(&Bytes::from_static(&[9, 1, 2])),
            Err(StmError::Protocol(_))
        ));
        assert!(matches!(
            decode(&Bytes::from_static(&[KIND_REQUEST])),
            Err(StmError::Protocol(_))
        ));
    }
}
