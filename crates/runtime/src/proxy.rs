//! Location-transparent channel and queue references.
//!
//! "Channels and queues are system-wide unique names ... regardless of the
//! physical location of the threads, channels, and queues" (paper §3.1).
//! A [`ChannelRef`]/[`QueueRef`] presents the same connection API whether
//! the container lives in this address space (direct shared-memory access)
//! or a remote one (RPC to the owner over CLF). Operations are always
//! routed to the *owner*, which keeps all connection state — including the
//! garbage-collection bookkeeping — local to the container.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use dstampede_core::{
    ChanId, Channel, GetSpec, Interest, Item, QTicket, Queue, QueueId, StmError, StmResult,
    StreamItem, TagFilter, Timestamp, VirtualTime,
};
use dstampede_obs::trace;
use dstampede_wire::{BatchPutItem, Reply, Request, WaitSpec};

use crate::addrspace::AddressSpace;

/// Converts a [`WaitSpec`] into the matching blocking discipline.
pub(crate) fn wait_to_timeout(wait: WaitSpec) -> Option<Option<Duration>> {
    // None => non-blocking; Some(None) => forever; Some(Some(d)) => timeout.
    match wait {
        WaitSpec::NonBlocking => None,
        WaitSpec::Forever => Some(None),
        WaitSpec::TimeoutMs(ms) => Some(Some(Duration::from_millis(u64::from(ms)))),
    }
}

/// A reference to a channel anywhere in the computation.
pub struct ChannelRef {
    id: ChanId,
    inner: ChanRefInner,
}

enum ChanRefInner {
    Local(Arc<Channel>),
    Remote(Arc<AddressSpace>),
}

impl ChannelRef {
    pub(crate) fn local(chan: Arc<Channel>) -> Self {
        ChannelRef {
            id: chan.id(),
            inner: ChanRefInner::Local(chan),
        }
    }

    pub(crate) fn remote(id: ChanId, space: Arc<AddressSpace>) -> Self {
        ChannelRef {
            id,
            inner: ChanRefInner::Remote(space),
        }
    }

    /// The channel's system-wide id.
    #[must_use]
    pub fn id(&self) -> ChanId {
        self.id
    }

    /// Whether this reference resolves within the current address space.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self.inner, ChanRefInner::Local(_))
    }

    /// Opens an input connection.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] if the owner no longer has the channel;
    /// [`StmError::Disconnected`] if the owner is unreachable.
    pub fn connect_input(&self, interest: Interest) -> StmResult<ChanInput> {
        self.connect_input_filtered(interest, TagFilter::Any)
    }

    /// Opens an input connection attending only to item tags that pass
    /// `filter` (the selective-attention filtering extension).
    ///
    /// # Errors
    ///
    /// As [`ChannelRef::connect_input`].
    pub fn connect_input_filtered(
        &self,
        interest: Interest,
        filter: TagFilter,
    ) -> StmResult<ChanInput> {
        match &self.inner {
            ChanRefInner::Local(chan) => Ok(ChanInput {
                id: self.id,
                inner: ConnInner::Local(chan.connect_input_filtered(interest, filter)),
            }),
            ChanRefInner::Remote(space) => {
                let reply = match space.call(
                    self.id.owner,
                    Request::ConnectChannelIn {
                        chan: self.id,
                        interest,
                        filter: filter.clone(),
                    },
                ) {
                    Ok(reply) => reply,
                    Err(StmError::Disconnected) => {
                        // Owner dead: re-resolve through the failover
                        // pointer and connect to the promoted copy.
                        let chan = promoted_channel(space, self.id)?;
                        return space
                            .open_channel(chan)?
                            .connect_input_filtered(interest, filter);
                    }
                    Err(e) => return Err(e),
                };
                match reply {
                    Reply::Connected { conn } => Ok(ChanInput {
                        id: self.id,
                        inner: ConnInner::Remote(RemoteConn::new(
                            Arc::clone(space),
                            self.id.owner,
                            conn,
                        )),
                    }),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Opens an output connection.
    ///
    /// # Errors
    ///
    /// As [`ChannelRef::connect_input`].
    pub fn connect_output(&self) -> StmResult<ChanOutput> {
        match &self.inner {
            ChanRefInner::Local(chan) => Ok(ChanOutput {
                id: self.id,
                inner: ConnInner::Local(chan.connect_output()),
            }),
            ChanRefInner::Remote(space) => {
                let reply =
                    match space.call(self.id.owner, Request::ConnectChannelOut { chan: self.id }) {
                        Ok(reply) => reply,
                        Err(StmError::Disconnected) => {
                            let chan = promoted_channel(space, self.id)?;
                            return space.open_channel(chan)?.connect_output();
                        }
                        Err(e) => return Err(e),
                    };
                match reply {
                    Reply::Connected { conn } => Ok(ChanOutput {
                        id: self.id,
                        inner: ConnInner::Remote(RemoteConn::new(
                            Arc::clone(space),
                            self.id.owner,
                            conn,
                        )),
                    }),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }
}

impl fmt::Debug for ChannelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelRef")
            .field("id", &self.id)
            .field("local", &self.is_local())
            .finish()
    }
}

fn unexpected(reply: &Reply) -> StmError {
    StmError::Protocol(format!("unexpected reply {reply:?}"))
}

/// Follows the failover pointer for a channel whose owner is dead.
/// [`StmError::Disconnected`] when no replica was promoted — the items
/// genuinely died with the primary.
fn promoted_channel(space: &Arc<AddressSpace>, id: ChanId) -> StmResult<ChanId> {
    match space.resolve_failover(dstampede_core::ResourceId::Channel(id)) {
        Some(dstampede_core::ResourceId::Channel(new)) => Ok(new),
        _ => Err(StmError::Disconnected),
    }
}

/// Queue counterpart of [`promoted_channel`].
fn promoted_queue(space: &Arc<AddressSpace>, id: QueueId) -> StmResult<QueueId> {
    match space.resolve_failover(dstampede_core::ResourceId::Queue(id)) {
        Some(dstampede_core::ResourceId::Queue(new)) => Ok(new),
        _ => Err(StmError::Disconnected),
    }
}

/// Owner-side handle for a connection opened remotely; disconnects (fire
/// and forget) on drop.
struct RemoteConn {
    space: Arc<AddressSpace>,
    owner: dstampede_core::AsId,
    handle: u64,
}

impl RemoteConn {
    fn new(space: Arc<AddressSpace>, owner: dstampede_core::AsId, handle: u64) -> Self {
        RemoteConn {
            space,
            owner,
            handle,
        }
    }

    fn call(&self, req: Request) -> StmResult<Reply> {
        let started = std::time::Instant::now();
        let result = self.space.call(self.owner, req);
        self.space
            .metrics()
            .histogram("rpc", "remote_op_us")
            .record_duration(started.elapsed());
        result
    }
}

impl RemoteConn {
    /// Whether the owner advertises the batched put/get frames. Old peers
    /// get the batch split into singleton frames instead.
    fn supports_batch(&self) -> bool {
        self.space.peer_supports_batch(self.owner)
    }

    /// Encodes batch-put entries, stamping each with its item's context
    /// (falling back to the ambient one, then a fresh trace) so every item
    /// in the frame keeps an independent causal identity.
    fn batch_items(&self, entries: Vec<(Timestamp, Item)>) -> Vec<BatchPutItem> {
        entries
            .into_iter()
            .map(|(ts, item)| BatchPutItem {
                ts,
                tag: item.tag(),
                payload: item.payload_bytes(),
                trace: item
                    .trace_context()
                    .or_else(trace::current)
                    .or_else(|| self.space.metrics().tracer().begin_trace(ts.value())),
            })
            .collect()
    }
}

impl Drop for RemoteConn {
    fn drop(&mut self) {
        self.space
            .cast(self.owner, Request::Disconnect { conn: self.handle });
    }
}

/// Maps a batch-results code vector back to per-item outcomes.
fn codes_to_results(codes: Vec<u32>, expected: usize) -> StmResult<Vec<StmResult<()>>> {
    if codes.len() != expected {
        return Err(StmError::Protocol(format!(
            "batch reply has {} codes for {expected} items",
            codes.len()
        )));
    }
    Ok(codes
        .into_iter()
        .map(|c| {
            if c == 0 {
                Ok(())
            } else {
                Err(StmError::from_code(c, "batch put"))
            }
        })
        .collect())
}

enum ConnInner<L> {
    Local(L),
    Remote(RemoteConn),
}

/// An input connection to a channel anywhere in the computation.
pub struct ChanInput {
    id: ChanId,
    inner: ConnInner<dstampede_core::InputConn>,
}

impl ChanInput {
    /// The channel's id.
    #[must_use]
    pub fn channel_id(&self) -> ChanId {
        self.id
    }

    /// Whether the container lives in this address space.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self.inner, ConnInner::Local(_))
    }

    /// Parks a reactor task waker on the local channel's item-arrival set,
    /// or reports `false` when the channel lives on a remote address space
    /// (no local wakeup source — the caller must offload).
    pub fn register_local_waker(&self, waker: &std::task::Waker) -> bool {
        match &self.inner {
            ConnInner::Local(conn) => {
                conn.register_waker(waker);
                true
            }
            ConnInner::Remote(_) => false,
        }
    }

    /// Gets an item under the given blocking discipline.
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::InputConn::get`] and friends, plus
    /// [`StmError::Disconnected`] when the owner is unreachable.
    pub fn get(&self, spec: GetSpec, wait: WaitSpec) -> StmResult<(Timestamp, Item)> {
        match &self.inner {
            ConnInner::Local(conn) => match wait_to_timeout(wait) {
                None => conn.try_get(spec),
                Some(None) => conn.get(spec),
                Some(Some(d)) => conn.get_timeout(spec, d),
            },
            ConnInner::Remote(rc) => {
                // Scope the ambient cell: the reply frame's context (the
                // gotten item's trace, restored by the RPC layer) is read
                // back and re-attached to the reconstructed item.
                let guard = trace::scope(trace::current());
                let reply = rc.call(Request::ChannelGet {
                    conn: rc.handle,
                    spec,
                    wait,
                })?;
                let ctx = trace::current();
                drop(guard);
                match reply {
                    Reply::Item { ts, tag, payload } => {
                        Ok((ts, Item::new(payload).with_tag(tag).with_trace(ctx)))
                    }
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Blocking get.
    ///
    /// # Errors
    ///
    /// As [`ChanInput::get`].
    pub fn get_blocking(&self, spec: GetSpec) -> StmResult<(Timestamp, Item)> {
        self.get(spec, WaitSpec::Forever)
    }

    /// Typed get via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`ChanInput::get`], plus decoding errors from `T`.
    pub fn get_typed<T: StreamItem>(
        &self,
        spec: GetSpec,
        wait: WaitSpec,
    ) -> StmResult<(Timestamp, T)> {
        let (ts, item) = self.get(spec, wait)?;
        Ok((ts, item.decode::<T>()?))
    }

    /// Resolves several get specs in one round trip (one RPC frame for a
    /// remote channel). Each spec resolves independently and
    /// non-blocking; the outer error is transport-level only.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] when the owner is unreachable; per-spec
    /// failures come back in the inner results.
    pub fn get_many(&self, specs: &[GetSpec]) -> StmResult<Vec<StmResult<(Timestamp, Item)>>> {
        match &self.inner {
            ConnInner::Local(conn) => Ok(conn.get_many(specs)),
            ConnInner::Remote(rc) => {
                if !rc.supports_batch() {
                    // Old peer: split into singleton gets.
                    return Ok(specs
                        .iter()
                        .map(|&spec| self.get(spec, WaitSpec::NonBlocking))
                        .collect());
                }
                let reply = rc.call(Request::GetBatch {
                    conn: rc.handle,
                    specs: specs.to_vec(),
                    max: specs.len() as u32,
                })?;
                match reply {
                    Reply::BatchItems { items } => {
                        if items.len() != specs.len() {
                            return Err(StmError::Protocol(format!(
                                "batch reply has {} items for {} specs",
                                items.len(),
                                specs.len()
                            )));
                        }
                        Ok(items
                            .into_iter()
                            .map(|got| {
                                if got.code == 0 {
                                    Ok((
                                        got.ts,
                                        Item::new(got.payload)
                                            .with_tag(got.tag)
                                            .with_trace(got.trace),
                                    ))
                                } else {
                                    Err(StmError::from_code(got.code, "batch get"))
                                }
                            })
                            .collect())
                    }
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Declares items through `upto` consumed.
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::InputConn::consume_until`].
    pub fn consume_until(&self, upto: Timestamp) -> StmResult<()> {
        match &self.inner {
            ConnInner::Local(conn) => conn.consume_until(upto),
            ConnInner::Remote(rc) => {
                match rc.call(Request::ChannelConsume {
                    conn: rc.handle,
                    upto,
                })? {
                    Reply::Ok => Ok(()),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Disconnects explicitly (recovery path): the connection's virtual
    /// time advances to infinity and its consume claims drop, even while
    /// other threads still hold clones of it. Idempotent; later operations
    /// fail with [`StmError::NoSuchConnection`].
    pub fn disconnect(&self) {
        match &self.inner {
            ConnInner::Local(conn) => conn.disconnect(),
            ConnInner::Remote(rc) => rc
                .space
                .cast(rc.owner, Request::Disconnect { conn: rc.handle }),
        }
    }

    /// Advances the connection's virtual-time promise.
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::InputConn::set_vt`].
    pub fn set_vt(&self, vt: VirtualTime) -> StmResult<()> {
        match &self.inner {
            ConnInner::Local(conn) => conn.set_vt(vt),
            ConnInner::Remote(rc) => {
                match rc.call(Request::ChannelSetVt {
                    conn: rc.handle,
                    vt: vt.floor(),
                })? {
                    Reply::Ok => Ok(()),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }
}

impl fmt::Debug for ChanInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChanInput").field("id", &self.id).finish()
    }
}

/// An output connection to a channel anywhere in the computation.
pub struct ChanOutput {
    id: ChanId,
    inner: ConnInner<dstampede_core::OutputConn>,
}

impl ChanOutput {
    /// The channel's id.
    #[must_use]
    pub fn channel_id(&self) -> ChanId {
        self.id
    }

    /// Whether the container lives in this address space.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self.inner, ConnInner::Local(_))
    }

    /// Parks a reactor task waker on the local channel's space-available
    /// set; `false` for remote connections.
    pub fn register_local_waker(&self, waker: &std::task::Waker) -> bool {
        match &self.inner {
            ConnInner::Local(conn) => {
                conn.register_waker(waker);
                true
            }
            ConnInner::Remote(_) => false,
        }
    }

    /// Whether a full local channel actually blocks puts
    /// ([`dstampede_core::OverflowPolicy::Block`]); `None` for remote
    /// connections. Reactor shims must not park on a container whose
    /// full-condition is terminal (`Reject`/`DropOldest` report or evict
    /// instead of blocking).
    #[must_use]
    pub fn local_blocks_when_full(&self) -> Option<bool> {
        match &self.inner {
            ConnInner::Local(conn) => Some(matches!(
                conn.channel().attrs().overflow(),
                dstampede_core::OverflowPolicy::Block
            )),
            ConnInner::Remote(_) => None,
        }
    }

    /// Puts an item under the given blocking discipline.
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::OutputConn::put`] and friends, plus
    /// [`StmError::Disconnected`] when the owner is unreachable.
    pub fn put(&self, ts: Timestamp, item: Item, wait: WaitSpec) -> StmResult<()> {
        match &self.inner {
            ConnInner::Local(conn) => match wait_to_timeout(wait) {
                None => conn.try_put(ts, item),
                Some(None) => conn.put(ts, item),
                Some(Some(d)) => conn.put_timeout(ts, item, d),
            },
            ConnInner::Remote(rc) => {
                // Begin (or continue) the trace on the putting side so the
                // wire hop's Rpc span joins it; the context crosses to the
                // owner on the request frame and rides into the item there.
                let ctx = item
                    .trace_context()
                    .or_else(trace::current)
                    .or_else(|| rc.space.metrics().tracer().begin_trace(ts.value()));
                let _guard = trace::scope(ctx);
                let reply = rc.call(Request::ChannelPut {
                    conn: rc.handle,
                    ts,
                    tag: item.tag(),
                    payload: item.payload_bytes(),
                    wait,
                })?;
                match reply {
                    Reply::Ok => Ok(()),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Blocking put.
    ///
    /// # Errors
    ///
    /// As [`ChanOutput::put`].
    pub fn put_blocking(&self, ts: Timestamp, item: Item) -> StmResult<()> {
        self.put(ts, item, WaitSpec::Forever)
    }

    /// Puts several items in one round trip (one RPC frame for a remote
    /// channel). Items apply independently — there is no transactional
    /// atomicity across the batch; per-item outcomes come back in order.
    ///
    /// # Errors
    ///
    /// [`StmError::Disconnected`] when the owner is unreachable; per-item
    /// failures come back in the inner results.
    pub fn put_many(
        &self,
        entries: Vec<(Timestamp, Item)>,
        wait: WaitSpec,
    ) -> StmResult<Vec<StmResult<()>>> {
        match &self.inner {
            ConnInner::Local(conn) => Ok(match wait_to_timeout(wait) {
                None => conn.try_put_many(entries),
                Some(None) => conn.put_many(entries),
                Some(Some(d)) => entries
                    .into_iter()
                    .map(|(ts, item)| conn.put_timeout(ts, item, d))
                    .collect(),
            }),
            ConnInner::Remote(rc) => {
                if !rc.supports_batch() {
                    // Old peer: split into singleton puts.
                    return Ok(entries
                        .into_iter()
                        .map(|(ts, item)| self.put(ts, item, wait))
                        .collect());
                }
                let n = entries.len();
                let items = rc.batch_items(entries);
                match rc.call(Request::PutBatch {
                    conn: rc.handle,
                    items,
                    wait,
                })? {
                    Reply::BatchResults { codes } => codes_to_results(codes, n),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Disconnects explicitly (recovery path). Idempotent.
    pub fn disconnect(&self) {
        match &self.inner {
            ConnInner::Local(conn) => conn.disconnect(),
            ConnInner::Remote(rc) => rc
                .space
                .cast(rc.owner, Request::Disconnect { conn: rc.handle }),
        }
    }

    /// Typed put via [`StreamItem`].
    ///
    /// # Errors
    ///
    /// As [`ChanOutput::put`].
    pub fn put_typed<T: StreamItem>(
        &self,
        ts: Timestamp,
        value: &T,
        wait: WaitSpec,
    ) -> StmResult<()> {
        self.put(ts, value.to_item(), wait)
    }
}

impl fmt::Debug for ChanOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChanOutput").field("id", &self.id).finish()
    }
}

/// A reference to a queue anywhere in the computation.
pub struct QueueRef {
    id: QueueId,
    inner: QueueRefInner,
}

enum QueueRefInner {
    Local(Arc<Queue>),
    Remote(Arc<AddressSpace>),
}

impl QueueRef {
    pub(crate) fn local(queue: Arc<Queue>) -> Self {
        QueueRef {
            id: queue.id(),
            inner: QueueRefInner::Local(queue),
        }
    }

    pub(crate) fn remote(id: QueueId, space: Arc<AddressSpace>) -> Self {
        QueueRef {
            id,
            inner: QueueRefInner::Remote(space),
        }
    }

    /// The queue's system-wide id.
    #[must_use]
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Whether this reference resolves within the current address space.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self.inner, QueueRefInner::Local(_))
    }

    /// Opens an input (getter) connection.
    ///
    /// # Errors
    ///
    /// As [`ChannelRef::connect_input`].
    pub fn connect_input(&self) -> StmResult<QueueInput> {
        match &self.inner {
            QueueRefInner::Local(q) => Ok(QueueInput {
                id: self.id,
                inner: ConnInner::Local(q.connect_input()),
            }),
            QueueRefInner::Remote(space) => {
                let reply =
                    match space.call(self.id.owner, Request::ConnectQueueIn { queue: self.id }) {
                        Ok(reply) => reply,
                        Err(StmError::Disconnected) => {
                            let queue = promoted_queue(space, self.id)?;
                            return space.open_queue(queue)?.connect_input();
                        }
                        Err(e) => return Err(e),
                    };
                match reply {
                    Reply::Connected { conn } => Ok(QueueInput {
                        id: self.id,
                        inner: ConnInner::Remote(RemoteConn::new(
                            Arc::clone(space),
                            self.id.owner,
                            conn,
                        )),
                    }),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Opens an output (putter) connection.
    ///
    /// # Errors
    ///
    /// As [`ChannelRef::connect_input`].
    pub fn connect_output(&self) -> StmResult<QueueOutput> {
        match &self.inner {
            QueueRefInner::Local(q) => Ok(QueueOutput {
                id: self.id,
                inner: ConnInner::Local(q.connect_output()),
            }),
            QueueRefInner::Remote(space) => {
                let reply =
                    match space.call(self.id.owner, Request::ConnectQueueOut { queue: self.id }) {
                        Ok(reply) => reply,
                        Err(StmError::Disconnected) => {
                            let queue = promoted_queue(space, self.id)?;
                            return space.open_queue(queue)?.connect_output();
                        }
                        Err(e) => return Err(e),
                    };
                match reply {
                    Reply::Connected { conn } => Ok(QueueOutput {
                        id: self.id,
                        inner: ConnInner::Remote(RemoteConn::new(
                            Arc::clone(space),
                            self.id.owner,
                            conn,
                        )),
                    }),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }
}

impl fmt::Debug for QueueRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueRef")
            .field("id", &self.id)
            .field("local", &self.is_local())
            .finish()
    }
}

/// An input connection to a queue anywhere in the computation.
pub struct QueueInput {
    id: QueueId,
    inner: ConnInner<dstampede_core::QueueInputConn>,
}

impl QueueInput {
    /// The queue's id.
    #[must_use]
    pub fn queue_id(&self) -> QueueId {
        self.id
    }

    /// Whether the container lives in this address space.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self.inner, ConnInner::Local(_))
    }

    /// Parks a reactor task waker on the local queue's item-arrival set;
    /// `false` for remote connections.
    pub fn register_local_waker(&self, waker: &std::task::Waker) -> bool {
        match &self.inner {
            ConnInner::Local(conn) => {
                conn.register_waker(waker);
                true
            }
            ConnInner::Remote(_) => false,
        }
    }

    /// Gets the next item under the given blocking discipline. The returned
    /// ticket settles with [`QueueInput::consume`] or
    /// [`QueueInput::requeue`].
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::QueueInputConn::get`] and friends.
    pub fn get(&self, wait: WaitSpec) -> StmResult<(Timestamp, Item, u64)> {
        match &self.inner {
            ConnInner::Local(conn) => {
                let (ts, item, ticket) = match wait_to_timeout(wait) {
                    None => conn.try_get(),
                    Some(None) => conn.get(),
                    Some(Some(d)) => conn.get_timeout(d),
                }?;
                Ok((ts, item, ticket.0))
            }
            ConnInner::Remote(rc) => {
                let guard = trace::scope(trace::current());
                let reply = rc.call(Request::QueueGet {
                    conn: rc.handle,
                    wait,
                })?;
                let ctx = trace::current();
                drop(guard);
                match reply {
                    Reply::QueueItem {
                        ts,
                        tag,
                        payload,
                        ticket,
                    } => Ok((ts, Item::new(payload).with_tag(tag).with_trace(ctx), ticket)),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Dequeues up to `max` items in one round trip (one RPC frame for a
    /// remote queue), non-blocking. An empty queue yields an empty vector,
    /// not an error; every returned ticket settles individually.
    ///
    /// # Errors
    ///
    /// As [`QueueInput::get`], transport-level failures only.
    pub fn dequeue_many(&self, max: usize) -> StmResult<Vec<(Timestamp, Item, u64)>> {
        match &self.inner {
            ConnInner::Local(conn) => match conn.try_dequeue_many(max) {
                Ok(batch) => Ok(batch
                    .into_iter()
                    .map(|(ts, item, ticket)| (ts, item, ticket.0))
                    .collect()),
                Err(StmError::Absent) => Ok(Vec::new()),
                Err(e) => Err(e),
            },
            ConnInner::Remote(rc) => {
                if !rc.supports_batch() {
                    // Old peer: drain with singleton gets. Items already
                    // dequeued are returned even if a later get fails —
                    // dropping them would strand their tickets.
                    let mut out = Vec::new();
                    while out.len() < max {
                        match self.get(WaitSpec::NonBlocking) {
                            Ok(got) => out.push(got),
                            Err(StmError::Absent) => break,
                            Err(e) if out.is_empty() => return Err(e),
                            Err(_) => break,
                        }
                    }
                    return Ok(out);
                }
                let reply = rc.call(Request::GetBatch {
                    conn: rc.handle,
                    specs: Vec::new(),
                    max: u32::try_from(max).unwrap_or(u32::MAX),
                })?;
                match reply {
                    Reply::BatchItems { items } => Ok(items
                        .into_iter()
                        .take_while(|got| got.code == 0)
                        .map(|got| {
                            (
                                got.ts,
                                Item::new(got.payload)
                                    .with_tag(got.tag)
                                    .with_trace(got.trace),
                                got.ticket,
                            )
                        })
                        .collect()),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Settles a ticket as consumed.
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::QueueInputConn::consume`].
    pub fn consume(&self, ticket: u64) -> StmResult<()> {
        match &self.inner {
            ConnInner::Local(conn) => conn.consume(QTicket(ticket)),
            ConnInner::Remote(rc) => {
                match rc.call(Request::QueueConsume {
                    conn: rc.handle,
                    ticket,
                })? {
                    Reply::Ok => Ok(()),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Disconnects explicitly (recovery path): in-flight tickets return
    /// to the head of the queue for surviving getters, and blocked `get`s
    /// on this connection wake with [`StmError::NoSuchConnection`].
    /// Idempotent.
    pub fn disconnect(&self) {
        match &self.inner {
            ConnInner::Local(conn) => conn.disconnect(),
            ConnInner::Remote(rc) => rc
                .space
                .cast(rc.owner, Request::Disconnect { conn: rc.handle }),
        }
    }

    /// Puts an unfinished item back at the head of the queue.
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::QueueInputConn::requeue`].
    pub fn requeue(&self, ticket: u64) -> StmResult<()> {
        match &self.inner {
            ConnInner::Local(conn) => conn.requeue(QTicket(ticket)),
            ConnInner::Remote(rc) => {
                match rc.call(Request::QueueRequeue {
                    conn: rc.handle,
                    ticket,
                })? {
                    Reply::Ok => Ok(()),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }
}

impl fmt::Debug for QueueInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueInput").field("id", &self.id).finish()
    }
}

/// An output connection to a queue anywhere in the computation.
pub struct QueueOutput {
    id: QueueId,
    inner: ConnInner<dstampede_core::QueueOutputConn>,
}

impl QueueOutput {
    /// The queue's id.
    #[must_use]
    pub fn queue_id(&self) -> QueueId {
        self.id
    }

    /// Whether the container lives in this address space.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self.inner, ConnInner::Local(_))
    }

    /// Parks a reactor task waker on the local queue's space-available
    /// set; `false` for remote connections.
    pub fn register_local_waker(&self, waker: &std::task::Waker) -> bool {
        match &self.inner {
            ConnInner::Local(conn) => {
                conn.register_waker(waker);
                true
            }
            ConnInner::Remote(_) => false,
        }
    }

    /// Whether a full local queue actually blocks puts; `None` for remote
    /// connections. See [`ChanOutput::local_blocks_when_full`].
    #[must_use]
    pub fn local_blocks_when_full(&self) -> Option<bool> {
        match &self.inner {
            ConnInner::Local(conn) => Some(matches!(
                conn.queue().attrs().overflow(),
                dstampede_core::OverflowPolicy::Block
            )),
            ConnInner::Remote(_) => None,
        }
    }

    /// Puts an item under the given blocking discipline.
    ///
    /// # Errors
    ///
    /// As [`dstampede_core::QueueOutputConn::put`] and friends.
    pub fn put(&self, ts: Timestamp, item: Item, wait: WaitSpec) -> StmResult<()> {
        match &self.inner {
            ConnInner::Local(conn) => match wait_to_timeout(wait) {
                None => conn.try_put(ts, item),
                Some(None) => conn.put(ts, item),
                Some(Some(d)) => conn.put_timeout(ts, item, d),
            },
            ConnInner::Remote(rc) => {
                let ctx = item
                    .trace_context()
                    .or_else(trace::current)
                    .or_else(|| rc.space.metrics().tracer().begin_trace(ts.value()));
                let _guard = trace::scope(ctx);
                match rc.call(Request::QueuePut {
                    conn: rc.handle,
                    ts,
                    tag: item.tag(),
                    payload: item.payload_bytes(),
                    wait,
                })? {
                    Reply::Ok => Ok(()),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Puts several items in one round trip (one RPC frame for a remote
    /// queue). Items enqueue contiguously in order; per-item outcomes come
    /// back in order, with no transactional atomicity across the batch.
    ///
    /// # Errors
    ///
    /// As [`ChanOutput::put_many`].
    pub fn put_many(
        &self,
        entries: Vec<(Timestamp, Item)>,
        wait: WaitSpec,
    ) -> StmResult<Vec<StmResult<()>>> {
        match &self.inner {
            ConnInner::Local(conn) => Ok(match wait_to_timeout(wait) {
                None => conn.try_put_many(entries),
                Some(None) => conn.put_many(entries),
                Some(Some(d)) => entries
                    .into_iter()
                    .map(|(ts, item)| conn.put_timeout(ts, item, d))
                    .collect(),
            }),
            ConnInner::Remote(rc) => {
                if !rc.supports_batch() {
                    return Ok(entries
                        .into_iter()
                        .map(|(ts, item)| self.put(ts, item, wait))
                        .collect());
                }
                let n = entries.len();
                let items = rc.batch_items(entries);
                match rc.call(Request::PutBatch {
                    conn: rc.handle,
                    items,
                    wait,
                })? {
                    Reply::BatchResults { codes } => codes_to_results(codes, n),
                    other => Err(unexpected(&other)),
                }
            }
        }
    }

    /// Disconnects explicitly (recovery path). Idempotent.
    pub fn disconnect(&self) {
        match &self.inner {
            ConnInner::Local(conn) => conn.disconnect(),
            ConnInner::Remote(rc) => rc
                .space
                .cast(rc.owner, Request::Disconnect { conn: rc.handle }),
        }
    }
}

impl fmt::Debug for QueueOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueOutput").field("id", &self.id).finish()
    }
}
