//! Event-driven runtime core.
//!
//! The paper's runtime (§3.2.2) dedicates a blocking OS thread to every
//! surrogate connection, listener, and background service, which caps
//! concurrent end-device sessions at thread-count scale. This module
//! replaces that shape on the server hot path with a small,
//! dependency-free executor:
//!
//! - [`poll`] — an epoll-backed readiness selector (hand-rolled FFI, like
//!   `dstampede-clf::udp_sys`) with a portable `poll(2)` fallback;
//! - [`timer`] — a hierarchical timer wheel, one clock for every deadline
//!   the runtime used to park a thread on;
//! - [`task`] — cooperative tasks over `std::task::Wake`, O(cores) worker
//!   threads plus one poller thread;
//! - [`net`] — readiness-driven TCP shims for the listener and surrogates.
//!
//! Blocked STM operations park a task waker in the container's
//! [`dstampede_core::WakerSet`] — registered at the same sites the
//! condvar gates notify — so a blocking `get`/`put`/`dequeue` over a
//! surrogate costs a parked state machine, not a parked thread. The
//! public STM and `EndDevice` APIs stay blocking-compatible: direct
//! callers keep the condvar path, wire clients cannot tell which mode
//! serves them.

pub mod net;
pub mod poll;
pub mod task;
pub mod timer;

pub use net::{AsyncTcpListener, AsyncTcpStream};
pub use task::{ExecMetrics, PeriodicHandle, Reactor, ReactorConfig, Sleep};
pub use timer::{TimerId, TimerWheel};
