//! Readiness-driven TCP wrappers for reactor tasks.
//!
//! Thin shims over nonblocking `std::net` sockets. On the epoll backend
//! every socket is registered once, edge-triggered, when wrapped; a
//! blocked operation then parks without any syscall. Ordering is
//! park-first: the waker is (re-)parked *before* each syscall attempt,
//! so an edge firing concurrently with a `WouldBlock` result always
//! finds the waker — and a successful attempt just unparks it, two
//! uncontended map operations. One syscall per attempt, parked or not.
//! On the `poll(2)` fallback the wrapper arms the poller one-shot per
//! park; those one-shot events are level-style, so re-arming while the
//! descriptor is already ready fires immediately.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::task::{Context, Poll};

use super::poll::{INTEREST_READ, INTEREST_WRITE};
use super::task::Reactor;

/// One readiness-driven attempt of `op`: park-first on the edge backend,
/// try-then-arm-one-shot on the fallback. Shared by the stream and
/// listener wrappers.
fn poll_op<T>(
    reactor: &Reactor,
    edge: bool,
    fd: RawFd,
    token: u64,
    interest: u8,
    cx: &mut Context<'_>,
    mut op: impl FnMut() -> io::Result<T>,
) -> Poll<io::Result<T>> {
    if edge {
        reactor.park_io(token, cx.waker());
        let mut spun = false;
        loop {
            match op() {
                Ok(v) => {
                    reactor.unpark_io(token);
                    return Poll::Ready(Ok(v));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Adaptive spin: when no other task is ready, yield
                    // once and retry before surrendering to the poller.
                    // In RPC lockstep the peer's reply arrives during
                    // the yield, saving the epoll round trip.
                    if !spun && reactor.idle_hint() {
                        spun = true;
                        std::thread::yield_now();
                        continue;
                    }
                    return Poll::Pending;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    reactor.unpark_io(token);
                    return Poll::Ready(Err(e));
                }
            }
        }
    }
    loop {
        match op() {
            Ok(v) => return Poll::Ready(Ok(v)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return match reactor.arm_io(fd, token, interest, cx.waker()) {
                    Ok(()) => Poll::Pending,
                    Err(e) => Poll::Ready(Err(e)),
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Poll::Ready(Err(e)),
        }
    }
}

/// A nonblocking `TcpStream` owned by one reactor task. The socket is
/// behind an `Arc` so a lease slot can hold the same descriptor for
/// reaper/shutdown purposes without a `try_clone` dup — at 10⁴
/// sessions the extra descriptor per session is real budget.
pub struct AsyncTcpStream {
    stream: std::sync::Arc<TcpStream>,
    reactor: Reactor,
    token: u64,
    /// Registered edge-triggered at wrap time; parks are syscall-free.
    edge: bool,
}

impl AsyncTcpStream {
    /// Wraps `stream`, switching it to nonblocking mode.
    pub fn new(stream: TcpStream, reactor: &Reactor) -> io::Result<AsyncTcpStream> {
        AsyncTcpStream::from_shared(std::sync::Arc::new(stream), reactor)
    }

    /// Wraps an already-shared socket, switching it to nonblocking mode.
    pub fn from_shared(
        stream: std::sync::Arc<TcpStream>,
        reactor: &Reactor,
    ) -> io::Result<AsyncTcpStream> {
        stream.set_nonblocking(true)?;
        let token = reactor.alloc_token();
        let edge = reactor.register_io(stream.as_raw_fd(), token)?;
        Ok(AsyncTcpStream {
            stream,
            reactor: reactor.clone(),
            token,
            edge,
        })
    }

    /// The wrapped socket (for `shutdown`, `peer_addr`, `try_clone`...).
    #[must_use]
    pub fn socket(&self) -> &TcpStream {
        &self.stream
    }

    fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads up to `buf.len()` bytes, waiting for readability.
    pub async fn read_some(&self, buf: &mut [u8]) -> io::Result<usize> {
        std::future::poll_fn(|cx| {
            poll_op(
                &self.reactor,
                self.edge,
                self.fd(),
                self.token,
                INTEREST_READ,
                cx,
                || (&*self.stream).read(buf),
            )
        })
        .await
    }

    /// Reads exactly `buf.len()` bytes.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the peer closes mid-buffer.
    pub async fn read_exact(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read_some(&mut buf[filled..]).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-read",
                ));
            }
            filled += n;
        }
        Ok(())
    }

    /// Writes the whole buffer, waiting for writability as needed.
    pub async fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let mut sent = 0;
        while sent < buf.len() {
            let n = std::future::poll_fn(|cx| {
                poll_op(
                    &self.reactor,
                    self.edge,
                    self.fd(),
                    self.token,
                    INTEREST_WRITE,
                    cx,
                    || (&*self.stream).write(&buf[sent..]),
                )
            })
            .await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer closed mid-write",
                ));
            }
            sent += n;
        }
        Ok(())
    }
}

impl Drop for AsyncTcpStream {
    fn drop(&mut self) {
        self.reactor.disarm_io(self.fd(), self.token);
    }
}

impl std::fmt::Debug for AsyncTcpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncTcpStream")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

/// A nonblocking `TcpListener` accepted from a reactor task.
pub struct AsyncTcpListener {
    listener: TcpListener,
    reactor: Reactor,
    token: u64,
    edge: bool,
}

impl std::fmt::Debug for AsyncTcpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncTcpListener")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl AsyncTcpListener {
    /// Wraps `listener`, switching it to nonblocking mode.
    pub fn new(listener: TcpListener, reactor: &Reactor) -> io::Result<AsyncTcpListener> {
        listener.set_nonblocking(true)?;
        let token = reactor.alloc_token();
        let edge = reactor.register_io(listener.as_raw_fd(), token)?;
        Ok(AsyncTcpListener {
            listener,
            reactor: reactor.clone(),
            token,
            edge,
        })
    }

    /// Accepts the next connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| {
            poll_op(
                &self.reactor,
                self.edge,
                self.listener.as_raw_fd(),
                self.token,
                INTEREST_READ,
                cx,
                || self.listener.accept(),
            )
        })
        .await
    }
}

impl Drop for AsyncTcpListener {
    fn drop(&mut self) {
        self.reactor
            .disarm_io(self.listener.as_raw_fd(), self.token);
    }
}
