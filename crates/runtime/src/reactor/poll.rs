//! Readiness polling: epoll on 64-bit Linux, `poll(2)` elsewhere on Unix.
//!
//! `std` exposes neither call and the build deliberately carries no FFI
//! crate, so — exactly like the datagram batching in
//! `dstampede-clf::udp_sys` — the tiny slice of the kernel ABI needed is
//! declared here by hand. The epoll backend arms descriptors
//! `EPOLLONESHOT`, so a readiness event disarms the descriptor until the
//! owning task re-arms it on its next `Pending` poll; the `poll(2)`
//! fallback rebuilds its descriptor array per wait from the same
//! registration table and emulates the one-shot discipline by dropping a
//! registration once reported.
//!
//! A self-wake socketpair (a `UnixStream` pair, no FFI needed) is
//! registered permanently so other threads can interrupt a sleeping
//! `wait` — used when a sooner timer deadline is scheduled or the reactor
//! shuts down.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use parking_lot::Mutex;

/// Token reserved for the internal wake socket.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Readiness interest bit: readable.
pub const INTEREST_READ: u8 = 0b01;
/// Readiness interest bit: writable.
pub const INTEREST_WRITE: u8 = 0b10;

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was armed with.
    pub token: u64,
    /// Readable (or peer-closed / errored, which reads report).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// The OS-facing readiness selector. One per reactor; `arm`/`disarm` are
/// callable from any thread, `wait` from the poller thread.
pub struct Poller {
    sys: sys::Selector,
    wake_rx: Mutex<UnixStream>,
    wake_tx: Mutex<UnixStream>,
}

impl Poller {
    /// Creates the selector and registers the wake socket.
    pub fn new() -> io::Result<Poller> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let sys = sys::Selector::new()?;
        sys.arm_persistent_read(wake_rx.as_raw_fd(), WAKE_TOKEN)?;
        Ok(Poller {
            sys,
            wake_rx: Mutex::new(wake_rx),
            wake_tx: Mutex::new(wake_tx),
        })
    }

    /// Arms `fd` for one readiness report under `token`. Re-arming an
    /// already-armed descriptor replaces its interest.
    pub fn arm(&self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        self.sys.arm(fd, token, interest)
    }

    /// Registers `fd` permanently for edge-triggered read+write events
    /// under `token` and returns `true` — or returns `false` when the
    /// backend cannot (the `poll(2)` fallback has no edge semantics, and
    /// a level-triggered persistent registration would spin the wait
    /// loop whenever data sat unread). Callers getting `false` fall back
    /// to one-shot [`Poller::arm`] per park.
    pub fn arm_edge(&self, fd: RawFd, token: u64) -> io::Result<bool> {
        self.sys.arm_edge(fd, token)
    }

    /// Forgets `fd` entirely (idempotent).
    pub fn disarm(&self, fd: RawFd) {
        self.sys.disarm(fd);
    }

    /// Blocks until readiness or `timeout` (forever when `None`), filling
    /// `events`. Wake-socket traffic is drained internally and reported as
    /// a [`WAKE_TOKEN`] event so the caller can distinguish an interrupt
    /// from descriptor readiness.
    pub fn wait(&self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.sys.wait(events, timeout)?;
        if events.iter().any(|e| e.token == WAKE_TOKEN) {
            let mut buf = [0u8; 64];
            let mut rx = self.wake_rx.lock();
            while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
        }
        Ok(())
    }

    /// Interrupts a concurrent [`Poller::wait`].
    pub fn notify(&self) {
        // A full pipe already guarantees a pending wakeup.
        let _ = self.wake_tx.lock().write(&[1]);
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod sys {
    //! epoll backend.

    use super::{PollEvent, INTEREST_READ, INTEREST_WRITE};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;
    const EPOLLONESHOT: u32 = 1 << 30;

    /// x86-64 `struct epoll_event` is packed (no padding before `data`).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub(super) struct Selector {
        epfd: i32,
    }

    // The epoll fd is used from the poller thread (wait) and arbitrary
    // threads (arm/disarm); the kernel synchronizes epoll_ctl/epoll_wait.
    unsafe impl Send for Selector {}
    unsafe impl Sync for Selector {}

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub(super) fn arm_persistent_read(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, token)
        }

        pub(super) fn arm_edge(&self, fd: RawFd, token: u64) -> io::Result<bool> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                token,
            )?;
            Ok(true)
        }

        pub(super) fn arm(&self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            let mut events = EPOLLONESHOT | EPOLLRDHUP;
            if interest & INTEREST_READ != 0 {
                events |= EPOLLIN;
            }
            if interest & INTEREST_WRITE != 0 {
                events |= EPOLLOUT;
            }
            match self.ctl(EPOLL_CTL_MOD, fd, events, token) {
                Err(e) if e.raw_os_error() == Some(2) => {
                    // ENOENT: first arm for this descriptor.
                    self.ctl(EPOLL_CTL_ADD, fd, events, token)
                }
                other => other,
            }
        }

        pub(super) fn disarm(&self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &events[..n] {
                let bits = ev.events;
                let hangup = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0 || hangup,
                    writable: bits & EPOLLOUT != 0 || hangup,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
mod sys {
    //! Portable `poll(2)` backend: a registration table rebuilt into a
    //! `pollfd` array per wait. One-shot semantics are emulated by
    //! dropping a registration once reported.

    use super::{PollEvent, INTEREST_READ, INTEREST_WRITE};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    #[derive(Clone, Copy)]
    struct Registration {
        token: u64,
        interest: u8,
        persistent: bool,
    }

    pub(super) struct Selector {
        table: Mutex<HashMap<RawFd, Registration>>,
    }

    impl Selector {
        pub(super) fn new() -> io::Result<Selector> {
            Ok(Selector {
                table: Mutex::new(HashMap::new()),
            })
        }

        pub(super) fn arm_persistent_read(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.table.lock().insert(
                fd,
                Registration {
                    token,
                    interest: INTEREST_READ,
                    persistent: true,
                },
            );
            Ok(())
        }

        pub(super) fn arm(&self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.table.lock().insert(
                fd,
                Registration {
                    token,
                    interest,
                    persistent: false,
                },
            );
            Ok(())
        }

        pub(super) fn arm_edge(&self, _fd: RawFd, _token: u64) -> io::Result<bool> {
            // No edge semantics over poll(2); callers re-arm one-shot.
            Ok(false)
        }

        pub(super) fn disarm(&self, fd: RawFd) {
            self.table.lock().remove(&fd);
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<(RawFd, Registration)> =
                self.table.lock().iter().map(|(f, r)| (*f, *r)).collect();
            let mut pollfds: Vec<PollFd> = fds
                .iter()
                .map(|(fd, reg)| {
                    let mut events = 0i16;
                    if reg.interest & INTEREST_READ != 0 {
                        events |= POLLIN;
                    }
                    if reg.interest & INTEREST_WRITE != 0 {
                        events |= POLLOUT;
                    }
                    PollFd {
                        fd: *fd,
                        events,
                        revents: 0,
                    }
                })
                .collect();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = loop {
                let n = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as u64, timeout_ms) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            let mut table = self.table.lock();
            for (pfd, (fd, reg)) in pollfds.iter().zip(fds.drain(..)) {
                if pfd.revents == 0 {
                    continue;
                }
                let hangup = pfd.revents & (POLLERR | POLLHUP) != 0;
                out.push(PollEvent {
                    token: reg.token,
                    readable: pfd.revents & POLLIN != 0 || hangup,
                    writable: pfd.revents & POLLOUT != 0 || hangup,
                });
                if !reg.persistent {
                    table.remove(&fd);
                }
            }
            Ok(())
        }
    }
}
