//! The cooperative executor: tasks, workers, and the poller loop.
//!
//! A [`Reactor`] owns O(cores) worker threads pulling tasks off one
//! MPMC ready queue, plus a single poller thread multiplexing every
//! descriptor and every timer deadline. Tasks are plain
//! `Future<Output = ()>` state machines woken through [`std::task::Wake`];
//! there is no `async` runtime dependency — readiness futures arm the
//! [`super::poll::Poller`], timed futures schedule on the
//! [`super::timer::TimerWheel`], and blocked STM operations park in the
//! containers' [`dstampede_core::WakerSet`]s.

use std::future::Future;
use std::io;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use super::poll::{PollEvent, Poller, WAKE_TOKEN};
use super::timer::{TimerId, TimerWheel};

std::thread_local! {
    /// On the poller thread, `Some`: tasks woken while dispatching events
    /// are collected here and run inline instead of crossing the ready
    /// queue. Everywhere else, `None`: wakes go to the workers. The
    /// inline path saves two scheduler switches per readiness event —
    /// on a busy connection that is most of the RPC latency gap between
    /// a parked task and a dedicated blocked thread.
    static INLINE_RUN: std::cell::RefCell<Option<Vec<Arc<Task>>>> =
        const { std::cell::RefCell::new(None) };
}

/// Executor sizing and clock resolution.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker threads polling tasks. At least 2 regardless of the
    /// setting, so one briefly-blocking task (a remote RPC shim, a
    /// service tick) cannot stall the whole executor.
    pub workers: usize,
    /// Timer-wheel tick resolution.
    pub tick: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ReactorConfig {
            workers: cores.max(2),
            tick: Duration::from_millis(1),
        }
    }
}

/// Executor counters, mirrored into an obs registry as `exec/*` series.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Tasks spawned over the reactor's lifetime.
    pub spawned: AtomicU64,
    /// Tasks alive right now (spawned, not yet completed).
    pub live_tasks: AtomicUsize,
    /// Readiness events dispatched to task wakers.
    pub poll_wakeups: AtomicU64,
    /// Timer-wheel entries fired.
    pub timer_fires: AtomicU64,
    /// Tasks that returned `Pending` (parked on some wakeup source).
    pub parks: AtomicU64,
    /// Task wakes (readiness, timer, or STM waker).
    pub unparks: AtomicU64,
    /// Blocking operations offloaded to a dedicated thread because no
    /// local waker source exists (remote-container waits, cluster pulls).
    pub offloaded: AtomicU64,
}

struct Task {
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send + 'static>>>>,
    /// Guards against double-enqueue: set when the task sits in the ready
    /// queue, cleared just before it is polled.
    queued: AtomicBool,
    reactor: Weak<Inner>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(inner) = self.reactor.upgrade() {
            inner.enqueue(self);
        }
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if let Some(inner) = self.reactor.upgrade() {
            inner.enqueue(Arc::clone(self));
        }
    }
}

struct Inner {
    ready_tx: Sender<Arc<Task>>,
    ready_rx: Receiver<Arc<Task>>,
    poller: Poller,
    wheel: Mutex<TimerWheel>,
    /// Wakers parked on descriptor readiness, keyed by poller token.
    io_wakers: Mutex<std::collections::HashMap<u64, Waker>>,
    next_token: AtomicU64,
    epoch: Instant,
    tick: Duration,
    /// The tick the poller intends to sleep through; a schedule for an
    /// earlier deadline interrupts it.
    sleeping_until: AtomicU64,
    shutdown: AtomicBool,
    pub metrics: ExecMetrics,
}

impl Inner {
    fn enqueue(&self, task: Arc<Task>) {
        if !task.queued.swap(true, Ordering::AcqRel) {
            self.metrics.unparks.fetch_add(1, Ordering::Relaxed);
            let mut task = Some(task);
            INLINE_RUN.with(|q| {
                if let Some(local) = q.borrow_mut().as_mut() {
                    local.push(task.take().expect("task present"));
                }
            });
            if let Some(task) = task {
                let _ = self.ready_tx.send(task);
            }
        }
    }

    /// Runs tasks collected in the poller's inline queue, transitively
    /// (a task's poll can wake further tasks), up to `budget` polls —
    /// the bound on time stolen from epoll/timer duty. Overflow spills
    /// to the worker pool.
    fn drain_inline(self: &Arc<Self>, mut budget: usize) {
        loop {
            let batch: Vec<Arc<Task>> = INLINE_RUN.with(|q| {
                q.borrow_mut()
                    .as_mut()
                    .map(std::mem::take)
                    .unwrap_or_default()
            });
            if batch.is_empty() {
                return;
            }
            for task in batch {
                if budget == 0 || self.shutdown.load(Ordering::Acquire) {
                    let _ = self.ready_tx.send(task);
                } else {
                    budget -= 1;
                    self.run_task(task);
                }
            }
        }
    }

    fn now_tick(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Schedules `waker` on the wheel, interrupting the poller's sleep if
    /// this deadline is sooner than what it planned for.
    fn schedule_timer(&self, deadline: u64, waker: Waker) -> TimerId {
        let id = self.wheel.lock().schedule(deadline, waker);
        if deadline < self.sleeping_until.load(Ordering::Acquire) {
            self.poller.notify();
        }
        id
    }

    fn run_task(self: &Arc<Self>, task: Arc<Task>) {
        task.queued.store(false, Ordering::Release);
        let Some(mut guard) = task.future.try_lock() else {
            // Another worker is mid-poll; a wake arrived during it. Requeue
            // so the latest state gets observed once that poll finishes.
            self.enqueue(task);
            return;
        };
        let Some(future) = guard.as_mut() else {
            return; // completed earlier
        };
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                *guard = None;
                self.metrics.live_tasks.fetch_sub(1, Ordering::Relaxed);
            }
            Poll::Pending => {
                self.metrics.parks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            match self.ready_rx.recv_timeout(Duration::from_millis(100)) {
                Ok(task) => self.run_task(task),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
            if self.shutdown.load(Ordering::Acquire) && self.ready_rx.is_empty() {
                return;
            }
        }
    }

    fn poller_loop(self: Arc<Self>) {
        /// Polls per dispatch round the poller may spend running tasks
        /// inline before spilling the rest to the workers.
        const INLINE_BUDGET: usize = 128;
        INLINE_RUN.with(|q| *q.borrow_mut() = Some(Vec::new()));
        let mut events: Vec<PollEvent> = Vec::with_capacity(256);
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let now = self.now_tick();
            let fired = self.wheel.lock().advance(now);
            if !fired.is_empty() {
                self.metrics
                    .timer_fires
                    .fetch_add(fired.len() as u64, Ordering::Relaxed);
                for (_, waker) in fired {
                    waker.wake();
                }
                self.drain_inline(INLINE_BUDGET);
            }
            // Sleep until the next deadline hint; the wheel re-checks at
            // slot granularity for far deadlines, and `schedule_timer`
            // interrupts the sleep for sooner ones.
            let hint = self.wheel.lock().next_deadline_hint();
            let (until, timeout) = match hint {
                Some(deadline) => {
                    let ticks = deadline.saturating_sub(self.now_tick()).max(1);
                    (deadline, self.tick * ticks as u32)
                }
                None => (u64::MAX, Duration::from_millis(200)),
            };
            self.sleeping_until.store(until, Ordering::Release);
            let wait = self.poller.wait(&mut events, Some(timeout));
            self.sleeping_until.store(0, Ordering::Release);
            if wait.is_err() {
                // Selector failure is unrecoverable for this loop; tasks
                // parked on readiness would hang, so tear down loudly.
                if !self.shutdown.load(Ordering::Acquire) {
                    panic!("reactor poller failed: {:?}", wait);
                }
                return;
            }
            if !events.is_empty() {
                {
                    let mut io = self.io_wakers.lock();
                    for ev in events.drain(..) {
                        if ev.token == WAKE_TOKEN {
                            continue;
                        }
                        if let Some(waker) = io.remove(&ev.token) {
                            self.metrics.poll_wakeups.fetch_add(1, Ordering::Relaxed);
                            waker.wake();
                        }
                    }
                }
                self.drain_inline(INLINE_BUDGET);
            }
        }
    }
}

/// The executor handle. Cheap to clone (it is an `Arc` inside); dropping
/// the last handle does not stop the threads — call [`Reactor::shutdown`].
#[derive(Clone)]
pub struct Reactor {
    inner: Arc<Inner>,
    threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    workers: usize,
}

impl Reactor {
    /// Starts workers and the poller.
    pub fn start(config: ReactorConfig) -> io::Result<Reactor> {
        let workers = config.workers.max(2);
        let (ready_tx, ready_rx) = crossbeam::channel::unbounded();
        let inner = Arc::new(Inner {
            ready_tx,
            ready_rx,
            poller: Poller::new()?,
            wheel: Mutex::new(TimerWheel::new(0)),
            io_wakers: Mutex::new(std::collections::HashMap::new()),
            next_token: AtomicU64::new(1),
            epoch: Instant::now(),
            tick: config.tick,
            sleeping_until: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            metrics: ExecMetrics::default(),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("reactor-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawning a reactor worker failed"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("reactor-poller".to_owned())
                    .spawn(move || inner.poller_loop())
                    .expect("spawning the reactor poller failed"),
            );
        }
        Ok(Reactor {
            inner,
            threads: Arc::new(Mutex::new(threads)),
            workers,
        })
    }

    /// Worker-thread count (excluding the poller).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executor counters.
    #[must_use]
    pub fn metrics(&self) -> &ExecMetrics {
        &self.inner.metrics
    }

    /// Tasks sitting in the ready queue right now.
    #[must_use]
    pub fn ready_depth(&self) -> usize {
        self.inner.ready_rx.len()
    }

    /// The wheel's current tick.
    #[must_use]
    pub fn now_tick(&self) -> u64 {
        self.inner.now_tick()
    }

    /// Ticks equivalent of a duration, rounded up.
    #[must_use]
    pub fn ticks_of(&self, d: Duration) -> u64 {
        let tick = self.inner.tick.as_nanos().max(1);
        d.as_nanos().div_ceil(tick) as u64
    }

    /// Spawns a task.
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            queued: AtomicBool::new(false),
            reactor: Arc::downgrade(&self.inner),
        });
        self.inner.metrics.spawned.fetch_add(1, Ordering::Relaxed);
        self.inner
            .metrics
            .live_tasks
            .fetch_add(1, Ordering::Relaxed);
        self.inner.enqueue(task);
    }

    /// Spawns a periodic task: `f` runs every `period` (absolute cadence,
    /// no drift) until it returns `false`, the handle is cancelled, or the
    /// reactor shuts down. This is what absorbs the dedicated timer
    /// threads — each service tick becomes one wheel entry plus one ready-
    /// queue hop instead of a parked thread.
    pub fn spawn_periodic<F>(&self, period: Duration, mut f: F) -> PeriodicHandle
    where
        F: FnMut() -> bool + Send + 'static,
    {
        let cancelled = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&cancelled);
        let reactor = self.clone();
        let period_ticks = self.ticks_of(period).max(1);
        self.spawn(async move {
            let mut next = reactor.now_tick() + period_ticks;
            loop {
                reactor.sleep_until(next).await;
                if flag.load(Ordering::Acquire) || reactor.is_shut_down() {
                    return;
                }
                if !f() {
                    return;
                }
                let now = reactor.now_tick();
                next += period_ticks;
                if next <= now {
                    // Missed cadence (long tick); realign instead of
                    // firing a burst of catch-up rounds.
                    next = now + period_ticks;
                }
            }
        });
        PeriodicHandle { cancelled }
    }

    /// A future that resolves at wheel tick `deadline`.
    #[must_use]
    pub fn sleep_until(&self, deadline: u64) -> Sleep {
        Sleep {
            inner: Arc::clone(&self.inner),
            deadline,
            id: None,
        }
    }

    /// A future that resolves after `d`.
    #[must_use]
    pub fn sleep(&self, d: Duration) -> Sleep {
        self.sleep_until(self.now_tick() + self.ticks_of(d).max(1))
    }

    /// Allocates a poller token for one descriptor.
    #[must_use]
    pub fn alloc_token(&self) -> u64 {
        self.inner.next_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Parks `waker` for readiness of `fd` under `token`, arming the
    /// poller one-shot. The waker is registered before the descriptor is
    /// armed, so a racing event cannot be dropped.
    pub fn arm_io(
        &self,
        fd: std::os::unix::io::RawFd,
        token: u64,
        interest: u8,
        waker: &Waker,
    ) -> io::Result<()> {
        self.inner.io_wakers.lock().insert(token, waker.clone());
        if let Err(e) = self.inner.poller.arm(fd, token, interest) {
            self.inner.io_wakers.lock().remove(&token);
            return Err(e);
        }
        Ok(())
    }

    /// Forgets a descriptor and its parked waker.
    pub fn disarm_io(&self, fd: std::os::unix::io::RawFd, token: u64) {
        self.inner.poller.disarm(fd);
        self.inner.io_wakers.lock().remove(&token);
    }

    /// Registers `fd` permanently for edge-triggered events under
    /// `token`, when the backend supports it (`true`). A registered
    /// stream parks with the syscall-free [`Reactor::park_io`] instead
    /// of re-arming one-shot on every `Pending` poll.
    pub fn register_io(&self, fd: std::os::unix::io::RawFd, token: u64) -> io::Result<bool> {
        self.inner.poller.arm_edge(fd, token)
    }

    /// Parks `waker` for the next edge event of an already-registered
    /// stream. The caller must retry its syscall *after* parking: an
    /// edge dispatched between the failed attempt and the park carried
    /// no waker and is gone, but the readiness it reported is still
    /// observable.
    pub fn park_io(&self, token: u64, waker: &Waker) {
        self.inner.io_wakers.lock().insert(token, waker.clone());
    }

    /// Clears a parked stream waker (the retry succeeded).
    pub fn unpark_io(&self, token: u64) {
        self.inner.io_wakers.lock().remove(&token);
    }

    /// Whether this executor thread has no other ready task waiting.
    /// A blocked I/O future uses this to decide if a brief adaptive
    /// spin (yield + one retry) is worth trying before an epoll park:
    /// in request-response lockstep the peer's next frame lands during
    /// the yield, skipping the whole poller round trip — but only when
    /// no other task is being starved by the wait.
    #[must_use]
    pub fn idle_hint(&self) -> bool {
        INLINE_RUN.with(|q| q.borrow().as_ref().is_none_or(Vec::is_empty))
            && self.inner.ready_rx.is_empty()
    }

    /// Runs `f` on a dedicated named thread, resolving when it completes.
    /// The escape hatch for operations with no local wakeup source —
    /// remote-container blocking waits, cluster-wide pulls — so they
    /// cannot starve the worker pool.
    pub fn run_blocking<T, F>(&self, name: &str, f: F) -> Offload<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.inner.metrics.offloaded.fetch_add(1, Ordering::Relaxed);
        let slot: Arc<OffloadSlot<T>> = Arc::new(OffloadSlot {
            value: Mutex::new(None),
            waker: Mutex::new(None),
        });
        let thread_slot = Arc::clone(&slot);
        std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || {
                let out = f();
                *thread_slot.value.lock() = Some(out);
                if let Some(w) = thread_slot.waker.lock().take() {
                    w.wake();
                }
            })
            .expect("spawning an offload thread failed");
        Offload { slot }
    }

    /// Whether [`Reactor::shutdown`] has run.
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Stops workers and the poller, joining them. Live tasks are dropped
    /// in place; parked wakers never fire again.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.poller.notify();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("workers", &self.workers)
            .field(
                "live_tasks",
                &self.inner.metrics.live_tasks.load(Ordering::Relaxed),
            )
            .field("ready_depth", &self.ready_depth())
            .finish()
    }
}

/// Cancels its periodic task when dropped or [`PeriodicHandle::cancel`]ed.
#[derive(Debug, Clone)]
pub struct PeriodicHandle {
    cancelled: Arc<AtomicBool>,
}

impl PeriodicHandle {
    /// Stops the periodic task at its next tick.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }
}

/// Future resolving at a wheel deadline; cancels its entry when dropped
/// before firing.
pub struct Sleep {
    inner: Arc<Inner>,
    deadline: u64,
    id: Option<TimerId>,
}

impl Sleep {
    /// The deadline tick.
    #[must_use]
    pub fn deadline(&self) -> u64 {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.inner.now_tick() >= self.deadline {
            if let Some(id) = self.id.take() {
                self.inner.wheel.lock().cancel(id);
            }
            return Poll::Ready(());
        }
        // (Re-)schedule with the current waker; the previous entry (from a
        // poll with a different waker) is cancelled to keep one live entry
        // per sleeper.
        if let Some(id) = self.id.take() {
            self.inner.wheel.lock().cancel(id);
        }
        let deadline = self.deadline;
        self.id = Some(self.inner.schedule_timer(deadline, cx.waker().clone()));
        Poll::Pending
    }
}

impl std::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleep")
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            self.inner.wheel.lock().cancel(id);
        }
    }
}

struct OffloadSlot<T> {
    value: Mutex<Option<T>>,
    waker: Mutex<Option<Waker>>,
}

/// Future for [`Reactor::run_blocking`].
pub struct Offload<T> {
    slot: Arc<OffloadSlot<T>>,
}

impl<T> std::fmt::Debug for Offload<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Offload").finish_non_exhaustive()
    }
}

impl<T> Future for Offload<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        // Park first, then check: the offload thread takes the waker after
        // storing the value, so either we see the value now or it sees the
        // waker we just parked.
        *self.slot.waker.lock() = Some(cx.waker().clone());
        if let Some(v) = self.slot.value.lock().take() {
            return Poll::Ready(v);
        }
        Poll::Pending
    }
}
