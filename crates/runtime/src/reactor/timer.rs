//! Hierarchical timer wheel.
//!
//! One clock for every deadline the runtime used to park a dedicated
//! thread on: failure-detector leases, flight-recorder ticks, the
//! replicator's linger pump, GC epoch cadence, CLF RTO/pacing
//! housekeeping, session leases, and `WaitSpec::TimeoutMs` shims. Four
//! levels of 64 slots cover deadlines from one tick (1 ms at the default
//! resolution) to ~4.6 hours; anything farther parks in an overflow map
//! until it drifts into the wheel's horizon.
//!
//! The wheel is **pure**: it never reads a clock. The owner converts wall
//! time to a monotone tick count and calls [`TimerWheel::advance`]; tests
//! drive the same API with a virtual clock, making firing order and
//! cancellation semantics fully deterministic (see
//! `crates/runtime/tests/timer_wheel.rs`).
//!
//! Guarantees:
//! - `advance(to)` fires exactly the live entries with `deadline <= to`,
//!   in non-decreasing deadline order.
//! - A cancelled entry never fires, no matter how the cancel interleaves
//!   with `advance` calls (cancellation is lazy in the slots but
//!   authoritative in the entry map).
//! - Per-entry cost is O(1) amortized: one placement, at most
//!   `LEVELS - 1` cascades over its lifetime, one removal.

use std::collections::{BTreeMap, HashMap};
use std::task::Waker;

/// Slots per level.
const SLOTS: u64 = 64;
/// Number of levels; level `l` spans `64^(l+1)` ticks.
const LEVELS: usize = 4;
/// Ticks covered by one slot at each level (`64^l`).
const UNIT: [u64; LEVELS] = [1, SLOTS, SLOTS * SLOTS, SLOTS * SLOTS * SLOTS];
/// Total ticks covered by each level (`64^(l+1)`).
const SPAN: [u64; LEVELS] = [
    SLOTS,
    SLOTS * SLOTS,
    SLOTS * SLOTS * SLOTS,
    SLOTS * SLOTS * SLOTS * SLOTS,
];

/// Handle to a scheduled entry, used to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

struct Entry {
    deadline: u64,
    waker: Waker,
}

/// The wheel. Not internally synchronized — the reactor guards it with a
/// mutex, tests own it outright.
pub struct TimerWheel {
    now: u64,
    next_id: u64,
    entries: HashMap<u64, Entry>,
    levels: Vec<Vec<Vec<u64>>>,
    /// Deadlines beyond the wheel horizon (`now + 64^4`).
    overflow: BTreeMap<u64, Vec<u64>>,
}

impl TimerWheel {
    /// An empty wheel positioned at tick `now`.
    #[must_use]
    pub fn new(now: u64) -> TimerWheel {
        TimerWheel {
            now,
            next_id: 1,
            entries: HashMap::new(),
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: BTreeMap::new(),
        }
    }

    /// The wheel's current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of live (scheduled, unfired, uncancelled) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Schedules `waker` to be woken by the first `advance` whose target
    /// tick reaches `deadline`. A deadline at or before the current tick
    /// is clamped to the next tick — the wheel never fires inside
    /// `schedule`, so the caller's register-then-check ordering holds.
    pub fn schedule(&mut self, deadline: u64, waker: Waker) -> TimerId {
        let deadline = deadline.max(self.now + 1);
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(id, Entry { deadline, waker });
        self.place(id, deadline);
        TimerId(id)
    }

    /// Cancels an entry; returns whether it was still pending (false if it
    /// already fired or was already cancelled).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.entries.remove(&id.0).is_some()
    }

    /// The earliest pending deadline within the next `SLOTS` ticks, if
    /// any; otherwise `now + SLOTS` when anything at all is pending, and
    /// `None` when the wheel is idle. This is the poller's sleep bound: it
    /// is exact for near deadlines and re-checks at slot granularity for
    /// far ones, so no global scan is ever needed.
    #[must_use]
    pub fn next_deadline_hint(&self) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best: Option<u64> = None;
        for t in (self.now + 1)..=(self.now + SLOTS) {
            let slot = (t % SLOTS) as usize;
            for id in &self.levels[0][slot] {
                if let Some(e) = self.entries.get(id) {
                    if e.deadline <= t && best.is_none_or(|b| e.deadline < b) {
                        best = Some(e.deadline);
                    }
                }
            }
            if best.is_some() {
                break;
            }
        }
        Some(best.unwrap_or(self.now + SLOTS))
    }

    /// Advances the wheel to tick `to`, returning every fired waker paired
    /// with its deadline, sorted by deadline (monotone firing order even
    /// when a single jump crosses many deadlines).
    pub fn advance(&mut self, to: u64) -> Vec<(u64, Waker)> {
        let mut fired: Vec<(u64, Waker)> = Vec::new();
        while self.now < to {
            if self.entries.is_empty() {
                // Nothing can fire; jump. Slots may hold stale cancelled
                // ids — they are discarded lazily when their slot turns up.
                self.now = to;
                break;
            }
            self.now += 1;
            let t = self.now;
            // Fire the level-0 slot for this tick.
            let slot = (t % SLOTS) as usize;
            let ids = std::mem::take(&mut self.levels[0][slot]);
            for id in ids {
                match self.entries.get(&id) {
                    None => {} // cancelled
                    Some(e) if e.deadline <= t => {
                        let e = self.entries.remove(&id).expect("entry vanished");
                        fired.push((e.deadline, e.waker));
                    }
                    Some(e) => {
                        // Same slot, a later lap of the wheel.
                        let deadline = e.deadline;
                        self.place(id, deadline);
                    }
                }
            }
            // Cascade upper levels whose slot boundary this tick crosses.
            for (l, unit) in UNIT.iter().enumerate().skip(1) {
                if !t.is_multiple_of(*unit) {
                    break;
                }
                let slot = ((t / unit) % SLOTS) as usize;
                let ids = std::mem::take(&mut self.levels[l][slot]);
                for id in ids {
                    match self.entries.get(&id) {
                        None => {}
                        Some(e) if e.deadline <= t => {
                            let e = self.entries.remove(&id).expect("entry vanished");
                            fired.push((e.deadline, e.waker));
                        }
                        Some(e) => {
                            let deadline = e.deadline;
                            self.place(id, deadline);
                        }
                    }
                }
            }
            // Pull overflow entries that came into the horizon.
            if t.is_multiple_of(UNIT[LEVELS - 1]) {
                let horizon = t + SPAN[LEVELS - 1];
                let back_in: Vec<u64> = {
                    let mut back = Vec::new();
                    let keys: Vec<u64> = self.overflow.range(..horizon).map(|(k, _)| *k).collect();
                    for k in keys {
                        if let Some(ids) = self.overflow.remove(&k) {
                            back.extend(ids);
                        }
                    }
                    back
                };
                for id in back_in {
                    if let Some(e) = self.entries.get(&id) {
                        let deadline = e.deadline;
                        self.place(id, deadline);
                    }
                }
            }
        }
        fired.sort_by_key(|(deadline, _)| *deadline);
        fired
    }

    /// Files `id` into the level whose span covers its remaining delta.
    fn place(&mut self, id: u64, deadline: u64) {
        let delta = deadline.saturating_sub(self.now);
        for l in 0..LEVELS {
            if delta < SPAN[l] {
                let slot = ((deadline / UNIT[l]) % SLOTS) as usize;
                self.levels[l][slot].push(id);
                return;
            }
        }
        self.overflow.entry(deadline).or_default().push(id);
    }
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("now", &self.now)
            .field("live", &self.entries.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}
