//! The cluster flight recorder: periodic metric sampling and health
//! derivation.
//!
//! Every address space can run one [`FlightRecorder`] — a background
//! thread that, on a fixed tick, folds the address space's registry
//! into its [`dstampede_obs::HistoryRecorder`] (fixed-capacity
//! delta-encoded rings, ~5 minutes at the default tick) and feeds the
//! [`dstampede_obs::HealthEngine`] with raw states derived from
//! signals the runtime already produces: peer lease age and death
//! declarations from the failure detector, CLF retransmit and
//! backpressure deltas, and STM container occupancy. The recorded
//! windows and derived states travel cluster-wide over
//! `HistoryPull`/`HealthPull` (see
//! [`crate::addrspace::AddressSpace::history_cluster_dump`]).
//!
//! The thread mirrors the [`crate::failure::FailureDetector`]
//! lifecycle: stoppable, joined on stop, exits on its own when the
//! address space shuts down, and stopped by drop.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dstampede_obs::HealthPolicy;

use crate::addrspace::AddressSpace;
use crate::failure::FailureConfig;

/// Tuning for the flight recorder's sampling tick and health
/// thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Interval between samples. The default (1 s) retains about five
    /// minutes per series at the default ring capacity.
    pub tick: Duration,
    /// Peer-health lease: a peer silent longer than this is `Suspect`,
    /// longer than half of it `Degraded`. Align it with the failure
    /// detector's lease so `Suspect` precedes the `Dead` declaration.
    pub lease: Duration,
    /// STM occupancy (channel + queue items) above which the local
    /// `stm` subject degrades.
    pub occupancy_watermark: i64,
    /// CLF retransmits per tick at or above which the local `clf`
    /// subject degrades (any backpressure rejection also degrades it).
    pub retransmit_threshold: u64,
    /// Buffered-but-unacked replication events above which the local
    /// `repl` subject degrades (only observed once this space has
    /// replicated at least one put).
    pub replication_lag_watermark: i64,
    /// Abnormal session teardowns (dirty + lease-expired) per tick at
    /// or above which the local `sessions` subject degrades — the churn
    /// signal: a burst of crashing or silently vanishing end devices.
    /// Clean detaches never degrade the subject.
    pub session_churn_threshold: u64,
    /// Hysteresis applied to every derived state.
    pub policy: HealthPolicy,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            tick: Duration::from_secs(1),
            lease: FailureConfig::default().lease(),
            occupancy_watermark: 1024,
            retransmit_threshold: 8,
            replication_lag_watermark: 1024,
            session_churn_threshold: 16,
            policy: HealthPolicy::default(),
        }
    }
}

impl RecorderConfig {
    /// A config whose peer thresholds follow a failure detector's
    /// lease.
    #[must_use]
    pub fn for_failure(failure: FailureConfig) -> Self {
        RecorderConfig {
            lease: failure.lease(),
            ..RecorderConfig::default()
        }
    }
}

/// Per-address-space sampling thread.
///
/// Each tick calls [`AddressSpace::record_tick`], which appends one
/// sample per live series to the history rings and re-derives every
/// health subject. Stopping the recorder (or dropping it) ends the
/// thread; recorded history stays readable.
pub struct FlightRecorder {
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    periodic: Mutex<Option<crate::reactor::PeriodicHandle>>,
}

impl FlightRecorder {
    /// Starts the recorder thread for an address space.
    #[must_use]
    pub fn start(space: Arc<AddressSpace>, config: RecorderConfig) -> Arc<Self> {
        space.set_health_policy(config.policy);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("as-{}-recorder", space.id().0))
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    if space.is_down() {
                        break;
                    }
                    space.record_tick(&config);
                    std::thread::sleep(config.tick);
                }
            })
            .expect("spawning the flight recorder thread failed");
        Arc::new(FlightRecorder {
            stop,
            thread: Mutex::new(Some(handle)),
            periodic: Mutex::new(None),
        })
    }

    /// Starts the recorder as a periodic reactor task: the sampling tick
    /// becomes one timer-wheel entry instead of a dedicated sleeping
    /// thread.
    #[must_use]
    pub fn start_reactor(
        space: Arc<AddressSpace>,
        config: RecorderConfig,
        reactor: &crate::reactor::Reactor,
    ) -> Arc<Self> {
        space.set_health_policy(config.policy);
        let stop = Arc::new(AtomicBool::new(false));
        let task_stop = Arc::clone(&stop);
        let handle = reactor.spawn_periodic(config.tick, move || {
            if task_stop.load(Ordering::Acquire) || space.is_down() {
                return false;
            }
            space.record_tick(&config);
            true
        });
        Arc::new(FlightRecorder {
            stop,
            thread: Mutex::new(None),
            periodic: Mutex::new(Some(handle)),
        })
    }

    /// Stops the recorder. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
        if let Some(p) = self.periodic.lock().take() {
            p.cancel();
        }
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.stop();
    }
}
