//! Asynchronous primary → follower replication of STM containers.
//!
//! Every channel or queue hosted through the placed-create path gets a
//! *follower*: a second live address space chosen by rendezvous hashing
//! (see [`crate::placement`]). The primary tails its own accepted puts
//! through a core put hook into a bounded in-flight window; a background
//! thread drains the window into [`Request::ReplicatePut`] batches — the
//! PR 4 batch item encoding — and counts acks. The follower keeps the
//! items in a passive [`ReplicaStore`], pruned by the primary's GC floor,
//! until either the primary reclaims them (floor advance) or dies — at
//! which point death recovery promotes the replica into a real container
//! (see `AddressSpace::declare_peer_dead`, step 5).
//!
//! The window is bounded: a primary that outruns its follower drops the
//! oldest unsent events rather than stalling the put path, so a crash
//! loses **at most the unacked replication window** — the guarantee the
//! durability table in the README documents.
//!
//! Old peers that predate these RPCs answer with a protocol error; the
//! replicator downgrades them (the established old-peer singleton
//! pattern) and stops replicating to them rather than failing puts.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use bytes::Bytes;
use dstampede_core::{AsId, ChannelAttrs, PutEvent, QueueAttrs, ResourceId, StmError, Timestamp};
use dstampede_wire::{BatchPutItem, Reply, Request};
use parking_lot::{Condvar, Mutex};

use crate::addrspace::AddressSpace;

/// Upper bound on buffered-but-unacked put events per address space.
/// Beyond it the oldest events are dropped (counted in
/// `repl/window_dropped`) so the put path never stalls on a slow
/// follower.
pub const REPLICATION_WINDOW: usize = 4096;

/// Upper bound on items retained per replica; beyond it the oldest are
/// discarded. A safety valve for primaries whose GC floor never advances.
pub const REPLICA_ITEM_CAP: usize = 65_536;

/// How many put events one `ReplicatePut` frame carries at most.
const REPLICATE_BATCH: usize = 256;

/// How long the pump lets a partial batch linger before shipping it.
/// Shipping on a linger tick (or a full batch) instead of on every put
/// keeps a freshly woken pump from preempting the producer once per
/// enqueue on core-starved machines, and lets `ReplicatePut` frames
/// fill toward [`REPLICATE_BATCH`] instead of carrying singletons. The
/// price is at most this much extra staleness on top of the window
/// bound — negligible against failure-detection timescales.
const REPLICATE_LINGER: std::time::Duration = std::time::Duration::from_millis(1);

/// The creation attributes of a replicated container, replayed when the
/// follower promotes the replica into a real container.
#[derive(Debug, Clone)]
pub enum ReplicaAttrs {
    /// A channel replica.
    Channel(ChannelAttrs),
    /// A queue replica.
    Queue(QueueAttrs),
}

/// Follower-side state for one replicated resource.
#[derive(Debug, Clone)]
pub struct ReplicaState {
    /// The address space that owns the live container.
    pub primary: AsId,
    /// The container's registered name, if any.
    pub name: Option<String>,
    /// Creation attributes, replayed on promotion.
    pub attrs: ReplicaAttrs,
    /// Replicated items: `ts → (tag, payload)`. For queues the map holds
    /// every unreclaimed put (FIFO order restored by timestamp).
    pub items: BTreeMap<i64, (u32, Bytes)>,
}

/// The passive replica map one address space keeps on behalf of its
/// peers. All methods are cheap; `ReplicatePut` appends happen on the
/// executor path.
#[derive(Debug, Default)]
pub struct ReplicaStore {
    map: Mutex<HashMap<ResourceId, ReplicaState>>,
}

impl ReplicaStore {
    /// Opens (or reopens — idempotently) a replica for `resource`.
    pub fn open(&self, resource: ResourceId, name: Option<String>, attrs: ReplicaAttrs) {
        let mut map = self.map.lock();
        map.entry(resource).or_insert_with(|| ReplicaState {
            primary: resource.owner(),
            name,
            attrs,
            items: BTreeMap::new(),
        });
    }

    /// Appends replicated items and prunes everything at or below the
    /// primary's reclamation floor.
    ///
    /// # Errors
    ///
    /// [`StmError::NoSuchResource`] when no replica is open for
    /// `resource` (e.g. this node restarted); the primary answers by
    /// re-opening and retrying.
    pub fn append(
        &self,
        resource: ResourceId,
        floor: Timestamp,
        items: &[BatchPutItem],
    ) -> Result<(), StmError> {
        let mut map = self.map.lock();
        let state = map.get_mut(&resource).ok_or(StmError::NoSuchResource)?;
        for item in items {
            state
                .items
                .insert(item.ts.value(), (item.tag, item.payload.clone()));
        }
        if floor.value() > i64::MIN {
            state.items = state.items.split_off(&(floor.value() + 1));
        }
        while state.items.len() > REPLICA_ITEM_CAP {
            let oldest = *state.items.keys().next().expect("nonempty over cap");
            state.items.remove(&oldest);
        }
        Ok(())
    }

    /// Removes and returns every replica whose primary is `peer` —
    /// the seal step of failover promotion. Once taken the replicas
    /// stop accepting appends (`NoSuchResource`), so a zombie primary
    /// cannot mutate a promoted container's past.
    #[must_use]
    pub fn take_replicas_of(&self, peer: AsId) -> Vec<(ResourceId, ReplicaState)> {
        let mut map = self.map.lock();
        let doomed: Vec<ResourceId> = map
            .iter()
            .filter(|(_, s)| s.primary == peer)
            .map(|(r, _)| *r)
            .collect();
        let mut out: Vec<(ResourceId, ReplicaState)> = doomed
            .into_iter()
            .filter_map(|r| map.remove(&r).map(|s| (r, s)))
            .collect();
        out.sort_by_key(|(r, _)| *r);
        out
    }

    /// `(resource, primary, buffered items)` for every open replica —
    /// the follower half of the CLI placement map.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(ResourceId, AsId, usize)> {
        let map = self.map.lock();
        let mut out: Vec<_> = map
            .iter()
            .map(|(r, s)| (*r, s.primary, s.items.len()))
            .collect();
        out.sort_by_key(|(r, _, _)| *r);
        out
    }
}

/// One buffered put event awaiting replication.
struct Pending {
    resource: ResourceId,
    ts: Timestamp,
    tag: u32,
    payload: Bytes,
}

/// Where a resource's replica lives and how to (re)open it.
struct Route {
    follower: AsId,
    open: Request,
}

struct ReplicatorState {
    window: VecDeque<Pending>,
    routes: HashMap<ResourceId, Route>,
    /// `ReplicaOpen*` requests not yet delivered, performed by the pump
    /// thread: the executor path may run on the dispatcher, which must
    /// never block on its own peer RPC.
    opens: VecDeque<(AsId, Request)>,
    /// Followers that answered a replication RPC with "unhandled
    /// request": old peers. Routes to them are retired.
    incapable: HashSet<AsId>,
    /// True while the pump is out shipping a drained batch — the window
    /// alone understates the backlog (`lag` drops before the follower
    /// acks), so quiescence checks need both.
    busy: bool,
    acked: u64,
}

/// The primary-side replication pump for one address space.
pub struct Replicator {
    space: Weak<AddressSpace>,
    state: Mutex<ReplicatorState>,
    wake: Condvar,
    down: AtomicBool,
    worker: Mutex<Option<JoinHandle<()>>>,
    periodic: Mutex<Option<crate::reactor::PeriodicHandle>>,
    /// Metric handles resolved once at start: [`Replicator::enqueue`] is
    /// on the accepted-put hot path and must not pay registry lookups.
    lag_gauge: Arc<dstampede_obs::Gauge>,
    node_lag_gauge: Arc<dstampede_obs::Gauge>,
    dropped_counter: Arc<dstampede_obs::Counter>,
    acked_counter: Arc<dstampede_obs::Counter>,
    lost_counter: Arc<dstampede_obs::Counter>,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Replicator")
            .field("window", &st.window.len())
            .field("routes", &st.routes.len())
            .field("acked", &st.acked)
            .finish()
    }
}

impl Replicator {
    /// Creates the replicator for `space` and starts its pump thread.
    #[must_use]
    pub fn start(space: &Arc<AddressSpace>) -> Arc<Self> {
        let repl = Replicator::new(space);
        let r2 = Arc::clone(&repl);
        let handle = std::thread::Builder::new()
            .name(format!("as-{}-repl", space.id().0))
            .spawn(move || r2.pump())
            .expect("spawn replicator");
        *repl.worker.lock() = Some(handle);
        repl
    }

    /// Creates the replicator for `space`, clocking its linger tick on a
    /// reactor's timer wheel instead of a dedicated pump thread. Each
    /// tick with pending work hands the blocking ship round (peer RPC)
    /// to an offload thread, which drains the window to empty before
    /// retiring — so heavy backlogs still ship at full speed while an
    /// idle replicator holds no thread at all.
    #[must_use]
    pub fn start_reactor(
        space: &Arc<AddressSpace>,
        reactor: &crate::reactor::Reactor,
    ) -> Arc<Self> {
        let repl = Replicator::new(space);
        let r2 = Arc::clone(&repl);
        let offload_reactor = reactor.clone();
        let handle = reactor.spawn_periodic(REPLICATE_LINGER, move || {
            if r2.down.load(Ordering::SeqCst) {
                return false;
            }
            {
                let st = r2.state.lock();
                if st.busy || (st.window.is_empty() && st.opens.is_empty()) {
                    return true;
                }
            }
            let r3 = Arc::clone(&r2);
            drop(offload_reactor.run_blocking("repl-ship", move || loop {
                let (opens, batch): (Vec<(AsId, Request)>, Vec<Pending>) = {
                    let mut st = r3.state.lock();
                    if r3.down.load(Ordering::SeqCst)
                        || (st.window.is_empty() && st.opens.is_empty())
                    {
                        st.busy = false;
                        let lag = st.window.len() as i64;
                        drop(st);
                        r3.publish_lag(lag);
                        return;
                    }
                    st.busy = true;
                    let n = st.window.len().min(REPLICATE_BATCH);
                    (st.opens.drain(..).collect(), st.window.drain(..n).collect())
                };
                r3.deliver_opens(opens);
                r3.ship(batch);
            }));
            true
        });
        *repl.periodic.lock() = Some(handle);
        repl
    }

    fn new(space: &Arc<AddressSpace>) -> Arc<Self> {
        let metrics = space.metrics();
        let node = format!("as-{}", space.id().0);
        Arc::new(Replicator {
            space: Arc::downgrade(space),
            state: Mutex::new(ReplicatorState {
                window: VecDeque::new(),
                routes: HashMap::new(),
                opens: VecDeque::new(),
                incapable: HashSet::new(),
                busy: false,
                acked: 0,
            }),
            wake: Condvar::new(),
            down: AtomicBool::new(false),
            worker: Mutex::new(None),
            periodic: Mutex::new(None),
            lag_gauge: metrics.gauge("repl", "lag"),
            node_lag_gauge: metrics.gauge_labeled("repl", "node_lag", &[("node", &node)]),
            dropped_counter: metrics.counter("repl", "window_dropped"),
            acked_counter: metrics.counter("repl", "acked"),
            lost_counter: metrics.counter("repl", "lost"),
        })
    }

    /// Registers `resource` as replicated to `follower` and schedules the
    /// `ReplicaOpen*` request (delivered by the pump thread — the caller
    /// may be the dispatcher, which must not block on its own peer RPC;
    /// `open` is also replayed if the follower later loses the replica).
    pub fn track(&self, resource: ResourceId, follower: AsId, open: Request) {
        let mut st = self.state.lock();
        if st.incapable.contains(&follower) {
            return;
        }
        st.opens.push_back((follower, open.clone()));
        st.routes.insert(resource, Route { follower, open });
        drop(st);
        // Advertise the route for placement tooling (`dstampede-cli
        // placement` joins these against the name server's entries).
        if let Some(space) = self.space.upgrade() {
            space
                .metrics()
                .gauge_labeled("repl", "follower", &[("resource", &resource.to_string())])
                .set(i64::from(follower.0));
        }
        self.wake.notify_one();
    }

    /// The follower for `resource`, if it is being replicated.
    #[must_use]
    pub fn follower_of(&self, resource: ResourceId) -> Option<AsId> {
        self.state.lock().routes.get(&resource).map(|r| r.follower)
    }

    /// `(resource, follower)` for every replicated resource — the
    /// primary half of the CLI placement map.
    #[must_use]
    pub fn routes(&self) -> Vec<(ResourceId, AsId)> {
        let st = self.state.lock();
        let mut out: Vec<_> = st
            .routes
            .iter()
            .map(|(r, route)| (*r, route.follower))
            .collect();
        out.sort_by_key(|(r, _)| *r);
        out
    }

    /// Unacked events currently buffered (the replication lag).
    #[must_use]
    pub fn lag(&self) -> usize {
        self.state.lock().window.len()
    }

    /// True when nothing is buffered and the pump is between runs —
    /// i.e. everything accepted so far has been shipped (or written
    /// off). `lag() == 0` alone only means the window was *drained*;
    /// the batch may still be in flight to the follower.
    #[must_use]
    pub fn quiesced(&self) -> bool {
        let st = self.state.lock();
        st.window.is_empty() && st.opens.is_empty() && !st.busy
    }

    /// The put-hook entry: buffers an accepted put for replication.
    /// A full window drops its oldest event (bounded loss, never
    /// backpressure on the put path).
    ///
    /// Hooks only exist on containers the placed-create path routed, so
    /// no route lookup happens here — [`Replicator::ship`] discards the
    /// rare event whose route was retired (downgrade) after buffering.
    pub fn enqueue(&self, ev: PutEvent) {
        let mut st = self.state.lock();
        st.window.push_back(Pending {
            resource: ev.resource,
            ts: ev.ts,
            tag: ev.tag,
            payload: ev.payload,
        });
        if st.window.len() > REPLICATION_WINDOW {
            st.window.pop_front();
            self.dropped_counter.inc();
        }
        let lag = st.window.len() as i64;
        drop(st);
        // No pump wakeup: the pump is clocked by its own linger tick,
        // so a producer is never preempted by the thread it just fed
        // (a wake-from-sleep here reliably preempts the putter on
        // core-starved machines). Gauge publication is throttled to
        // transitions — the pump republishes on every ship, and the
        // recorder samples coarser than that anyway.
        if lag == 1 {
            self.publish_lag(1);
        } else if lag & 0x3ff == 0 {
            self.publish_lag(lag);
        }
    }

    /// Stops the pump thread (idempotent). Buffered events are dropped.
    pub fn stop(&self) {
        self.down.store(true, Ordering::SeqCst);
        self.wake.notify_all();
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        if let Some(p) = self.periodic.lock().take() {
            p.cancel();
        }
    }

    fn pump(self: &Arc<Self>) {
        loop {
            let (opens, batch): (Vec<(AsId, Request)>, Vec<Pending>) = {
                let mut st = self.state.lock();
                // The pump is clocked by the linger tick, not by
                // per-put wakeups: whatever accumulated over the last
                // tick ships as one run of full-as-possible batches,
                // and a backlog of a batch or more loops back without
                // sleeping. Only `track` (opens) and `stop` notify.
                while st.window.len() < REPLICATE_BATCH
                    && st.opens.is_empty()
                    && !self.down.load(Ordering::SeqCst)
                {
                    let timed_out = self
                        .wake
                        .wait_until(&mut st, std::time::Instant::now() + REPLICATE_LINGER)
                        .timed_out();
                    if timed_out && !st.window.is_empty() {
                        break;
                    }
                }
                if self.down.load(Ordering::SeqCst) {
                    return;
                }
                let n = st.window.len().min(REPLICATE_BATCH);
                st.busy = true;
                (st.opens.drain(..).collect(), st.window.drain(..n).collect())
            };
            self.deliver_opens(opens);
            self.ship(batch);
            let lag = {
                let mut st = self.state.lock();
                st.busy = false;
                st.window.len() as i64
            };
            self.publish_lag(lag);
        }
    }

    /// Publishes the replication lag both as the plain per-space gauge
    /// (fed into the flight recorder's `repl` health subject) and
    /// labeled by node, so a merged cluster snapshot keeps per-primary
    /// attribution.
    fn publish_lag(&self, lag: i64) {
        self.lag_gauge.set(lag);
        self.node_lag_gauge.set(lag);
    }

    /// Delivers scheduled `ReplicaOpen*` requests. An old peer answering
    /// "unhandled request" is downgraded (routes retired); any other
    /// failure is left to [`Replicator::ship`]'s reopen-and-retry path.
    fn deliver_opens(self: &Arc<Self>, opens: Vec<(AsId, Request)>) {
        let Some(space) = self.space.upgrade() else {
            return;
        };
        for (follower, open) in opens {
            if self.state.lock().incapable.contains(&follower) {
                continue;
            }
            match space.call(follower, open) {
                Ok(Reply::Ok) => {}
                Err(StmError::Protocol(msg)) if msg.contains("unhandled request") => {
                    dstampede_obs::warn(
                        "repl",
                        format!(
                            "as-{} lacks replication RPCs; disabling replication to it",
                            follower.0
                        ),
                    );
                    self.downgrade(&space, follower);
                }
                Ok(other) => dstampede_obs::warn(
                    "repl",
                    format!(
                        "unexpected reply opening replica on as-{}: {other:?}",
                        follower.0
                    ),
                ),
                Err(e) => dstampede_obs::warn(
                    "repl",
                    format!("failed to open replica on as-{}: {e}", follower.0),
                ),
            }
        }
    }

    /// Marks `follower` as an old peer without the replication RPCs and
    /// retires every route through it, clearing the advertised placement
    /// gauges so tooling stops showing a follower that isn't one.
    fn downgrade(&self, space: &Arc<AddressSpace>, follower: AsId) {
        let mut st = self.state.lock();
        st.incapable.insert(follower);
        let retired: Vec<ResourceId> = st
            .routes
            .iter()
            .filter(|(_, r)| r.follower == follower)
            .map(|(res, _)| *res)
            .collect();
        st.routes.retain(|_, r| r.follower != follower);
        drop(st);
        for resource in retired {
            space
                .metrics()
                .gauge_labeled("repl", "follower", &[("resource", &resource.to_string())])
                .set(-1);
        }
    }

    /// Groups a drained batch by resource and ships each group to its
    /// follower, preserving per-resource order.
    fn ship(self: &Arc<Self>, batch: Vec<Pending>) {
        let Some(space) = self.space.upgrade() else {
            return;
        };
        let mut groups: Vec<(ResourceId, Vec<BatchPutItem>)> = Vec::new();
        for p in batch {
            let item = BatchPutItem {
                ts: p.ts,
                tag: p.tag,
                payload: p.payload,
                trace: None,
            };
            match groups.iter_mut().find(|(r, _)| *r == p.resource) {
                Some((_, items)) => items.push(item),
                None => groups.push((p.resource, vec![item])),
            }
        }
        for (resource, items) in groups {
            let n = items.len() as u64;
            let Some((follower, open)) = ({
                let st = self.state.lock();
                st.routes
                    .get(&resource)
                    .map(|r| (r.follower, r.open.clone()))
            }) else {
                continue; // route retired mid-flight
            };
            let floor = match resource {
                ResourceId::Channel(chan) => space
                    .registry()
                    .channel(chan)
                    .map(|c| c.gc_floor())
                    .unwrap_or(Timestamp::MIN),
                ResourceId::Queue(_) => Timestamp::MIN,
            };
            let req = Request::ReplicatePut {
                resource,
                floor,
                items,
            };
            match space.call(follower, req.clone()) {
                Ok(Reply::Ok) => {
                    self.state.lock().acked += n;
                    self.acked_counter.add(n);
                }
                Ok(Reply::Error { code, .. }) if code == StmError::NoSuchResource.code() => {
                    // Follower lost the replica (restart): reopen, retry once.
                    let reopened = matches!(space.call(follower, open), Ok(Reply::Ok));
                    if reopened && matches!(space.call(follower, req), Ok(Reply::Ok)) {
                        self.state.lock().acked += n;
                        self.acked_counter.add(n);
                    } else {
                        self.lost_counter.add(n);
                    }
                }
                Err(StmError::Protocol(msg)) if msg.contains("unhandled request") => {
                    // Old peer without replication support: retire every
                    // route through it (singleton downgrade).
                    dstampede_obs::warn(
                        "repl",
                        format!(
                            "as-{} lacks replication RPCs; disabling replication to it",
                            follower.0
                        ),
                    );
                    self.downgrade(&space, follower);
                    self.lost_counter.add(n);
                }
                Ok(_) | Err(_) => {
                    // Dead or unreachable follower: these events are the
                    // "unacked window" the durability table writes off.
                    self.lost_counter.add(n);
                }
            }
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.down.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstampede_core::ChanId;

    fn chan(owner: u16, index: u32) -> ResourceId {
        ResourceId::Channel(ChanId {
            owner: AsId(owner),
            index,
        })
    }

    fn item(ts: i64, tag: u32, payload: &'static [u8]) -> BatchPutItem {
        BatchPutItem {
            ts: Timestamp::new(ts),
            tag,
            payload: Bytes::from_static(payload),
            trace: None,
        }
    }

    #[test]
    fn append_requires_open() {
        let store = ReplicaStore::default();
        assert_eq!(
            store.append(chan(1, 0), Timestamp::MIN, &[item(1, 0, b"x")]),
            Err(StmError::NoSuchResource)
        );
        store.open(
            chan(1, 0),
            None,
            ReplicaAttrs::Channel(ChannelAttrs::default()),
        );
        store
            .append(chan(1, 0), Timestamp::MIN, &[item(1, 0, b"x")])
            .unwrap();
        assert_eq!(store.snapshot(), vec![(chan(1, 0), AsId(1), 1)]);
    }

    #[test]
    fn reopen_is_idempotent() {
        let store = ReplicaStore::default();
        store.open(
            chan(1, 0),
            Some("a".into()),
            ReplicaAttrs::Channel(ChannelAttrs::default()),
        );
        store
            .append(chan(1, 0), Timestamp::MIN, &[item(5, 1, b"keep")])
            .unwrap();
        store.open(
            chan(1, 0),
            Some("a".into()),
            ReplicaAttrs::Channel(ChannelAttrs::default()),
        );
        assert_eq!(store.snapshot(), vec![(chan(1, 0), AsId(1), 1)]);
    }

    #[test]
    fn floor_prunes_reclaimed_items() {
        let store = ReplicaStore::default();
        store.open(
            chan(2, 3),
            None,
            ReplicaAttrs::Channel(ChannelAttrs::default()),
        );
        store
            .append(
                chan(2, 3),
                Timestamp::MIN,
                &[item(1, 0, b"a"), item(2, 0, b"b"), item(3, 0, b"c")],
            )
            .unwrap();
        store.append(chan(2, 3), Timestamp::new(2), &[]).unwrap();
        assert_eq!(store.snapshot(), vec![(chan(2, 3), AsId(2), 1)]);
        let taken = store.take_replicas_of(AsId(2));
        assert_eq!(taken.len(), 1);
        assert_eq!(
            taken[0].1.items.keys().copied().collect::<Vec<_>>(),
            vec![3]
        );
    }

    #[test]
    fn take_seals_the_replica() {
        let store = ReplicaStore::default();
        store.open(
            chan(4, 0),
            None,
            ReplicaAttrs::Channel(ChannelAttrs::default()),
        );
        store.open(
            chan(5, 0),
            None,
            ReplicaAttrs::Channel(ChannelAttrs::default()),
        );
        let taken = store.take_replicas_of(AsId(4));
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].0, chan(4, 0));
        // Sealed: a straggling append from the dead primary is rejected.
        assert_eq!(
            store.append(chan(4, 0), Timestamp::MIN, &[item(9, 0, b"z")]),
            Err(StmError::NoSuchResource)
        );
        // The other primary's replica is untouched.
        assert_eq!(store.snapshot(), vec![(chan(5, 0), AsId(5), 0)]);
    }

    #[test]
    fn replayed_append_overwrites_idempotently() {
        let store = ReplicaStore::default();
        store.open(chan(1, 1), None, ReplicaAttrs::Queue(QueueAttrs::default()));
        let batch = [item(7, 2, b"dup")];
        store.append(chan(1, 1), Timestamp::MIN, &batch).unwrap();
        store.append(chan(1, 1), Timestamp::MIN, &batch).unwrap();
        assert_eq!(store.snapshot(), vec![(chan(1, 1), AsId(1), 1)]);
    }
}
