//! Batched put/get through the surrogate/proxy fan-out, including the
//! old-peer downgrade: when a peer does not advertise the batch frames,
//! the proxy splits every batch into singleton requests and the caller
//! must observe identical per-item results.

use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, StmError, Timestamp};
use dstampede_runtime::Cluster;
use dstampede_wire::WaitSpec;

fn ts(v: i64) -> Timestamp {
    Timestamp::new(v)
}

/// Runs one channel batch round through a remote proxy and returns the
/// observable outcomes (per-item put codes for a fresh + an overlapping
/// batch, then per-spec get results as (ts, payload) or error).
type ChanRound = (
    Vec<Result<(), StmError>>,
    Vec<Result<(), StmError>>,
    Vec<Result<(i64, Vec<u8>), StmError>>,
);

fn channel_batch_round(base_ts: i64, batch_enabled: bool) -> ChanRound {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    if !batch_enabled {
        peer.set_peer_batch(owner.id(), false);
        assert!(!peer.peer_supports_batch(owner.id()));
    }
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let out = peer
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();
    let inp = peer
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();

    let entries: Vec<_> = (0..6)
        .map(|i| {
            (
                ts(base_ts + i),
                Item::from_vec(vec![i as u8; 4]).with_tag(i as u32),
            )
        })
        .collect();
    let first = out
        .put_many(entries.clone(), WaitSpec::NonBlocking)
        .unwrap();
    // Overlap: the last two existing timestamps plus one new one.
    let redo: Vec<_> = (4..7)
        .map(|i| (ts(base_ts + i), Item::from_vec(vec![0xFF; 4])))
        .collect();
    let second = out.put_many(redo, WaitSpec::NonBlocking).unwrap();

    let specs = [
        GetSpec::Exact(ts(base_ts)),
        GetSpec::Exact(ts(base_ts + 5)),
        GetSpec::Exact(ts(base_ts + 99)), // miss
        GetSpec::Earliest,
    ];
    let got = inp
        .get_many(&specs)
        .unwrap()
        .into_iter()
        .map(|r| r.map(|(t, item)| (t.value(), item.payload().to_vec())))
        .collect();
    cluster.shutdown();
    (first, second, got)
}

/// The batched wire path and the singleton downgrade path produce
/// byte-identical observable results for channels.
#[test]
fn channel_batch_downgrade_matches_batched_path() {
    let batched = channel_batch_round(100, true);
    let split = channel_batch_round(100, false);
    assert_eq!(batched, split);

    let (first, second, got) = batched;
    assert!(first.iter().all(Result::is_ok));
    assert_eq!(
        second,
        vec![Err(StmError::TsExists), Err(StmError::TsExists), Ok(())]
    );
    assert_eq!(got[0], Ok((100, vec![0u8; 4])));
    assert_eq!(got[1], Ok((105, vec![5u8; 4])));
    assert_eq!(got[2], Err(StmError::Absent));
    assert_eq!(got[3], Ok((100, vec![0u8; 4])));
}

/// Queue batches drain FIFO with exactly-once tickets whether or not the
/// peer speaks the batch frames.
fn queue_batch_round(batch_enabled: bool) -> Vec<u32> {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    if !batch_enabled {
        peer.set_peer_batch(owner.id(), false);
    }
    let q = owner.create_queue(None, QueueAttrs::default());
    let out = peer.open_queue(q.id()).unwrap().connect_output().unwrap();
    let inp = peer.open_queue(q.id()).unwrap().connect_input().unwrap();

    let entries: Vec<_> = (0..9)
        .map(|i| (ts(i), Item::from_vec(vec![i as u8]).with_tag(i as u32)))
        .collect();
    for r in out.put_many(entries, WaitSpec::NonBlocking).unwrap() {
        r.unwrap();
    }

    let mut tags = Vec::new();
    // Drain in two uneven slices plus an over-ask, then settle each ticket.
    for want in [4usize, 3, 32] {
        for (_, item, ticket) in inp.dequeue_many(want).unwrap() {
            tags.push(item.tag());
            inp.consume(ticket).unwrap();
        }
    }
    assert!(inp.dequeue_many(8).unwrap().is_empty());
    cluster.shutdown();
    tags
}

#[test]
fn queue_batch_downgrade_matches_batched_path() {
    let batched = queue_batch_round(true);
    let split = queue_batch_round(false);
    let expected: Vec<u32> = (0..9).collect();
    assert_eq!(batched, expected);
    assert_eq!(split, expected);
}
