//! Fault-injection ("chaos") drills for the failure-detection and
//! recovery subsystem.
//!
//! Every test drives a live cluster through a seeded
//! [`dstampede_clf::FaultPlan`] — crashes, partitions, duplicated
//! packets — and asserts the recovery invariants: survivors keep making
//! progress within the RPC deadline, orphaned connections release their
//! GC claims, in-flight queue tickets return to surviving getters, and
//! the death event is visible in telemetry. Plans are deterministic
//! (seeded LCG, packet-count triggers), so these drills are reproducible;
//! CI runs them single-threaded (`--test-threads=1`) to keep timing
//! windows stable.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede_clf::FaultPlan;
use dstampede_client::{render_snapshot_table, EndDevice};
use dstampede_core::{
    AsId, ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, StmError, Timestamp,
};
use dstampede_runtime::failure::{FailureConfig, RpcConfig};
use dstampede_runtime::proto;
use dstampede_runtime::{Cluster, ClusterBuilder};
use dstampede_wire::{Reply, Request, RequestFrame, WaitSpec};

/// Polls `cond` until it holds or `deadline` passes.
fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn fast_failure() -> FailureConfig {
    FailureConfig {
        period: Duration::from_millis(20),
        missed: 3,
    }
}

fn fast_rpc() -> RpcConfig {
    RpcConfig {
        deadline: Duration::from_millis(800),
        attempt_timeout: Duration::from_millis(150),
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
    }
}

/// The flagship drill: a three-space cluster streaming through channels
/// and a queue loses one space mid-stream. Survivors must keep completing
/// puts and gets within the RPC deadline, the dead space's channel claims
/// must release so GC reclaims the orphaned items, its in-flight queue
/// ticket must return to a surviving getter, and the death event must
/// show up in (cluster-wide) telemetry — the same view `dstampede-cli
/// stats` renders.
#[test]
fn crashed_space_mid_stream_recovers() {
    let plan = FaultPlan::new(42);
    let cluster = Cluster::builder()
        .address_spaces(3)
        .fault_plan(Arc::clone(&plan))
        .failure_detection(fast_failure())
        .rpc_config(fast_rpc())
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let survivor = cluster.space(1).unwrap();
    let victim = cluster.space(2).unwrap();

    let chan = owner.create_channel(Some("stream".into()), ChannelAttrs::default());
    let queue = owner.create_queue(Some("work".into()), QueueAttrs::default());

    // The survivor produces and consumes; the victim lags at timestamp 0
    // with claims that pin every item, and holds a queue ticket in flight.
    let out = survivor
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();
    let survivor_in = survivor
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();
    let victim_in = victim
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();

    for i in 0..5 {
        out.put(
            Timestamp::new(i),
            Item::from_vec(vec![i as u8]),
            WaitSpec::Forever,
        )
        .unwrap();
    }
    // The victim reads but never consumes: its claims pin items 0..5.
    let (_, item) = victim_in
        .get(GetSpec::Earliest, WaitSpec::NonBlocking)
        .unwrap();
    assert_eq!(item.payload(), &[0]);

    // The victim takes a queue ticket and "crashes" before settling it.
    let q_out = survivor
        .open_queue(queue.id())
        .unwrap()
        .connect_output()
        .unwrap();
    q_out
        .put(
            Timestamp::new(1),
            Item::from_vec(b"in-flight".to_vec()),
            WaitSpec::NonBlocking,
        )
        .unwrap();
    let victim_q = victim
        .open_queue(queue.id())
        .unwrap()
        .connect_input()
        .unwrap();
    let (_, q_item, _unsettled) = victim_q.get(WaitSpec::NonBlocking).unwrap();
    assert_eq!(q_item.payload(), b"in-flight");

    // The survivor consumes everything it has seen so far; the victim's
    // claims still pin every item.
    for i in 0..5 {
        let (ts, _) = survivor_in
            .get(GetSpec::Exact(Timestamp::new(i)), WaitSpec::Forever)
            .unwrap();
        survivor_in.consume_until(ts).unwrap();
    }
    assert!(chan.live_items() > 0, "victim claims should pin items");

    // Kill the victim mid-stream.
    plan.crash(AsId(2));

    // Survivors keep completing operations within the deadline while the
    // failure detector works in the background.
    let started = Instant::now();
    out.put(
        Timestamp::new(5),
        Item::from_vec(vec![5]),
        WaitSpec::Forever,
    )
    .unwrap();
    let (ts, item) = survivor_in
        .get(GetSpec::Exact(Timestamp::new(5)), WaitSpec::Forever)
        .unwrap();
    assert_eq!(item.payload(), &[5]);
    survivor_in.consume_until(ts).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "survivor operations must not hang on the dead peer"
    );

    // The owner declares the victim dead...
    assert!(
        wait_for(Duration::from_secs(5), || owner.is_peer_dead(AsId(2))),
        "owner never declared the crashed space dead"
    );
    // ...which orphans the victim's channel claims: GC reclaims the
    // pinned items.
    assert!(
        wait_for(Duration::from_secs(5), || chan.live_items() == 0),
        "orphaned claims still pin {} items",
        chan.live_items()
    );
    assert!(chan.stats().reclaimed_items >= 1);

    // ...and requeues the victim's in-flight ticket for a survivor.
    let survivor_q = survivor
        .open_queue(queue.id())
        .unwrap()
        .connect_input()
        .unwrap();
    let recovered = wait_for(Duration::from_secs(5), || {
        matches!(
            survivor_q.get(WaitSpec::NonBlocking),
            Ok((_, ref item, _)) if item.payload() == b"in-flight"
        )
    });
    assert!(recovered, "in-flight ticket was not requeued to a survivor");

    // The death event is visible in the cluster-wide stats a client pulls
    // (what `dstampede-cli stats` renders).
    let device = EndDevice::attach_c(cluster.listener_addr(0).unwrap(), "drill").unwrap();
    let snap = device.stats(true).unwrap();
    assert!(
        snap.counter_value("failure", "peers_declared_dead")
            .unwrap_or(0)
            >= 1,
        "death event missing from cluster stats"
    );
    let table = render_snapshot_table(&snap);
    assert!(table.contains("peers_declared_dead"));
    device.detach().unwrap();

    cluster.shutdown();
}

/// Satellite: an orphaned input connection at a low virtual time must not
/// wedge the distributed GC epoch floor. The dead space's stale report is
/// retired from the aggregator when it is declared dead.
#[test]
fn orphaned_space_no_longer_wedges_gc_floor() {
    use dstampede_core::VirtualTime;
    use dstampede_runtime::{GcEpochConfig, GcEpochService};

    let plan = FaultPlan::new(7);
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .fault_plan(Arc::clone(&plan))
        .failure_detection(fast_failure())
        .rpc_config(fast_rpc())
        .build()
        .unwrap();
    let aggregator = cluster.space(0).unwrap();
    let laggard = cluster.space(1).unwrap();

    let t0 = aggregator.threads().register("ahead");
    let t1 = laggard.threads().register("behind");
    t0.set_vt(VirtualTime::at(Timestamp::new(100)));
    t1.set_vt(VirtualTime::at(Timestamp::new(5)));

    let service = GcEpochService::start(
        cluster.spaces(),
        GcEpochConfig {
            period: Duration::from_millis(10),
        },
    );
    // The laggard's report wedges the floor at 5.
    assert!(wait_for(Duration::from_secs(5), || {
        aggregator.gc_global_floor() == VirtualTime::at(Timestamp::new(5))
    }));

    // Crash the laggard: once declared dead, its stale report is retired
    // and the floor advances to the survivor's virtual time.
    plan.crash(AsId(1));
    assert!(
        wait_for(Duration::from_secs(5), || {
            aggregator.gc_global_floor() == VirtualTime::at(Timestamp::new(100))
        }),
        "GC floor still wedged at {:?} by the dead space",
        aggregator.gc_global_floor()
    );

    service.shutdown();
    cluster.shutdown();
}

/// A full partition makes non-blocking RPCs fail with
/// [`StmError::Timeout`] once the retry deadline expires — instead of
/// hanging forever — and calls succeed again after the partition heals.
#[test]
fn partition_expires_rpc_deadline_then_heals() {
    let plan = FaultPlan::new(11);
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .fault_plan(Arc::clone(&plan))
        .rpc_config(RpcConfig {
            deadline: Duration::from_millis(300),
            attempt_timeout: Duration::from_millis(60),
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
        })
        .build()
        .unwrap();
    let a = cluster.space(0).unwrap();
    let b = cluster.space(1).unwrap();

    plan.partition(AsId(0), AsId(1));
    let started = Instant::now();
    assert_eq!(
        b.call(AsId(0), Request::Ping { nonce: 1 }).unwrap_err(),
        StmError::Timeout
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(3),
        "deadline fired after {elapsed:?}, expected ≈300ms"
    );

    plan.heal(AsId(0), AsId(1));
    match b.call(AsId(0), Request::Ping { nonce: 2 }).unwrap() {
        Reply::Pong { nonce } => assert_eq!(nonce, 2),
        other => panic!("unexpected {other:?}"),
    }
    let _ = a;
    cluster.shutdown();
}

/// A replayed non-idempotent request (same `WithId` id, as a retry after
/// a lost reply would send) is answered from the executor's dedup cache
/// with the *original* outcome instead of being re-executed.
#[test]
fn replayed_with_id_request_executes_once() {
    use dstampede_clf::{ClfTransport, MemFabric};
    use dstampede_runtime::AddressSpace;

    let fabric = MemFabric::new();
    let space = AddressSpace::start(fabric.endpoint(AsId(0)), true);
    let chan = space.create_channel(Some("once".into()), ChannelAttrs::default());
    let probe = fabric.endpoint(AsId(5));

    let register = Request::WithId {
        req_id: 77,
        req: Box::new(Request::NsRegister {
            name: "unique-name".into(),
            resource: dstampede_core::ResourceId::Channel(chan.id()),
            meta: String::new(),
        }),
    };
    // The same tagged request arrives twice (e.g. the reply to the first
    // attempt was lost and the caller retried).
    for seq in [1u64, 2] {
        let msg = proto::encode_request(&RequestFrame::new(seq, register.clone())).unwrap();
        probe.send(AsId(0), msg.to_bytes()).unwrap();
        let (_, reply_bytes) = probe.recv().unwrap();
        match proto::decode(&reply_bytes).unwrap() {
            proto::AsMessage::Reply(frame) => {
                assert_eq!(frame.seq, seq);
                // Both attempts observe the original success — a naive
                // re-execution would answer the replay with NameExists.
                assert_eq!(frame.reply, Reply::Ok);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // A genuinely new request id executes for real and collides.
    let fresh = Request::WithId {
        req_id: 78,
        req: Box::new(Request::NsRegister {
            name: "unique-name".into(),
            resource: dstampede_core::ResourceId::Channel(chan.id()),
            meta: String::new(),
        }),
    };
    let msg = proto::encode_request(&RequestFrame::new(3, fresh)).unwrap();
    probe.send(AsId(0), msg.to_bytes()).unwrap();
    let (_, reply_bytes) = probe.recv().unwrap();
    match proto::decode(&reply_bytes).unwrap() {
        proto::AsMessage::Reply(frame) => {
            assert_eq!(frame.reply, Reply::from_error(&StmError::NameExists));
        }
        other => panic!("unexpected {other:?}"),
    }
    space.shutdown();
}

/// Duplicated packets on the wire (ARQ retransmissions, chaos plans) do
/// not corrupt non-idempotent operations: the `WithId` dedup layer keeps
/// one registration per logical request even when every second packet is
/// delivered twice.
#[test]
fn duplicated_packets_do_not_double_execute() {
    let plan = FaultPlan::new(99);
    plan.duplicate_every_nth(2);
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .fault_plan(Arc::clone(&plan))
        .rpc_config(fast_rpc())
        .build()
        .unwrap();
    let a = cluster.space(0).unwrap();
    let b = cluster.space(1).unwrap();

    let chan = a.create_channel(None, ChannelAttrs::default());
    for i in 0..8 {
        b.ns_register(
            &format!("name-{i}"),
            dstampede_core::ResourceId::Channel(chan.id()),
            "",
        )
        .unwrap();
    }
    // Exactly one registration per name survived the duplication storm.
    assert_eq!(b.ns_list().unwrap().len(), 8);
    assert!(
        plan.stats().duplicated > 0,
        "plan never duplicated a packet"
    );
    cluster.shutdown();
}

/// An end device that stops talking loses its session lease: the
/// surrogate tears down, the device's in-flight queue ticket requeues for
/// other devices, and the teardown is counted. A device running a
/// keepalive survives the same silence.
#[test]
fn session_lease_reaps_silent_device_and_keepalive_survives() {
    let cluster = ClusterBuilder::new()
        .address_spaces(1)
        .session_lease(Duration::from_millis(150))
        .build()
        .unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let listener = cluster.listener(0).unwrap();

    // A silent device holding a queue ticket.
    let silent = EndDevice::attach_c(addr, "silent").unwrap();
    let qid = silent
        .create_queue(Some("jobs"), QueueAttrs::default())
        .unwrap();
    let q_out = silent.connect_queue_out(qid).unwrap();
    q_out
        .put(
            Timestamp::new(1),
            Item::from_vec(b"job".to_vec()),
            WaitSpec::NonBlocking,
        )
        .unwrap();
    let q_in = silent.connect_queue_in(qid).unwrap();
    let (_, item, _ticket) = q_in.get(WaitSpec::NonBlocking).unwrap();
    assert_eq!(item.payload(), b"job");

    // A chatty-by-proxy device: silent too, but running a keepalive.
    let kept = EndDevice::attach_c(addr, "kept").unwrap();
    let keepalive = kept.start_keepalive(Duration::from_millis(50));

    // Wait past several leases: the silent session is torn down, the
    // keepalive session survives.
    assert!(
        wait_for(Duration::from_secs(5), || {
            listener.stats().lease_teardowns >= 1
        }),
        "silent session was never lease-reaped"
    );
    assert_eq!(kept.ping(9).unwrap(), 9);

    // The reaped session's in-flight ticket went back to the queue for
    // surviving devices.
    let q_in2 = kept.connect_queue_in(qid).unwrap();
    let recovered = wait_for(Duration::from_secs(5), || {
        matches!(
            q_in2.get(WaitSpec::NonBlocking),
            Ok((_, ref item, _)) if item.payload() == b"job"
        )
    });
    assert!(recovered, "ticket from the reaped session was not requeued");

    assert_eq!(listener.stats().lease_teardowns, 1);
    drop(keepalive);
    drop(q_in2);
    kept.detach().unwrap();
    // `silent`'s socket is already dead server-side; just drop it.
    drop((q_in, q_out, silent));
    cluster.shutdown();
}

/// Regression drill for the requeue/wakeup race: with several getters
/// parked on an empty queue, returning an in-flight ticket must wake a
/// parked getter immediately. The fix broadcasts the requeue
/// (`notify_all`); under the old `notify_one` the single wakeup could
/// land on a getter that was concurrently timing out, stranding the
/// requeued item while every other getter slept out its full timeout.
#[test]
fn requeued_ticket_wakes_parked_getter_immediately() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    let q = owner.create_queue(Some("requeue-race".into()), QueueAttrs::default());

    let out = owner.open_queue(q.id()).unwrap().connect_output().unwrap();
    out.put(
        Timestamp::new(1),
        Item::from_vec(b"hot".to_vec()),
        WaitSpec::NonBlocking,
    )
    .unwrap();

    // The holder takes the only item in flight, so both parked getters
    // below see an empty queue.
    let holder = owner.open_queue(q.id()).unwrap().connect_input().unwrap();
    let (_, _, ticket) = holder.get(WaitSpec::NonBlocking).unwrap();

    // A decoy getter whose timeout expires right around the requeue (the
    // racy wakeup target) and a remote backstop with a generous timeout
    // that must not be left sleeping it out.
    let decoy = owner.open_queue(q.id()).unwrap().connect_input().unwrap();
    let backstop = peer.open_queue(q.id()).unwrap().connect_input().unwrap();
    let started = Instant::now();
    let (delivered, elapsed) = std::thread::scope(|s| {
        let a = s.spawn(move || decoy.get(WaitSpec::TimeoutMs(80)).is_ok());
        let b = s.spawn(move || backstop.get(WaitSpec::TimeoutMs(8_000)).is_ok());
        // Let both getters park, with the decoy close to expiry.
        std::thread::sleep(Duration::from_millis(60));
        holder.requeue(ticket).unwrap();
        let hits = [a.join().unwrap(), b.join().unwrap()];
        (hits.iter().filter(|&&hit| hit).count(), started.elapsed())
    });
    // The decoy may win the race and then re-deliver to the backstop when
    // its dropped connection orphan-requeues the unconsumed ticket; either
    // way somebody must be woken, and nobody may be left sleeping out the
    // 8 s timeout with a deliverable item sitting in the queue.
    assert!(delivered >= 1, "requeued item never delivered");
    assert!(
        elapsed < Duration::from_secs(3),
        "requeue left a parked getter sleeping out its timeout ({elapsed:?})"
    );
    cluster.shutdown();
}

/// Failover drill: a three-space cluster places a channel by rendezvous
/// hash and replicates every accepted put to its follower. Killing the
/// primary with the replication window drained must lose nothing — the
/// follower seals its replica, promotes it under a fresh identity, and
/// registers the failover pointer; a consumer on a third space
/// re-resolves through that pointer and drains the full sequence with
/// no gaps and no duplicates. Afterwards GC reclaims the consumed
/// items on the promoted channel, the promotion is counted, and the
/// re-replicated channel's `repl` health subject reads healthy.
#[test]
fn killed_primary_promotes_follower_and_drains_exactly_once() {
    use dstampede_core::ResourceId;
    use dstampede_obs::HealthState;
    use dstampede_runtime::RecorderConfig;

    let plan = FaultPlan::new(1302);
    let cluster = Cluster::builder()
        .address_spaces(3)
        .listeners(false)
        .fault_plan(Arc::clone(&plan))
        .failure_detection(fast_failure())
        .rpc_config(fast_rpc())
        .flight_recorder_off()
        .build()
        .unwrap();
    let creator = cluster.space(0).unwrap();

    // Rendezvous placement is deterministic per (name, creator, nonce):
    // walk names until one lands off the name-server space, so the kill
    // below cannot take the name server with it.
    let mut placed = None;
    for i in 0..16 {
        let id = creator
            .create_channel_placed(Some(format!("feed-{i}")), ChannelAttrs::default())
            .unwrap();
        if id.owner != AsId(0) {
            placed = Some(id);
            break;
        }
    }
    let chan = placed.expect("no name hashed off the name server in 16 tries");
    let primary = chan.owner;
    let primary_space = cluster.space(primary.0).unwrap();
    let follower = primary_space
        .replicator()
        .expect("primary must be replicating")
        .follower_of(ResourceId::Channel(chan))
        .expect("placed channel must have a follower");
    let follower_space = cluster.space(follower.0).unwrap();
    // The third space must find the promoted channel through the name
    // server — it holds no local promotion state.
    let outsider = Arc::clone(
        cluster
            .spaces()
            .iter()
            .find(|s| s.id() != primary && s.id() != follower)
            .unwrap(),
    );

    // Stream through the placed primary from the creator's side.
    let out = creator
        .open_channel(chan)
        .unwrap()
        .connect_output()
        .unwrap();
    for i in 0..40 {
        out.put(
            Timestamp::new(i),
            Item::from_vec(vec![i as u8]),
            WaitSpec::Forever,
        )
        .unwrap();
    }
    // Drain the replication window before the kill: the durability
    // guarantee is "at most the unacked window is lost", and with the
    // window drained that bound is zero items.
    let repl = primary_space.replicator().unwrap();
    assert!(
        wait_for(Duration::from_secs(5), || repl.lag() == 0),
        "replication window never drained ({} puts unacked)",
        repl.lag()
    );

    // kill -9 the primary mid-computation.
    plan.crash(primary);
    assert!(
        wait_for(Duration::from_secs(5), || follower_space
            .is_peer_dead(primary)),
        "follower never declared the primary dead"
    );
    // Death-recovery step 5: the follower seals and promotes the replica.
    let resource = ResourceId::Channel(chan);
    assert!(
        wait_for(Duration::from_secs(5), || follower_space
            .promotion_of(resource)
            .is_some()),
        "follower never promoted the sealed replica"
    );
    let promoted = match follower_space.promotion_of(resource) {
        Some(ResourceId::Channel(new)) => new,
        other => panic!("unexpected promotion target {other:?}"),
    };
    assert_eq!(promoted.owner, follower, "promotion must adopt locally");

    // A consumer on the third space re-resolves through the failover
    // pointer (proxy connects catch Disconnected and ask the name
    // server for `promoted:<resource>`) and drains the full sequence
    // exactly once.
    assert!(
        wait_for(Duration::from_secs(5), || outsider.is_peer_dead(primary)),
        "outsider never declared the primary dead"
    );
    let inp = outsider
        .open_channel(chan)
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();
    let mut seen = Vec::new();
    for i in 0..40 {
        let (ts, item) = inp
            .get(GetSpec::Exact(Timestamp::new(i)), WaitSpec::Forever)
            .unwrap();
        assert_eq!(item.payload(), &[i as u8], "payload mismatch at ts {i}");
        seen.push(ts.value());
        inp.consume_until(ts).unwrap();
    }
    assert_eq!(seen, (0..40).collect::<Vec<_>>(), "gap or duplicate");
    assert!(
        inp.get(GetSpec::Exact(Timestamp::new(40)), WaitSpec::NonBlocking)
            .is_err(),
        "an item past the replicated window was resurrected"
    );

    // The GC horizon advances on the promoted channel: with the only
    // consumer fully caught up, every replayed item is reclaimed.
    let promoted_chan = follower_space.registry().channel(promoted).unwrap();
    assert!(
        wait_for(Duration::from_secs(5), || promoted_chan.live_items() == 0),
        "GC never reclaimed the promoted channel ({} live items)",
        promoted_chan.live_items()
    );

    // The promotion is counted, and once the promoted channel's own
    // re-replication window drains the repl health subject is healthy.
    let snap = follower_space.metrics().snapshot();
    assert!(
        snap.counter_value("repl", "promotions").unwrap_or(0) >= 1,
        "promotion missing from telemetry"
    );
    let frepl = follower_space.replicator().expect("promoted re-replicates");
    assert!(
        wait_for(Duration::from_secs(5), || frepl.lag() == 0),
        "promoted channel's re-replication never drained"
    );
    follower_space.record_tick(&RecorderConfig::default());
    assert_eq!(
        follower_space.health_state_of("repl"),
        Some(HealthState::Healthy)
    );
    cluster.shutdown();
}

/// Health drill: a crashed peer's derived state walks
/// `Healthy → Suspect → Dead` with hysteresis on the way up, a
/// partitioned peer that recovers for a single tick does not flap back
/// to healthy, and the cluster-wide `HealthPull` converges to the dead
/// verdict from any surviving node. Ticks are driven manually (recorder
/// threads off) so every hysteresis step is deterministic under the
/// seeded plan.
#[test]
fn health_drill_walks_healthy_suspect_dead_without_flapping() {
    use dstampede_obs::HealthState;
    use dstampede_runtime::RecorderConfig;

    let plan = FaultPlan::new(23);
    // Slow death declaration (500 ms lease) so the recorder's Suspect
    // window (200 ms lease) is observable before Dead latches.
    let failure = FailureConfig {
        period: Duration::from_millis(25),
        missed: 20,
    };
    let cluster = Cluster::builder()
        .address_spaces(3)
        .listeners(false)
        .fault_plan(Arc::clone(&plan))
        .failure_detection(failure)
        .rpc_config(fast_rpc())
        .flight_recorder_off()
        .build()
        .unwrap();
    let observer = cluster.space(0).unwrap();
    let witness = cluster.space(1).unwrap();
    let rec = RecorderConfig {
        lease: Duration::from_millis(200),
        ..RecorderConfig::default()
    };

    // Ping replies renew the peers' leases, so the first tick publishes
    // Healthy for both.
    observer.call(AsId(1), Request::Ping { nonce: 1 }).unwrap();
    observer.call(AsId(2), Request::Ping { nonce: 2 }).unwrap();
    observer.record_tick(&rec);
    assert_eq!(
        observer.health_state_of("peer:as-2"),
        Some(HealthState::Healthy)
    );

    // Crash as-2 and let its lease go stale past the Suspect threshold.
    plan.crash(AsId(2));
    std::thread::sleep(Duration::from_millis(250));
    observer.record_tick(&rec);
    // Worsening hysteresis: one Suspect tick is not enough...
    assert_eq!(
        observer.health_state_of("peer:as-2"),
        Some(HealthState::Healthy)
    );
    // ...two consecutive ones are.
    observer.record_tick(&rec);
    assert_eq!(
        observer.health_state_of("peer:as-2"),
        Some(HealthState::Suspect)
    );

    // The failure detector eventually declares death; the recorder
    // adopts Dead on first sight (already debounced through leases).
    assert!(
        wait_for(Duration::from_secs(5), || observer.is_peer_dead(AsId(2))),
        "observer never declared the crashed space dead"
    );
    observer.record_tick(&rec);
    assert_eq!(
        observer.health_state_of("peer:as-2"),
        Some(HealthState::Dead)
    );

    // Flapping drill against a live peer: partition long enough to go
    // Suspect...
    plan.partition(AsId(0), AsId(1));
    std::thread::sleep(Duration::from_millis(250));
    observer.record_tick(&rec);
    observer.record_tick(&rec);
    assert_eq!(
        observer.health_state_of("peer:as-1"),
        Some(HealthState::Suspect)
    );
    // ...then a one-tick recovery must NOT flap the published state...
    plan.heal(AsId(0), AsId(1));
    observer.call(AsId(1), Request::Ping { nonce: 3 }).unwrap();
    observer.record_tick(&rec);
    assert_eq!(
        observer.health_state_of("peer:as-1"),
        Some(HealthState::Suspect)
    );
    plan.partition(AsId(0), AsId(1));
    std::thread::sleep(Duration::from_millis(250));
    observer.record_tick(&rec);
    assert_eq!(
        observer.health_state_of("peer:as-1"),
        Some(HealthState::Suspect)
    );
    // ...while a full recovery streak does bring it back.
    plan.heal(AsId(0), AsId(1));
    observer.call(AsId(1), Request::Ping { nonce: 4 }).unwrap();
    for _ in 0..4 {
        observer.record_tick(&rec);
    }
    assert_eq!(
        observer.health_state_of("peer:as-1"),
        Some(HealthState::Healthy)
    );

    // Cluster-wide convergence: both survivors tick, and the merged
    // HealthPull view from either of them carries the dead verdict from
    // every surviving source.
    assert!(
        wait_for(Duration::from_secs(5), || witness.is_peer_dead(AsId(2))),
        "witness never declared the crashed space dead"
    );
    witness.record_tick(&rec);
    for space in [&observer, &witness] {
        let report = space.health_cluster_report();
        assert_eq!(report.worst(), HealthState::Dead);
        for src in ["as-0", "as-1"] {
            let entry = report
                .entry(src, "peer:as-2")
                .unwrap_or_else(|| panic!("no {src} verdict on peer:as-2"));
            assert_eq!(entry.state, HealthState::Dead, "{src}: {}", entry.reason);
        }
    }
    cluster.shutdown();
}
