//! True multi-process test: the `dstamped` daemon runs as a separate OS
//! process, and this test process attaches to it over real TCP — end
//! devices and cluster genuinely in different address spaces of the
//! operating system, as in the paper's deployment.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Starts the daemon, returning the child and its first listener address.
fn start_daemon(extra_args: &[&str]) -> (Child, std::net::SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dstamped"));
    cmd.args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn dstamped");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    for _ in 0..10 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if let Some(rest) = line.trim().strip_prefix("listener as0: ") {
            addr = rest.parse().ok();
            break;
        }
    }
    let addr = addr.expect("daemon printed listener address");
    (child, addr)
}

fn stop_daemon(mut child: Child) {
    // Closing stdin asks the daemon to shut down cleanly.
    drop(child.stdin.take());
    for _ in 0..100 {
        if child.try_wait().ok().flatten().is_some() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn client_process_attaches_to_daemon_process() {
    use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
    use dstampede_wire::WaitSpec;

    let (child, addr) = start_daemon(&["--address-spaces", "2"]);

    let device = dstampede_client::EndDevice::attach_c(addr, "cross-process").unwrap();
    assert_eq!(device.ping(7).unwrap(), 7);
    let chan = device
        .create_channel(Some("xproc"), ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    for t in 0..10 {
        out.put(
            Timestamp::new(t),
            Item::from_vec(vec![t as u8; 1000]),
            WaitSpec::Forever,
        )
        .unwrap();
    }
    for t in 0..10 {
        let (got, item) = inp
            .get(GetSpec::Exact(Timestamp::new(t)), WaitSpec::Forever)
            .unwrap();
        assert_eq!(got, Timestamp::new(t));
        assert!(item.payload().iter().all(|&b| b == t as u8));
        inp.consume_until(got).unwrap();
    }
    drop((out, inp));
    device.detach().unwrap();
    stop_daemon(child);
}

#[test]
fn two_client_processes_rendezvous_through_daemon() {
    use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, ResourceId, Timestamp};
    use dstampede_wire::WaitSpec;

    let (child, addr) = start_daemon(&["--address-spaces", "2", "--udp"]);

    // "Process" A: producer registering its feed by name. (Each EndDevice
    // session is its own TCP connection; the daemon is a real separate
    // process either way.)
    let producer = dstampede_client::EndDevice::attach_c(addr, "proc-a").unwrap();
    let chan = producer
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    producer
        .ns_register("xproc/feed", ResourceId::Channel(chan), "")
        .unwrap();
    let out = producer.connect_channel_out(chan).unwrap();
    out.put(
        Timestamp::new(0),
        Item::from_vec(b"across processes".to_vec()),
        WaitSpec::Forever,
    )
    .unwrap();

    // "Process" B: discovers the feed by name.
    let consumer = dstampede_client::EndDevice::attach_java(addr, "proc-b").unwrap();
    let (res, _) = consumer.ns_lookup("xproc/feed", WaitSpec::Forever).unwrap();
    let ResourceId::Channel(id) = res else {
        panic!("not a channel")
    };
    let inp = consumer
        .connect_channel_in(id, Interest::FromEarliest)
        .unwrap();
    let (_, item) = inp
        .get(GetSpec::Exact(Timestamp::new(0)), WaitSpec::Forever)
        .unwrap();
    assert_eq!(item.payload(), b"across processes");

    stop_daemon(child);
}

#[test]
fn daemon_help_and_bad_args() {
    let out = Command::new(env!("CARGO_BIN_EXE_dstamped"))
        .arg("--help")
        .output()
        .expect("run dstamped --help");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("address-spaces"));

    let out = Command::new(env!("CARGO_BIN_EXE_dstamped"))
        .arg("--bogus")
        .output()
        .expect("run dstamped --bogus");
    assert!(!out.status.success());
}

// Keep the Write import used even if the compiler changes stdin handling.
#[allow(dead_code)]
fn _uses_write(w: &mut dyn Write) {
    let _ = w.flush();
}
