//! Property tests of rendezvous (highest-random-weight) placement: the
//! no-coordination guarantees the failover design leans on must hold for
//! *arbitrary* membership sets and key streams, not just the hand-picked
//! ones in the unit tests.
//!
//! * **Determinism / order independence** — every node computes the same
//!   primary and follower from its own (possibly re-ordered) member list.
//! * **Minimal disruption** — a departure moves only the departed
//!   member's keys; a join steals keys only for the joiner. Anything
//!   stronger than that would force a coordinated rebalance on churn.
//! * **Balance** — keys spread within 2× of ideal across members, so no
//!   node silently becomes the cluster's hot spot.

use std::collections::BTreeSet;

use proptest::prelude::*;

use dstampede_core::AsId;
use dstampede_runtime::placement::{creation_key, place, place_pair, rendezvous_score};

/// A strategy for a set of 2..=12 distinct member ids drawn from a
/// sparse id space (members need not be contiguous after churn), in
/// ascending order.
fn members() -> impl Strategy<Value = Vec<AsId>> {
    proptest::collection::vec(0u16..64, 2..24).prop_map(|raw| {
        let mut ids: BTreeSet<u16> = raw.into_iter().collect();
        // Deduplication can collapse below two members; placement over
        // fewer than two is covered by the unit tests.
        ids.insert(62);
        ids.insert(63);
        ids.into_iter().take(12).map(AsId).collect()
    })
}

proptest! {
    /// Placement is a pure function of (key, member set): shuffling or
    /// duplicating the member list never changes the winner or the
    /// follower. This is what lets every surviving node independently
    /// agree on who held a dead primary's replica.
    #[test]
    fn placement_is_order_and_duplication_independent(
        m in members(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
        seed in any::<u64>(),
    ) {
        let mut shuffled = m.clone();
        // A cheap deterministic shuffle: rotate by the seed and reverse.
        let len = shuffled.len();
        shuffled.rotate_left((seed as usize) % len);
        shuffled.reverse();
        let mut doubled = m.clone();
        doubled.extend_from_slice(&shuffled);
        for &key in &keys {
            prop_assert_eq!(place_pair(key, &m), place_pair(key, &shuffled));
            prop_assert_eq!(place(key, &m), place(key, &doubled));
        }
    }

    /// A departure moves only the departed member's keys; every other
    /// key keeps its argmax, so recovery never shuffles healthy
    /// resources. The follower of a surviving primary may change (the
    /// dead member can be a runner-up), but the primary itself must not.
    #[test]
    fn departure_moves_only_the_departed_members_keys(
        m in members(),
        pick in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..256),
    ) {
        let dead = m[(pick as usize) % m.len()];
        let after: Vec<AsId> = m.iter().copied().filter(|x| *x != dead).collect();
        for &key in &keys {
            let was = place(key, &m).unwrap();
            let now = place(key, &after).unwrap();
            if was == dead {
                prop_assert!(now != dead, "key {} stayed on the dead member", key);
            } else {
                prop_assert_eq!(was, now, "key {} moved without its host dying", key);
            }
        }
    }

    /// The mirror image for joins: a new member only *gains* keys —
    /// every key that does not land on the joiner stays exactly where it
    /// was, so growing the cluster is as disruption-free as shrinking it.
    #[test]
    fn join_steals_keys_only_for_the_joiner(
        m in members(),
        joiner in 64u16..128,
        keys in proptest::collection::vec(any::<u64>(), 1..256),
    ) {
        let joiner = AsId(joiner);
        let mut grown = m.clone();
        grown.push(joiner);
        for &key in &keys {
            let was = place(key, &m).unwrap();
            let now = place(key, &grown).unwrap();
            if now != joiner {
                prop_assert_eq!(was, now, "key {} moved to a pre-existing member", key);
            }
        }
    }

    /// The primary/follower pair is always two distinct live members,
    /// and the follower is exactly where the primary would fail over to:
    /// removing the primary promotes the follower to the argmax.
    #[test]
    fn follower_is_the_failover_winner(
        m in members(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        for &key in &keys {
            let (p, f) = place_pair(key, &m);
            let (p, f) = (p.unwrap(), f.unwrap());
            prop_assert!(p != f, "key {} replicates to its own primary", key);
            prop_assert!(m.contains(&p) && m.contains(&f));
            let without_primary: Vec<AsId> =
                m.iter().copied().filter(|x| *x != p).collect();
            prop_assert_eq!(place(key, &without_primary), Some(f));
        }
    }

    /// Sequential creation keys spread within 2× of the ideal share on
    /// every member — rendezvous scores are uniform enough that no node
    /// becomes the hot spot. Uses the real creation-key derivations
    /// (named FNV-1a and anonymous (creator, nonce)) rather than raw
    /// sequential integers, so the test covers the keys the runtime
    /// actually places.
    #[test]
    fn balance_stays_within_2x_of_ideal(
        m in members(),
        named in any::<bool>(),
        prefix in "[a-z]{1,8}",
    ) {
        let keys = 512 * m.len() as u64;
        let mut counts = vec![0usize; m.len()];
        for nonce in 0..keys {
            let key = if named {
                creation_key(Some(&format!("{prefix}-{nonce}")), AsId(0), nonce)
            } else {
                creation_key(None, AsId(0), nonce)
            };
            let winner = place(key, &m).unwrap();
            counts[m.iter().position(|x| *x == winner).unwrap()] += 1;
        }
        let ideal = keys as usize / m.len();
        for (i, c) in counts.iter().enumerate() {
            prop_assert!(
                *c < ideal * 2,
                "member {:?} hosts {} of {} (ideal {})", m[i], c, keys, ideal
            );
        }
    }

    /// Scores are a pure mix of (key, member): equal inputs collide,
    /// different members decorrelate. Guards the fixed splitmix64
    /// derivation against accidental seeding (a per-process seed would
    /// silently break cross-node agreement).
    #[test]
    fn scores_are_stable_and_member_sensitive(key in any::<u64>(), a in 0u16..512) {
        prop_assert_eq!(rendezvous_score(key, AsId(a)), rendezvous_score(key, AsId(a)));
        prop_assert!(
            rendezvous_score(key, AsId(a)) != rendezvous_score(key, AsId(a.wrapping_add(1))),
            "adjacent members collide on key {}", key
        );
    }
}
