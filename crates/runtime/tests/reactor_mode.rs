//! End-to-end tests for the event-driven runtime core: clusters built
//! with `.reactor(...)` serve real TCP end devices from the cooperative
//! executor — parked waiters instead of blocked surrogate threads, the
//! timer wheel instead of per-service timer threads — while the client
//! API stays byte-identical to the thread-per-session path.

use std::time::Duration;

use dstampede_client::EndDevice;
use dstampede_core::{ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, StmError, Timestamp};
use dstampede_runtime::reactor::ReactorConfig;
use dstampede_runtime::Cluster;
use dstampede_wire::WaitSpec;

fn ts(v: i64) -> Timestamp {
    Timestamp::new(v)
}

fn reactor_cluster(spaces: u16) -> Cluster {
    Cluster::builder()
        .address_spaces(spaces)
        .reactor(ReactorConfig::default())
        .build()
        .unwrap()
}

/// Counts this process's resident threads via /proc.
fn resident_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

#[test]
fn attach_roundtrip_and_detach() {
    let cluster = reactor_cluster(2);
    assert!(cluster.reactor().is_some());
    let addr = cluster.listener_addr(0).unwrap();

    let device = EndDevice::attach_c(addr, "reactor-dev").unwrap();
    assert_eq!(device.ping(41).unwrap(), 41);

    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    out.put(ts(1), Item::from_vec(vec![7u8; 64]), WaitSpec::Forever)
        .unwrap();
    let (t, item) = inp.get(GetSpec::Exact(ts(1)), WaitSpec::Forever).unwrap();
    assert_eq!(t, ts(1));
    assert_eq!(item.payload().len(), 64);

    device.detach().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        let stats = cluster.listener(0).unwrap().stats();
        if stats.clean_detaches == 1 && stats.active_surrogates == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "detach bookkeeping never settled: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}

/// A blocking channel `get` parks its surrogate task (no thread pinned)
/// and the matching `put` — arriving on a *different* session — wakes it.
#[test]
fn parked_get_woken_by_put_across_sessions() {
    let cluster = reactor_cluster(1);
    let addr = cluster.listener_addr(0).unwrap();

    let consumer = EndDevice::attach_c(addr, "consumer").unwrap();
    let chan = consumer
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let inp = consumer
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();

    let getter = std::thread::spawn(move || inp.get(GetSpec::Exact(ts(5)), WaitSpec::Forever));

    // Let the get arrive and park before the put lands.
    std::thread::sleep(Duration::from_millis(150));
    let producer = EndDevice::attach_c(addr, "producer").unwrap();
    let out = producer.connect_channel_out(chan).unwrap();
    out.put(ts(5), Item::from_vec(b"wake".to_vec()), WaitSpec::Forever)
        .unwrap();

    let (t, item) = getter.join().unwrap().unwrap();
    assert_eq!(t, ts(5));
    assert_eq!(item.payload(), b"wake");
    cluster.shutdown();
}

/// Same park/wake contract for queue dequeues.
#[test]
fn parked_dequeue_woken_by_enqueue() {
    let cluster = reactor_cluster(1);
    let addr = cluster.listener_addr(0).unwrap();

    let device = EndDevice::attach_c(addr, "queue-dev").unwrap();
    let queue = device.create_queue(None, QueueAttrs::default()).unwrap();
    let q_in = device.connect_queue_in(queue).unwrap();

    let getter = std::thread::spawn(move || {
        let got = q_in.get(WaitSpec::Forever)?;
        q_in.consume(got.2)?;
        Ok::<_, StmError>((got.0, got.1))
    });

    std::thread::sleep(Duration::from_millis(150));
    let feeder = EndDevice::attach_c(addr, "feeder").unwrap();
    let q_out = feeder.connect_queue_out(queue).unwrap();
    q_out
        .put(ts(9), Item::from_vec(b"ticket".to_vec()), WaitSpec::Forever)
        .unwrap();

    let (t, item) = getter.join().unwrap().unwrap();
    assert_eq!(t, ts(9));
    assert_eq!(item.payload(), b"ticket");
    cluster.shutdown();
}

/// A bounded wait on an empty container rides the timer wheel and comes
/// back as `Timeout` — no surrogate thread slept for it.
#[test]
fn timed_wait_expires_via_timer_wheel() {
    let cluster = reactor_cluster(1);
    let addr = cluster.listener_addr(0).unwrap();

    let device = EndDevice::attach_c(addr, "waiter").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();

    let started = std::time::Instant::now();
    let err = inp
        .get(GetSpec::Exact(ts(1)), WaitSpec::TimeoutMs(120))
        .unwrap_err();
    assert_eq!(err, StmError::Timeout);
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(100),
        "timed out early: {waited:?}"
    );
    // Non-blocking probes still answer immediately.
    assert_eq!(
        inp.get(GetSpec::Exact(ts(1)), WaitSpec::NonBlocking)
            .unwrap_err(),
        StmError::Absent
    );
    cluster.shutdown();
}

/// Past the `max_sessions` cap the listener still answers — with a clean
/// `Full`-coded reject frame, not a hung or dropped connection.
#[test]
fn max_sessions_cap_rejects_cleanly() {
    let cluster = Cluster::builder()
        .address_spaces(1)
        .reactor(ReactorConfig::default())
        .max_sessions(1)
        .build()
        .unwrap();
    let addr = cluster.listener_addr(0).unwrap();

    let holder = EndDevice::attach_c(addr, "holder").unwrap();
    let err = EndDevice::attach_c(addr, "overflow").unwrap_err();
    assert_eq!(err, StmError::Full);
    let stats = cluster.listener(0).unwrap().stats();
    assert_eq!(stats.sessions_rejected, 1);

    // Capacity frees when the holder detaches.
    holder.detach().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let replacement = loop {
        match EndDevice::attach_c(addr, "replacement") {
            Ok(d) => break d,
            Err(StmError::Full) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected attach error {e:?}"),
        }
    };
    assert_eq!(replacement.ping(1).unwrap(), 1);
    cluster.shutdown();
}

/// The legacy thread-per-session path enforces the same cap with the
/// same reject frame.
#[test]
fn max_sessions_cap_rejects_on_legacy_path_too() {
    let cluster = Cluster::builder()
        .address_spaces(1)
        .max_sessions(1)
        .build()
        .unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let _holder = EndDevice::attach_c(addr, "holder").unwrap();
    assert_eq!(
        EndDevice::attach_c(addr, "overflow").unwrap_err(),
        StmError::Full
    );
    cluster.shutdown();
}

/// A silent client is torn down by the reaper once its lease expires —
/// but only while it is *between requests*; a session parked in a long
/// blocking wait is not a silent client.
#[test]
fn lease_expiry_reaps_silent_sessions_only() {
    let cluster = Cluster::builder()
        .address_spaces(1)
        .reactor(ReactorConfig::default())
        .session_lease(Duration::from_millis(200))
        .build()
        .unwrap();
    let addr = cluster.listener_addr(0).unwrap();

    // A session parked in a blocking get outlives the lease.
    let parked = EndDevice::attach_c(addr, "parked").unwrap();
    let chan = parked
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let inp = parked
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    let getter = std::thread::spawn(move || inp.get(GetSpec::Exact(ts(3)), WaitSpec::Forever));

    // A fully silent session gets reaped.
    let _silent = EndDevice::attach_c(addr, "silent").unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cluster.listener(0).unwrap().stats().lease_teardowns == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "silent session never reaped"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The parked session is still healthy: the put completes its get.
    let producer = EndDevice::attach_c(addr, "producer").unwrap();
    let out = producer.connect_channel_out(chan).unwrap();
    out.put(ts(3), Item::from_vec(b"late".to_vec()), WaitSpec::Forever)
        .unwrap();
    let (t, _) = getter.join().unwrap().unwrap();
    assert_eq!(t, ts(3));
    assert_eq!(cluster.listener(0).unwrap().stats().lease_teardowns, 1);
    cluster.shutdown();
}

/// Resident threads track the worker pool, not the session count: tens
/// of concurrent sessions (some parked in blocking waits) add zero
/// threads on the server side.
#[test]
fn thread_count_independent_of_session_count() {
    let cluster = reactor_cluster(1);
    let addr = cluster.listener_addr(0).unwrap();

    // Settle, then baseline after one session exists (client-side
    // threads for the harness don't count against the runtime).
    let seed = EndDevice::attach_c(addr, "seed").unwrap();
    let chan = seed.create_channel(None, ChannelAttrs::default()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let baseline = resident_threads();

    let mut devices = Vec::new();
    let mut getters = Vec::new();
    for i in 0..24 {
        let d = EndDevice::attach_c(addr, &format!("dev-{i}")).unwrap();
        if i % 2 == 0 {
            // Half the sessions park in a blocking wait.
            let inp = d.connect_channel_in(chan, Interest::FromEarliest).unwrap();
            getters.push(std::thread::spawn(move || {
                inp.get(GetSpec::Exact(ts(100)), WaitSpec::Forever)
            }));
        }
        devices.push(d);
    }
    std::thread::sleep(Duration::from_millis(200));
    let loaded = resident_threads();
    // 24 sessions, 12 of them parked server-side. The client test
    // threads above account for 12 of the delta; the runtime itself may
    // add at most a few offload helpers, never O(sessions).
    let server_side = loaded
        .saturating_sub(baseline)
        .saturating_sub(getters.len());
    assert!(
        server_side <= 6,
        "server grew {server_side} threads for 24 sessions (baseline {baseline}, loaded {loaded})"
    );

    let out = seed.connect_channel_out(chan).unwrap();
    out.put(ts(100), Item::from_vec(vec![1]), WaitSpec::Forever)
        .unwrap();
    for g in getters {
        g.join().unwrap().unwrap();
    }
    cluster.shutdown();
}

/// Reactor-mode clusters keep the full distributed surface: remote
/// containers, the name server, and cluster stats all answer over TCP.
#[test]
fn distributed_surface_over_reactor() {
    let cluster = reactor_cluster(3);
    let addr1 = cluster.listener_addr(1).unwrap();

    let device = EndDevice::attach_c(addr1, "remote-dev").unwrap();
    // The channel lands where placement puts it; access is transparent.
    let chan = device
        .create_channel(Some("sensor.video"), ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    out.put(ts(2), Item::from_vec(vec![9; 16]), WaitSpec::Forever)
        .unwrap();

    // Lookup parks on the name server (a blocking wait shimmed through
    // AS1's surrogate) until the registration lands from a second session.
    let registrar = EndDevice::attach_c(cluster.listener_addr(0).unwrap(), "registrar").unwrap();
    let looker = {
        let device = device.clone();
        std::thread::spawn(move || device.ns_lookup("sensor.video", WaitSpec::Forever))
    };
    std::thread::sleep(Duration::from_millis(100));
    registrar
        .ns_register(
            "sensor.video",
            dstampede_core::ResourceId::Channel(chan),
            "",
        )
        .unwrap();
    let (resource, _meta) = looker.join().unwrap().unwrap();
    assert_eq!(resource, dstampede_core::ResourceId::Channel(chan));

    let snapshot = device.stats(true).unwrap();
    assert!(!snapshot.counters.is_empty());
    device.detach().unwrap();
    cluster.shutdown();
}
