//! Runtime API surface tests: location transparency, typed access,
//! thread registration, resource resolution, and filtered remote
//! connections.

use std::time::Duration;

use dstampede_core::{
    ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, ResourceId, StmError, TagFilter, Timestamp,
    VirtualTime,
};
use dstampede_runtime::Cluster;
use dstampede_wire::WaitSpec;

fn ts(v: i64) -> Timestamp {
    Timestamp::new(v)
}

#[test]
fn refs_report_locality() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let a0 = cluster.space(0).unwrap();
    let a1 = cluster.space(1).unwrap();
    let chan = a0.create_channel(None, ChannelAttrs::default());
    let queue = a0.create_queue(None, QueueAttrs::default());

    assert!(a0.open_channel(chan.id()).unwrap().is_local());
    assert!(!a1.open_channel(chan.id()).unwrap().is_local());
    assert!(a0.open_queue(queue.id()).unwrap().is_local());
    assert!(!a1.open_queue(queue.id()).unwrap().is_local());

    let (c, q) = a0.open_resource(ResourceId::Channel(chan.id())).unwrap();
    assert!(c.is_some() && q.is_none());
    let (c, q) = a1.open_resource(ResourceId::Queue(queue.id())).unwrap();
    assert!(c.is_none() && q.is_some());
    cluster.shutdown();
}

#[test]
fn typed_access_through_proxies() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default());

    let out = peer
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();
    let inp = owner
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();

    out.put_typed(ts(1), &"typed frame".to_owned(), WaitSpec::Forever)
        .unwrap();
    let (t, s): (Timestamp, String) = inp
        .get_typed(GetSpec::Exact(ts(1)), WaitSpec::Forever)
        .unwrap();
    assert_eq!(t, ts(1));
    assert_eq!(s, "typed frame");
    cluster.shutdown();
}

#[test]
fn spawn_thread_registers_and_feeds_gc_floor() {
    let cluster = Cluster::builder()
        .address_spaces(1)
        .listeners(false)
        .build()
        .unwrap();
    let space = cluster.space(0).unwrap();
    assert!(space.threads().is_empty());

    let handle = space.spawn_thread("worker", |space, thread| {
        assert_eq!(thread.name(), "worker");
        thread.set_vt(VirtualTime::at(Timestamp::new(17)));
        // Visible to the registry while running.
        assert_eq!(space.threads().len(), 1);
        space.threads().min_vt()
    });
    let min_vt = handle.join().unwrap();
    assert_eq!(min_vt, VirtualTime::at(Timestamp::new(17)));
    // Unregistered after exit.
    assert!(space.threads().is_empty());
    cluster.shutdown();
}

#[test]
fn filtered_remote_connection() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let out = owner
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();
    for v in 0..6u32 {
        out.put(
            ts(i64::from(v)),
            Item::from_vec(vec![v as u8]).with_tag(v),
            WaitSpec::Forever,
        )
        .unwrap();
    }
    // Remote filtered connection: only tags 2 and 4 are visible.
    let inp = peer
        .open_channel(chan.id())
        .unwrap()
        .connect_input_filtered(Interest::FromEarliest, TagFilter::Only(vec![2, 4]))
        .unwrap();
    let mut seen = Vec::new();
    let mut last = Timestamp::MIN;
    loop {
        match inp.get(GetSpec::After(last), WaitSpec::NonBlocking) {
            Ok((t, item)) => {
                seen.push(item.tag());
                last = t;
            }
            Err(StmError::Absent) => break,
            Err(e) => panic!("{e}"),
        }
    }
    assert_eq!(seen, vec![2, 4]);
    inp.consume_until(ts(5)).unwrap();
    // Filtered-out items were never pinned: everything reclaims.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while chan.live_items() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(chan.live_items(), 0);
    cluster.shutdown();
}

#[test]
fn vt_promise_over_rpc_drives_transparent_gc() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    let chan = owner.create_channel(
        None,
        ChannelAttrs::builder()
            .gc(dstampede_core::GcPolicy::Transparent)
            .build(),
    );
    let out = owner
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();
    let inp = peer
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();
    for t in 0..10 {
        out.put(ts(t), Item::from_vec(vec![1]), WaitSpec::Forever)
            .unwrap();
    }
    inp.set_vt(VirtualTime::at(ts(6))).unwrap();
    assert_eq!(chan.live_items(), 4); // ts 6..9 remain
    assert_eq!(chan.gc_floor(), ts(5));
    cluster.shutdown();
}

#[test]
fn remote_disconnect_releases_claims_via_drop() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let out = owner
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();

    let local = owner
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();
    let remote = peer
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();

    out.put(ts(1), Item::from_vec(vec![1]), WaitSpec::Forever)
        .unwrap();
    local.consume_until(ts(1)).unwrap();
    assert_eq!(chan.live_items(), 1); // remote still claims it

    drop(remote); // fire-and-forget Disconnect over CLF
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while chan.live_items() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(chan.live_items(), 0);
    cluster.shutdown();
}
