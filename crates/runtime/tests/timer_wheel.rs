//! Timer-wheel semantics: property tests over random schedules plus a
//! virtual-clock determinism suite (same style as the CLF window model
//! tests — the wheel never reads a real clock, so every sequence of
//! operations is exactly reproducible).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Wake, Waker};

use proptest::prelude::*;

use dstampede_runtime::reactor::TimerWheel;

/// A waker that counts its wakes, for telling fired entries apart.
struct CountingWake(AtomicUsize);

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn counting() -> (Arc<CountingWake>, Waker) {
    let c = Arc::new(CountingWake(AtomicUsize::new(0)));
    (Arc::clone(&c), Waker::from(Arc::clone(&c)))
}

fn noop() -> Waker {
    Waker::noop().clone()
}

proptest! {
    /// Every scheduled deadline fires exactly once, never before its
    /// deadline, and each `advance` reports its fires in non-decreasing
    /// deadline order.
    #[test]
    fn fires_every_deadline_in_monotone_order(
        deadlines in proptest::collection::vec(1u64..16_384, 1..64),
        steps in proptest::collection::vec(1u64..2_048, 1..32),
    ) {
        let mut wheel = TimerWheel::new(0);
        for &d in &deadlines {
            wheel.schedule(d, noop());
        }
        prop_assert_eq!(wheel.len(), deadlines.len());

        let mut fired_all: Vec<u64> = Vec::new();
        let mut prev_to = 0u64;
        let mut to = 0u64;
        for &s in &steps {
            to += s;
            let fired = wheel.advance(to);
            for w in fired.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "unsorted fires within one advance");
            }
            for (d, _) in &fired {
                prop_assert!(*d > prev_to, "fired in a later advance than its deadline");
                prop_assert!(*d <= to, "fired before its deadline");
                fired_all.push(*d);
            }
            prev_to = to;
        }
        // Drain the stragglers.
        for (d, _) in wheel.advance(20_000) {
            prop_assert!(d > prev_to && d <= 20_000);
            fired_all.push(d);
        }
        prop_assert!(wheel.is_empty());

        let mut expect = deadlines.clone();
        expect.sort_unstable();
        fired_all.sort_unstable();
        prop_assert_eq!(fired_all, expect, "fired set must equal scheduled set");
    }

    /// An entry cancelled before its deadline never fires, regardless of
    /// how the cancellation interleaves with `advance` calls; the
    /// survivors all fire exactly once.
    #[test]
    fn cancel_before_fire_never_fires(
        entries in proptest::collection::vec((1u64..8_192, any::<bool>()), 1..48),
        split in 0u64..8_192,
    ) {
        let mut wheel = TimerWheel::new(0);
        let mut scheduled = Vec::new();
        for &(d, cancel) in &entries {
            let (count, waker) = counting();
            let id = wheel.schedule(d, waker);
            scheduled.push((d, cancel, id, count));
        }
        // Advance partway, then cancel — but only entries that have not
        // fired yet, so the "before fire" premise holds.
        for (_, waker) in wheel.advance(split.min(8_192)) {
            waker.wake();
        }
        for (d, cancel, id, _) in &scheduled {
            if *cancel && *d > split {
                prop_assert!(wheel.cancel(*id), "live entry must cancel");
                prop_assert!(!wheel.cancel(*id), "second cancel reports dead");
            }
        }
        for (_, waker) in wheel.advance(10_000) {
            waker.wake();
        }
        prop_assert!(wheel.is_empty());
        for (d, cancel, _, count) in &scheduled {
            let fired = count.0.load(Ordering::SeqCst);
            if *cancel && *d > split {
                prop_assert_eq!(fired, 0, "cancelled entry fired");
            } else {
                prop_assert_eq!(fired, 1, "surviving entry must fire once");
            }
        }
    }

    /// Coarse-bucket error bound: an upper-level entry cascades down in
    /// time and fires within the `advance` call that crosses its
    /// deadline — never in an earlier call, and never left behind. The
    /// firing error is therefore bounded by the caller's advance
    /// granularity, not by the bucket width of the level it sat in.
    #[test]
    fn upper_level_firing_error_is_bounded_by_advance_step(
        deadline in 65u64..300_000,
        step in 1u64..50_000,
    ) {
        let mut wheel = TimerWheel::new(0);
        wheel.schedule(deadline, noop());
        let mut to = 0u64;
        while to < deadline + step {
            to += step;
            let fired = wheel.advance(to);
            if to < deadline {
                prop_assert!(fired.is_empty(), "fired {} early at {}", deadline, to);
            } else {
                prop_assert_eq!(fired.len(), 1, "must fire in the crossing advance");
                prop_assert_eq!(fired[0].0, deadline);
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// `next_deadline_hint` never overshoots the true next deadline: the
    /// poller sleeping until the hint can never sleep through a fire.
    #[test]
    fn hint_never_overshoots_next_deadline(
        deadlines in proptest::collection::vec(1u64..100_000, 1..32),
        start in 0u64..1_000,
    ) {
        let mut wheel = TimerWheel::new(start);
        let mut earliest = u64::MAX;
        for &d in &deadlines {
            let d = d + start;
            wheel.schedule(d, noop());
            earliest = earliest.min(d.max(start + 1));
        }
        let hint = wheel.next_deadline_hint();
        prop_assert!(hint.is_some());
        prop_assert!(hint.unwrap() <= earliest, "hint {hint:?} past {earliest}");
    }
}

#[test]
fn empty_wheel_has_no_hint_and_jumps() {
    let mut wheel = TimerWheel::new(0);
    assert!(wheel.is_empty());
    assert_eq!(wheel.next_deadline_hint(), None);
    assert!(wheel.advance(1 << 40).is_empty());
    assert_eq!(wheel.now(), 1 << 40);
}

#[test]
fn past_deadline_clamps_to_next_tick() {
    let mut wheel = TimerWheel::new(100);
    // A deadline at or before `now` must not fire inside `schedule`
    // (register-then-check ordering) — it fires on the next tick.
    wheel.schedule(5, noop());
    wheel.schedule(100, noop());
    assert_eq!(wheel.len(), 2);
    let fired = wheel.advance(101);
    assert_eq!(fired.len(), 2);
    assert!(fired.iter().all(|(d, _)| *d == 101));
    assert!(wheel.is_empty());
}

#[test]
fn near_hint_is_exact_far_hint_is_slot_granular() {
    let mut wheel = TimerWheel::new(0);
    wheel.schedule(7, noop());
    assert_eq!(wheel.next_deadline_hint(), Some(7));
    let mut wheel = TimerWheel::new(0);
    wheel.schedule(500, noop());
    // Beyond the level-0 window the hint is a recheck bound, one slot
    // span out — never past the deadline.
    assert_eq!(wheel.next_deadline_hint(), Some(64));
}

#[test]
fn same_slot_later_lap_waits_its_lap() {
    let mut wheel = TimerWheel::new(0);
    // Ticks 64 and 128 share level-0 slot 0; the lap-2 entry must be
    // re-filed, not fired, when the slot turns up at tick 64.
    wheel.schedule(64, noop());
    wheel.schedule(128, noop());
    let fired = wheel.advance(64);
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].0, 64);
    assert!(wheel.advance(127).is_empty());
    let fired = wheel.advance(128);
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].0, 128);
}

#[test]
fn overflow_beyond_horizon_fires() {
    let span3 = 64u64 * 64 * 64 * 64;
    let deadline = span3 + 77;
    let mut wheel = TimerWheel::new(0);
    wheel.schedule(deadline, noop());
    assert_eq!(wheel.len(), 1);
    assert!(wheel.advance(span3).is_empty());
    let fired = wheel.advance(deadline);
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].0, deadline);
    assert!(wheel.is_empty());
}

/// The same operation sequence on two wheels yields bit-identical firing
/// histories — the virtual-clock determinism the doc promises.
#[test]
fn virtual_clock_determinism() {
    fn run(ops: &[(u8, u64)]) -> Vec<(usize, Vec<u64>)> {
        let mut wheel = TimerWheel::new(0);
        let mut ids = Vec::new();
        let mut history = Vec::new();
        let mut clock = 0u64;
        for (i, &(kind, arg)) in ops.iter().enumerate() {
            match kind % 3 {
                0 => ids.push(wheel.schedule(clock + 1 + arg % 5_000, noop())),
                1 => {
                    if !ids.is_empty() {
                        let victim = ids[(arg as usize) % ids.len()];
                        wheel.cancel(victim);
                    }
                }
                _ => {
                    clock += arg % 700;
                    let fired: Vec<u64> =
                        wheel.advance(clock).into_iter().map(|(d, _)| d).collect();
                    history.push((i, fired));
                }
            }
        }
        history
    }

    // A fixed pseudo-random op tape (deterministic LCG, no RNG crate).
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let ops: Vec<(u8, u64)> = (0..400)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) as u8, state >> 17)
        })
        .collect();
    assert_eq!(
        run(&ops),
        run(&ops),
        "identical tapes must replay identically"
    );
}
