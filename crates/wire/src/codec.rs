//! The [`Codec`] abstraction: pluggable marshalling for RPC frames.
//!
//! A session negotiates its codec at connect time (one identification byte)
//! and then every frame on that session uses it. Two codecs exist, chosen
//! to reproduce the paper's C-vs-Java client asymmetry:
//!
//! * [`CodecId::Xdr`] → [`crate::codec_xdr::XdrCodec`] — flat, bulk-copy
//!   marshalling (the C client library).
//! * [`CodecId::Jdr`] → [`crate::codec_jdr::JdrCodec`] — boxed object-tree,
//!   element-wise marshalling (the Java client library).

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::error::WireError;
use crate::frame::EncodedFrame;
use crate::rpc::{ReplyFrame, RequestFrame, SackInfo};

/// Identifies a codec on the wire (the session's first byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecId {
    /// XDR, the C client library's format.
    Xdr,
    /// JDR, the Java client library's format.
    Jdr,
}

impl CodecId {
    /// The wire identification byte.
    #[must_use]
    pub fn byte(self) -> u8 {
        match self {
            CodecId::Xdr => 0,
            CodecId::Jdr => 1,
        }
    }

    /// Parses the identification byte.
    ///
    /// # Errors
    ///
    /// [`WireError::BadTag`] for unknown bytes.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(CodecId::Xdr),
            1 => Ok(CodecId::Jdr),
            other => Err(WireError::BadTag(u32::from(other))),
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecId::Xdr => write!(f, "xdr"),
            CodecId::Jdr => write!(f, "jdr"),
        }
    }
}

/// Marshals RPC frames to and from bytes.
///
/// Implementations must be deterministic: `decode(encode(f)) == f`.
///
/// Encoding emits an [`EncodedFrame`] — header bytes staged in pooled
/// buffers plus item payloads as borrowed [`Bytes`] segments, so
/// payloads are never memcpy'd at encode time. Decoding takes the
/// refcounted receive buffer and yields payloads as slice views into
/// it. The flattened segment bytes are exactly the legacy contiguous
/// wire format; both concrete codecs also expose `*_legacy` inherent
/// methods that run the old copying paths, which the cross-version
/// compatibility tests pit against these.
pub trait Codec: Send + Sync + fmt::Debug {
    /// Which codec this is.
    fn id(&self) -> CodecId;

    /// Encodes a request frame as scatter-gather segments.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unrepresentable values.
    fn encode_request(&self, frame: &RequestFrame) -> Result<EncodedFrame, WireError>;

    /// Decodes a request frame, requiring full consumption of the input.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input.
    fn decode_request(&self, bytes: &Bytes) -> Result<RequestFrame, WireError>;

    /// Encodes a reply frame as scatter-gather segments.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unrepresentable values.
    fn encode_reply(&self, frame: &ReplyFrame) -> Result<EncodedFrame, WireError>;

    /// Decodes a reply frame, requiring full consumption of the input.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input.
    fn decode_reply(&self, bytes: &Bytes) -> Result<ReplyFrame, WireError>;

    /// Encodes a CLF selective-acknowledgment body (the payload of a
    /// CLF `SACK` datagram, see `dstampede-clf`). A pure extension:
    /// the frame carries its own tag (`CLF_SACK`), disjoint
    /// from every request and reply tag, so decoders that predate it
    /// reject it cleanly instead of misparsing.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unrepresentable values.
    fn encode_sack(&self, sack: &SackInfo) -> Result<EncodedFrame, WireError>;

    /// Decodes a CLF selective-acknowledgment body, requiring full
    /// consumption of the input.
    ///
    /// # Errors
    ///
    /// [`WireError::BadTag`] when the input is not a SACK body,
    /// [`WireError::BadValue`] for bitmaps above
    /// [`crate::rpc::MAX_SACK_BITMAP`], other [`WireError`]s on
    /// malformed input.
    fn decode_sack(&self, bytes: &Bytes) -> Result<SackInfo, WireError>;
}

/// Returns the codec registered for an id.
#[must_use]
pub fn codec_for(id: CodecId) -> Arc<dyn Codec> {
    match id {
        CodecId::Xdr => Arc::new(crate::codec_xdr::XdrCodec::new()),
        CodecId::Jdr => Arc::new(crate::codec_jdr::JdrCodec::new()),
    }
}

/// Message discriminants shared by every codec implementation.
pub(crate) mod class {
    // Requests.
    pub const ATTACH: u32 = 1;
    pub const DETACH: u32 = 2;
    pub const PING: u32 = 3;
    pub const CHANNEL_CREATE: u32 = 4;
    pub const QUEUE_CREATE: u32 = 5;
    pub const CONNECT_CHANNEL_IN: u32 = 6;
    pub const CONNECT_CHANNEL_OUT: u32 = 7;
    pub const CONNECT_QUEUE_IN: u32 = 8;
    pub const CONNECT_QUEUE_OUT: u32 = 9;
    pub const DISCONNECT: u32 = 10;
    pub const CHANNEL_PUT: u32 = 11;
    pub const CHANNEL_GET: u32 = 12;
    pub const CHANNEL_CONSUME: u32 = 13;
    pub const CHANNEL_SET_VT: u32 = 14;
    pub const QUEUE_PUT: u32 = 15;
    pub const QUEUE_GET: u32 = 16;
    pub const QUEUE_CONSUME: u32 = 17;
    pub const QUEUE_REQUEUE: u32 = 18;
    pub const NS_REGISTER: u32 = 19;
    pub const NS_LOOKUP: u32 = 20;
    pub const NS_UNREGISTER: u32 = 21;
    pub const NS_LIST: u32 = 22;
    pub const INSTALL_GARBAGE_HOOK: u32 = 23;
    pub const GC_REPORT: u32 = 24;
    pub const STATS_PULL: u32 = 25;
    pub const HEARTBEAT: u32 = 26;
    pub const WITH_ID: u32 = 27;
    pub const TRACE_PULL: u32 = 28;
    pub const PUT_BATCH: u32 = 29;
    pub const GET_BATCH: u32 = 30;
    pub const HISTORY_PULL: u32 = 31;
    pub const HEALTH_PULL: u32 = 32;
    pub const REPLICA_OPEN_CHANNEL: u32 = 33;
    pub const REPLICA_OPEN_QUEUE: u32 = 34;
    pub const REPLICATE_PUT: u32 = 35;
    /// CLF selective-acknowledgment body (not an RPC request; the tag
    /// lives in the request space so it can never collide with one).
    pub const CLF_SACK: u32 = 36;

    // Replies.
    pub const R_OK: u32 = 1;
    pub const R_ATTACHED: u32 = 2;
    pub const R_CREATED: u32 = 3;
    pub const R_CONNECTED: u32 = 4;
    pub const R_ITEM: u32 = 5;
    pub const R_QUEUE_ITEM: u32 = 6;
    pub const R_NS_FOUND: u32 = 7;
    pub const R_NS_ENTRIES: u32 = 8;
    pub const R_PONG: u32 = 9;
    pub const R_ERROR: u32 = 10;
    pub const R_STATS_REPORT: u32 = 11;
    pub const R_TRACE_REPORT: u32 = 12;
    pub const R_BATCH_RESULTS: u32 = 13;
    pub const R_BATCH_ITEMS: u32 = 14;
    pub const R_HISTORY_REPORT: u32 = 15;
    pub const R_HEALTH_REPORT: u32 = 16;

    /// Magic tag guarding the optional XDR trace-context trailer.
    /// ASCII `tctx`; deliberately non-zero so legacy trailing-garbage
    /// padding (zeros) is still rejected.
    pub const TRACE_CTX: u32 = 0x7463_7478;

    // Sub-encodings.
    pub const RES_CHANNEL: u32 = 0;
    pub const RES_QUEUE: u32 = 1;
    pub const INTEREST_EARLIEST: u32 = 0;
    pub const INTEREST_LATEST: u32 = 1;
    pub const INTEREST_FROM_TS: u32 = 2;
    pub const SPEC_EXACT: u32 = 0;
    pub const SPEC_LATEST: u32 = 1;
    pub const SPEC_EARLIEST: u32 = 2;
    pub const SPEC_AFTER: u32 = 3;
    pub const WAIT_NON_BLOCKING: u32 = 0;
    pub const WAIT_FOREVER: u32 = 1;
    pub const WAIT_TIMEOUT: u32 = 2;
    pub const FILTER_ANY: u32 = 0;
    pub const FILTER_ONLY: u32 = 1;
    pub const FILTER_STRIPE: u32 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_id_byte_round_trip() {
        for id in [CodecId::Xdr, CodecId::Jdr] {
            assert_eq!(CodecId::from_byte(id.byte()).unwrap(), id);
        }
        assert!(CodecId::from_byte(9).is_err());
    }

    #[test]
    fn codec_for_returns_matching_impl() {
        assert_eq!(codec_for(CodecId::Xdr).id(), CodecId::Xdr);
        assert_eq!(codec_for(CodecId::Jdr).id(), CodecId::Jdr);
    }

    #[test]
    fn display_names() {
        assert_eq!(CodecId::Xdr.to_string(), "xdr");
        assert_eq!(CodecId::Jdr.to_string(), "jdr");
    }
}
