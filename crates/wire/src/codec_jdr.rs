//! The JDR codec: boxed object-tree marshalling (the Java client library).
//!
//! Every frame is first lifted into a [`JdrValue`] object tree — one heap
//! allocation per field, byte arrays copied element-wise — and then
//! streamed byte-at-a-time through a virtual sink. Decoding reverses the
//! two stages. This is deliberately the expensive path; see
//! [`crate::jdr`] for the rationale.

use bytes::Bytes;

use dstampede_core::{
    AsId, ChanId, ChannelAttrs, GcPolicy, GetSpec, Interest, OverflowPolicy, QueueAttrs, QueueId,
    ResourceId, TagFilter, Timestamp,
};

use dstampede_obs::{SpanId, TraceContext, TraceId};

use crate::codec::{class, Codec, CodecId};
use crate::error::WireError;
use crate::frame::EncodedFrame;
use crate::jdr::{self, decode as jdr_decode, encode as jdr_encode, JdrValue};
use crate::rpc::{
    BatchGot, BatchPutItem, GcNote, NsEntry, Reply, ReplyFrame, Request, RequestFrame, SackInfo,
    WaitSpec,
};

/// Object-tree JDR marshalling of RPC frames (the Java client's cost
/// profile).
#[derive(Debug, Default, Clone, Copy)]
pub struct JdrCodec;

impl JdrCodec {
    /// Creates the codec (stateless).
    #[must_use]
    pub fn new() -> Self {
        JdrCodec
    }
}

fn chan_value(id: ChanId) -> JdrValue {
    JdrValue::object(
        class::RES_CHANNEL,
        vec![
            JdrValue::Int(i32::from(id.owner.0 as i16)),
            JdrValue::Int(id.index as i32),
        ],
    )
}

fn queue_value(id: QueueId) -> JdrValue {
    JdrValue::object(
        class::RES_QUEUE,
        vec![
            JdrValue::Int(i32::from(id.owner.0 as i16)),
            JdrValue::Int(id.index as i32),
        ],
    )
}

fn resource_value(res: ResourceId) -> JdrValue {
    match res {
        ResourceId::Channel(c) => chan_value(c),
        ResourceId::Queue(q) => queue_value(q),
    }
}

fn field(fields: &[Box<JdrValue>], i: usize) -> Result<&JdrValue, WireError> {
    fields.get(i).map(AsRef::as_ref).ok_or(WireError::Truncated)
}

fn value_to_chan(v: &JdrValue) -> Result<ChanId, WireError> {
    let (cls, fields) = v.as_object()?;
    if cls != class::RES_CHANNEL {
        return Err(WireError::BadTag(cls));
    }
    Ok(ChanId {
        owner: AsId(field(fields, 0)?.as_i32()? as u16),
        index: field(fields, 1)?.as_u32()?,
    })
}

fn value_to_queue(v: &JdrValue) -> Result<QueueId, WireError> {
    let (cls, fields) = v.as_object()?;
    if cls != class::RES_QUEUE {
        return Err(WireError::BadTag(cls));
    }
    Ok(QueueId {
        owner: AsId(field(fields, 0)?.as_i32()? as u16),
        index: field(fields, 1)?.as_u32()?,
    })
}

fn value_to_resource(v: &JdrValue) -> Result<ResourceId, WireError> {
    let (cls, _) = v.as_object()?;
    match cls {
        class::RES_CHANNEL => Ok(ResourceId::Channel(value_to_chan(v)?)),
        class::RES_QUEUE => Ok(ResourceId::Queue(value_to_queue(v)?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn channel_attrs_value(attrs: &ChannelAttrs) -> JdrValue {
    JdrValue::object(
        0,
        vec![
            attrs
                .capacity()
                .map_or(JdrValue::Null, |c| JdrValue::Int(c as i32)),
            JdrValue::Int(attrs.overflow().code() as i32),
            JdrValue::Int(attrs.gc().code() as i32),
        ],
    )
}

fn value_to_channel_attrs(v: &JdrValue) -> Result<ChannelAttrs, WireError> {
    let (_, fields) = v.as_object()?;
    let mut b = ChannelAttrs::builder()
        .overflow(OverflowPolicy::from_code(field(fields, 1)?.as_u32()?))
        .gc(GcPolicy::from_code(field(fields, 2)?.as_u32()?));
    if let Some(cap) = field(fields, 0)?.as_option() {
        b = b.capacity(cap.as_u32()?);
    }
    Ok(b.build())
}

fn queue_attrs_value(attrs: &QueueAttrs) -> JdrValue {
    JdrValue::object(
        0,
        vec![
            attrs
                .capacity()
                .map_or(JdrValue::Null, |c| JdrValue::Int(c as i32)),
            JdrValue::Int(attrs.overflow().code() as i32),
        ],
    )
}

fn value_to_queue_attrs(v: &JdrValue) -> Result<QueueAttrs, WireError> {
    let (_, fields) = v.as_object()?;
    let mut b =
        QueueAttrs::builder().overflow(OverflowPolicy::from_code(field(fields, 1)?.as_u32()?));
    if let Some(cap) = field(fields, 0)?.as_option() {
        b = b.capacity(cap.as_u32()?);
    }
    Ok(b.build())
}

fn interest_value(interest: Interest) -> JdrValue {
    match interest {
        Interest::FromEarliest => JdrValue::object(class::INTEREST_EARLIEST, vec![]),
        Interest::FromLatest => JdrValue::object(class::INTEREST_LATEST, vec![]),
        Interest::FromTs(ts) => {
            JdrValue::object(class::INTEREST_FROM_TS, vec![JdrValue::Long(ts.value())])
        }
    }
}

fn value_to_interest(v: &JdrValue) -> Result<Interest, WireError> {
    let (cls, fields) = v.as_object()?;
    match cls {
        class::INTEREST_EARLIEST => Ok(Interest::FromEarliest),
        class::INTEREST_LATEST => Ok(Interest::FromLatest),
        class::INTEREST_FROM_TS => Ok(Interest::FromTs(Timestamp::new(
            field(fields, 0)?.as_i64()?,
        ))),
        t => Err(WireError::BadTag(t)),
    }
}

fn filter_value(filter: &TagFilter) -> JdrValue {
    match filter {
        TagFilter::Any => JdrValue::object(class::FILTER_ANY, vec![]),
        TagFilter::Only(tags) => JdrValue::object(
            class::FILTER_ONLY,
            vec![JdrValue::List(
                tags.iter()
                    .map(|&t| Box::new(JdrValue::Int(t as i32)))
                    .collect(),
            )],
        ),
        TagFilter::Stripe { modulus, remainder } => JdrValue::object(
            class::FILTER_STRIPE,
            vec![
                JdrValue::Int(*modulus as i32),
                JdrValue::Int(*remainder as i32),
            ],
        ),
    }
}

fn value_to_filter(v: &JdrValue) -> Result<TagFilter, WireError> {
    let (cls, fields) = v.as_object()?;
    match cls {
        class::FILTER_ANY => Ok(TagFilter::Any),
        class::FILTER_ONLY => {
            let mut tags = Vec::new();
            for t in field(fields, 0)?.as_list()? {
                tags.push(t.as_u32()?);
            }
            Ok(TagFilter::Only(tags))
        }
        class::FILTER_STRIPE => Ok(TagFilter::Stripe {
            modulus: field(fields, 0)?.as_u32()?,
            remainder: field(fields, 1)?.as_u32()?,
        }),
        t => Err(WireError::BadTag(t)),
    }
}

fn spec_value(spec: GetSpec) -> JdrValue {
    match spec {
        GetSpec::Exact(ts) => JdrValue::object(class::SPEC_EXACT, vec![JdrValue::Long(ts.value())]),
        GetSpec::Latest => JdrValue::object(class::SPEC_LATEST, vec![]),
        GetSpec::Earliest => JdrValue::object(class::SPEC_EARLIEST, vec![]),
        GetSpec::After(ts) => JdrValue::object(class::SPEC_AFTER, vec![JdrValue::Long(ts.value())]),
    }
}

fn value_to_spec(v: &JdrValue) -> Result<GetSpec, WireError> {
    let (cls, fields) = v.as_object()?;
    match cls {
        class::SPEC_EXACT => Ok(GetSpec::Exact(Timestamp::new(field(fields, 0)?.as_i64()?))),
        class::SPEC_LATEST => Ok(GetSpec::Latest),
        class::SPEC_EARLIEST => Ok(GetSpec::Earliest),
        class::SPEC_AFTER => Ok(GetSpec::After(Timestamp::new(field(fields, 0)?.as_i64()?))),
        t => Err(WireError::BadTag(t)),
    }
}

fn wait_value(wait: WaitSpec) -> JdrValue {
    match wait {
        WaitSpec::NonBlocking => JdrValue::object(class::WAIT_NON_BLOCKING, vec![]),
        WaitSpec::Forever => JdrValue::object(class::WAIT_FOREVER, vec![]),
        WaitSpec::TimeoutMs(ms) => {
            JdrValue::object(class::WAIT_TIMEOUT, vec![JdrValue::Int(ms as i32)])
        }
    }
}

fn value_to_wait(v: &JdrValue) -> Result<WaitSpec, WireError> {
    let (cls, fields) = v.as_object()?;
    match cls {
        class::WAIT_NON_BLOCKING => Ok(WaitSpec::NonBlocking),
        class::WAIT_FOREVER => Ok(WaitSpec::Forever),
        class::WAIT_TIMEOUT => Ok(WaitSpec::TimeoutMs(field(fields, 0)?.as_u32()?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn gc_note_value(n: &GcNote) -> JdrValue {
    JdrValue::object(
        0,
        vec![
            resource_value(n.resource),
            JdrValue::Long(n.ts.value()),
            JdrValue::Int(n.tag as i32),
            JdrValue::Int(n.len as i32),
        ],
    )
}

fn value_to_gc_note(v: &JdrValue) -> Result<GcNote, WireError> {
    let (_, fields) = v.as_object()?;
    Ok(GcNote {
        resource: value_to_resource(field(fields, 0)?)?,
        ts: Timestamp::new(field(fields, 1)?.as_i64()?),
        tag: field(fields, 2)?.as_u32()?,
        len: field(fields, 3)?.as_u32()?,
    })
}

fn opt_string_value(s: Option<&String>) -> JdrValue {
    s.map_or(JdrValue::Null, |s| JdrValue::str(s))
}

/// Lifts an optional trace context into an envelope field: `Null` when the
/// frame carries no context, otherwise a two-field object.
fn trace_value(trace: Option<TraceContext>) -> JdrValue {
    trace.map_or(JdrValue::Null, |ctx| {
        JdrValue::object(
            class::TRACE_CTX,
            vec![
                JdrValue::Long(ctx.trace.0 as i64),
                JdrValue::Long(ctx.span.0 as i64),
            ],
        )
    })
}

/// Reads the optional trace-context envelope field at `idx`. Frames from
/// pre-tracing peers omit the field entirely; both absent and `Null`
/// decode to no context.
fn value_to_trace(env: &[Box<JdrValue>], idx: usize) -> Result<Option<TraceContext>, WireError> {
    let Some(v) = env
        .get(idx)
        .map(AsRef::as_ref)
        .and_then(JdrValue::as_option)
    else {
        return Ok(None);
    };
    let (cls, f) = v.as_object()?;
    if cls != class::TRACE_CTX {
        return Err(WireError::BadTag(cls));
    }
    Ok(Some(TraceContext {
        trace: TraceId(field(f, 0)?.as_u64()?),
        span: SpanId(field(f, 1)?.as_u64()?),
    }))
}

fn batch_put_item_value(item: &BatchPutItem) -> JdrValue {
    JdrValue::object(
        0,
        vec![
            JdrValue::Long(item.ts.value()),
            JdrValue::Int(item.tag as i32),
            trace_value(item.trace),
            JdrValue::payload(item.payload.clone()),
        ],
    )
}

fn value_to_batch_put_item(v: &JdrValue) -> Result<BatchPutItem, WireError> {
    let (_, f) = v.as_object()?;
    Ok(BatchPutItem {
        ts: Timestamp::new(field(f, 0)?.as_i64()?),
        tag: field(f, 1)?.as_u32()?,
        trace: value_to_trace(f, 2)?,
        payload: field(f, 3)?.as_payload()?.clone(),
    })
}

fn batch_got_value(item: &BatchGot) -> JdrValue {
    JdrValue::object(
        0,
        vec![
            JdrValue::Int(item.code as i32),
            JdrValue::Long(item.ts.value()),
            JdrValue::Int(item.tag as i32),
            JdrValue::Long(item.ticket as i64),
            trace_value(item.trace),
            JdrValue::payload(item.payload.clone()),
        ],
    )
}

fn value_to_batch_got(v: &JdrValue) -> Result<BatchGot, WireError> {
    let (_, f) = v.as_object()?;
    Ok(BatchGot {
        code: field(f, 0)?.as_u32()?,
        ts: Timestamp::new(field(f, 1)?.as_i64()?),
        tag: field(f, 2)?.as_u32()?,
        ticket: field(f, 3)?.as_u64()?,
        trace: value_to_trace(f, 4)?,
        payload: field(f, 5)?.as_payload()?.clone(),
    })
}

fn request_body_value(req: &Request) -> Result<JdrValue, WireError> {
    let (cls, fields) = match req {
        Request::Attach { client_name } => (class::ATTACH, vec![JdrValue::str(client_name)]),
        Request::Detach => (class::DETACH, vec![]),
        Request::Ping { nonce } => (class::PING, vec![JdrValue::Long(*nonce as i64)]),
        Request::ChannelCreate { name, attrs } => (
            class::CHANNEL_CREATE,
            vec![opt_string_value(name.as_ref()), channel_attrs_value(attrs)],
        ),
        Request::QueueCreate { name, attrs } => (
            class::QUEUE_CREATE,
            vec![opt_string_value(name.as_ref()), queue_attrs_value(attrs)],
        ),
        Request::ConnectChannelIn {
            chan,
            interest,
            filter,
        } => (
            class::CONNECT_CHANNEL_IN,
            vec![
                chan_value(*chan),
                interest_value(*interest),
                filter_value(filter),
            ],
        ),
        Request::ConnectChannelOut { chan } => {
            (class::CONNECT_CHANNEL_OUT, vec![chan_value(*chan)])
        }
        Request::ConnectQueueIn { queue } => (class::CONNECT_QUEUE_IN, vec![queue_value(*queue)]),
        Request::ConnectQueueOut { queue } => (class::CONNECT_QUEUE_OUT, vec![queue_value(*queue)]),
        Request::Disconnect { conn } => (class::DISCONNECT, vec![JdrValue::Long(*conn as i64)]),
        Request::ChannelPut {
            conn,
            ts,
            tag,
            payload,
            wait,
        } => (
            class::CHANNEL_PUT,
            vec![
                JdrValue::Long(*conn as i64),
                JdrValue::Long(ts.value()),
                JdrValue::Int(*tag as i32),
                wait_value(*wait),
                JdrValue::payload(payload.clone()),
            ],
        ),
        Request::ChannelGet { conn, spec, wait } => (
            class::CHANNEL_GET,
            vec![
                JdrValue::Long(*conn as i64),
                spec_value(*spec),
                wait_value(*wait),
            ],
        ),
        Request::ChannelConsume { conn, upto } => (
            class::CHANNEL_CONSUME,
            vec![JdrValue::Long(*conn as i64), JdrValue::Long(upto.value())],
        ),
        Request::ChannelSetVt { conn, vt } => (
            class::CHANNEL_SET_VT,
            vec![JdrValue::Long(*conn as i64), JdrValue::Long(vt.value())],
        ),
        Request::QueuePut {
            conn,
            ts,
            tag,
            payload,
            wait,
        } => (
            class::QUEUE_PUT,
            vec![
                JdrValue::Long(*conn as i64),
                JdrValue::Long(ts.value()),
                JdrValue::Int(*tag as i32),
                wait_value(*wait),
                JdrValue::payload(payload.clone()),
            ],
        ),
        Request::QueueGet { conn, wait } => (
            class::QUEUE_GET,
            vec![JdrValue::Long(*conn as i64), wait_value(*wait)],
        ),
        Request::QueueConsume { conn, ticket } => (
            class::QUEUE_CONSUME,
            vec![JdrValue::Long(*conn as i64), JdrValue::Long(*ticket as i64)],
        ),
        Request::QueueRequeue { conn, ticket } => (
            class::QUEUE_REQUEUE,
            vec![JdrValue::Long(*conn as i64), JdrValue::Long(*ticket as i64)],
        ),
        Request::NsRegister {
            name,
            resource,
            meta,
        } => (
            class::NS_REGISTER,
            vec![
                JdrValue::str(name),
                resource_value(*resource),
                JdrValue::str(meta),
            ],
        ),
        Request::NsLookup { name, wait } => (
            class::NS_LOOKUP,
            vec![JdrValue::str(name), wait_value(*wait)],
        ),
        Request::NsUnregister { name } => (class::NS_UNREGISTER, vec![JdrValue::str(name)]),
        Request::NsList => (class::NS_LIST, vec![]),
        Request::InstallGarbageHook { resource } => {
            (class::INSTALL_GARBAGE_HOOK, vec![resource_value(*resource)])
        }
        Request::GcReport { from, min_vt } => (
            class::GC_REPORT,
            vec![
                JdrValue::Int(i32::from(from.0 as i16)),
                JdrValue::Long(min_vt.value()),
            ],
        ),
        Request::StatsPull { cluster } => (class::STATS_PULL, vec![JdrValue::Bool(*cluster)]),
        Request::TracePull { cluster } => (class::TRACE_PULL, vec![JdrValue::Bool(*cluster)]),
        Request::HistoryPull { cluster } => (class::HISTORY_PULL, vec![JdrValue::Bool(*cluster)]),
        Request::HealthPull { cluster } => (class::HEALTH_PULL, vec![JdrValue::Bool(*cluster)]),
        Request::Heartbeat { incarnation } => {
            (class::HEARTBEAT, vec![JdrValue::Long(*incarnation as i64)])
        }
        Request::PutBatch { conn, items, wait } => (
            class::PUT_BATCH,
            vec![
                JdrValue::Long(*conn as i64),
                wait_value(*wait),
                JdrValue::List(
                    items
                        .iter()
                        .map(|i| Box::new(batch_put_item_value(i)))
                        .collect(),
                ),
            ],
        ),
        Request::GetBatch { conn, specs, max } => (
            class::GET_BATCH,
            vec![
                JdrValue::Long(*conn as i64),
                JdrValue::Int(*max as i32),
                JdrValue::List(specs.iter().map(|s| Box::new(spec_value(*s))).collect()),
            ],
        ),
        Request::WithId { req_id, req } => {
            if matches!(**req, Request::WithId { .. }) {
                return Err(WireError::BadValue("nested WithId request".to_owned()));
            }
            (
                class::WITH_ID,
                vec![JdrValue::Long(*req_id as i64), request_body_value(req)?],
            )
        }
        Request::ReplicaOpenChannel { chan, name, attrs } => (
            class::REPLICA_OPEN_CHANNEL,
            vec![
                chan_value(*chan),
                opt_string_value(name.as_ref()),
                channel_attrs_value(attrs),
            ],
        ),
        Request::ReplicaOpenQueue { queue, name, attrs } => (
            class::REPLICA_OPEN_QUEUE,
            vec![
                queue_value(*queue),
                opt_string_value(name.as_ref()),
                queue_attrs_value(attrs),
            ],
        ),
        Request::ReplicatePut {
            resource,
            floor,
            items,
        } => (
            class::REPLICATE_PUT,
            vec![
                resource_value(*resource),
                JdrValue::Long(floor.value()),
                JdrValue::List(
                    items
                        .iter()
                        .map(|i| Box::new(batch_put_item_value(i)))
                        .collect(),
                ),
            ],
        ),
    };
    Ok(JdrValue::object(cls, fields))
}

fn request_to_value(frame: &RequestFrame) -> Result<JdrValue, WireError> {
    // Frame envelope: seq first, then the call object, then the optional
    // trace context. Decoders that predate tracing ignore extra fields.
    Ok(JdrValue::object(
        u32::MAX,
        vec![
            JdrValue::Long(frame.seq as i64),
            request_body_value(&frame.req)?,
            trace_value(frame.trace),
        ],
    ))
}

fn value_to_request_body(v: &JdrValue, depth: u32) -> Result<Request, WireError> {
    let (cls, f) = v.as_object()?;
    let req = match cls {
        class::ATTACH => Request::Attach {
            client_name: field(f, 0)?.as_str()?.to_owned(),
        },
        class::DETACH => Request::Detach,
        class::PING => Request::Ping {
            nonce: field(f, 0)?.as_u64()?,
        },
        class::CHANNEL_CREATE => Request::ChannelCreate {
            name: match field(f, 0)?.as_option() {
                Some(s) => Some(s.as_str()?.to_owned()),
                None => None,
            },
            attrs: value_to_channel_attrs(field(f, 1)?)?,
        },
        class::QUEUE_CREATE => Request::QueueCreate {
            name: match field(f, 0)?.as_option() {
                Some(s) => Some(s.as_str()?.to_owned()),
                None => None,
            },
            attrs: value_to_queue_attrs(field(f, 1)?)?,
        },
        class::CONNECT_CHANNEL_IN => Request::ConnectChannelIn {
            chan: value_to_chan(field(f, 0)?)?,
            interest: value_to_interest(field(f, 1)?)?,
            filter: value_to_filter(field(f, 2)?)?,
        },
        class::CONNECT_CHANNEL_OUT => Request::ConnectChannelOut {
            chan: value_to_chan(field(f, 0)?)?,
        },
        class::CONNECT_QUEUE_IN => Request::ConnectQueueIn {
            queue: value_to_queue(field(f, 0)?)?,
        },
        class::CONNECT_QUEUE_OUT => Request::ConnectQueueOut {
            queue: value_to_queue(field(f, 0)?)?,
        },
        class::DISCONNECT => Request::Disconnect {
            conn: field(f, 0)?.as_u64()?,
        },
        class::CHANNEL_PUT => Request::ChannelPut {
            conn: field(f, 0)?.as_u64()?,
            ts: Timestamp::new(field(f, 1)?.as_i64()?),
            tag: field(f, 2)?.as_u32()?,
            wait: value_to_wait(field(f, 3)?)?,
            payload: field(f, 4)?.as_payload()?.clone(),
        },
        class::CHANNEL_GET => Request::ChannelGet {
            conn: field(f, 0)?.as_u64()?,
            spec: value_to_spec(field(f, 1)?)?,
            wait: value_to_wait(field(f, 2)?)?,
        },
        class::CHANNEL_CONSUME => Request::ChannelConsume {
            conn: field(f, 0)?.as_u64()?,
            upto: Timestamp::new(field(f, 1)?.as_i64()?),
        },
        class::CHANNEL_SET_VT => Request::ChannelSetVt {
            conn: field(f, 0)?.as_u64()?,
            vt: Timestamp::new(field(f, 1)?.as_i64()?),
        },
        class::QUEUE_PUT => Request::QueuePut {
            conn: field(f, 0)?.as_u64()?,
            ts: Timestamp::new(field(f, 1)?.as_i64()?),
            tag: field(f, 2)?.as_u32()?,
            wait: value_to_wait(field(f, 3)?)?,
            payload: field(f, 4)?.as_payload()?.clone(),
        },
        class::QUEUE_GET => Request::QueueGet {
            conn: field(f, 0)?.as_u64()?,
            wait: value_to_wait(field(f, 1)?)?,
        },
        class::QUEUE_CONSUME => Request::QueueConsume {
            conn: field(f, 0)?.as_u64()?,
            ticket: field(f, 1)?.as_u64()?,
        },
        class::QUEUE_REQUEUE => Request::QueueRequeue {
            conn: field(f, 0)?.as_u64()?,
            ticket: field(f, 1)?.as_u64()?,
        },
        class::NS_REGISTER => Request::NsRegister {
            name: field(f, 0)?.as_str()?.to_owned(),
            resource: value_to_resource(field(f, 1)?)?,
            meta: field(f, 2)?.as_str()?.to_owned(),
        },
        class::NS_LOOKUP => Request::NsLookup {
            name: field(f, 0)?.as_str()?.to_owned(),
            wait: value_to_wait(field(f, 1)?)?,
        },
        class::NS_UNREGISTER => Request::NsUnregister {
            name: field(f, 0)?.as_str()?.to_owned(),
        },
        class::NS_LIST => Request::NsList,
        class::INSTALL_GARBAGE_HOOK => Request::InstallGarbageHook {
            resource: value_to_resource(field(f, 0)?)?,
        },
        class::GC_REPORT => Request::GcReport {
            from: AsId(field(f, 0)?.as_i32()? as u16),
            min_vt: Timestamp::new(field(f, 1)?.as_i64()?),
        },
        class::STATS_PULL => Request::StatsPull {
            cluster: field(f, 0)?.as_bool()?,
        },
        class::TRACE_PULL => Request::TracePull {
            cluster: field(f, 0)?.as_bool()?,
        },
        class::HISTORY_PULL => Request::HistoryPull {
            cluster: field(f, 0)?.as_bool()?,
        },
        class::HEALTH_PULL => Request::HealthPull {
            cluster: field(f, 0)?.as_bool()?,
        },
        class::HEARTBEAT => Request::Heartbeat {
            incarnation: field(f, 0)?.as_u64()?,
        },
        class::PUT_BATCH => {
            let mut items = Vec::new();
            for item in field(f, 2)?.as_list()? {
                items.push(value_to_batch_put_item(item)?);
            }
            Request::PutBatch {
                conn: field(f, 0)?.as_u64()?,
                items,
                wait: value_to_wait(field(f, 1)?)?,
            }
        }
        class::GET_BATCH => {
            let mut specs = Vec::new();
            for spec in field(f, 2)?.as_list()? {
                specs.push(value_to_spec(spec)?);
            }
            Request::GetBatch {
                conn: field(f, 0)?.as_u64()?,
                specs,
                max: field(f, 1)?.as_u32()?,
            }
        }
        class::WITH_ID => {
            if depth > 0 {
                return Err(WireError::BadValue("nested WithId request".to_owned()));
            }
            Request::WithId {
                req_id: field(f, 0)?.as_u64()?,
                req: Box::new(value_to_request_body(field(f, 1)?, depth + 1)?),
            }
        }
        class::REPLICA_OPEN_CHANNEL => Request::ReplicaOpenChannel {
            chan: value_to_chan(field(f, 0)?)?,
            name: match field(f, 1)?.as_option() {
                Some(s) => Some(s.as_str()?.to_owned()),
                None => None,
            },
            attrs: value_to_channel_attrs(field(f, 2)?)?,
        },
        class::REPLICA_OPEN_QUEUE => Request::ReplicaOpenQueue {
            queue: value_to_queue(field(f, 0)?)?,
            name: match field(f, 1)?.as_option() {
                Some(s) => Some(s.as_str()?.to_owned()),
                None => None,
            },
            attrs: value_to_queue_attrs(field(f, 2)?)?,
        },
        class::REPLICATE_PUT => {
            let mut items = Vec::new();
            for item in field(f, 2)?.as_list()? {
                items.push(value_to_batch_put_item(item)?);
            }
            Request::ReplicatePut {
                resource: value_to_resource(field(f, 0)?)?,
                floor: Timestamp::new(field(f, 1)?.as_i64()?),
                items,
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    Ok(req)
}

fn value_to_request(v: &JdrValue) -> Result<RequestFrame, WireError> {
    let (env_cls, env) = v.as_object()?;
    if env_cls != u32::MAX {
        return Err(WireError::BadTag(env_cls));
    }
    Ok(RequestFrame {
        seq: field(env, 0)?.as_u64()?,
        req: value_to_request_body(field(env, 1)?, 0)?,
        trace: value_to_trace(env, 2)?,
    })
}

fn reply_to_value(frame: &ReplyFrame) -> JdrValue {
    let notes: Vec<Box<JdrValue>> = frame
        .gc_notes
        .iter()
        .map(|n| Box::new(gc_note_value(n)))
        .collect();
    let (cls, fields) = match &frame.reply {
        Reply::Ok => (class::R_OK, vec![]),
        Reply::Attached { session, as_id } => (
            class::R_ATTACHED,
            vec![
                JdrValue::Long(*session as i64),
                JdrValue::Int(i32::from(as_id.0 as i16)),
            ],
        ),
        Reply::Created { resource } => (class::R_CREATED, vec![resource_value(*resource)]),
        Reply::Connected { conn } => (class::R_CONNECTED, vec![JdrValue::Long(*conn as i64)]),
        Reply::Item { ts, tag, payload } => (
            class::R_ITEM,
            vec![
                JdrValue::Long(ts.value()),
                JdrValue::Int(*tag as i32),
                JdrValue::payload(payload.clone()),
            ],
        ),
        Reply::QueueItem {
            ts,
            tag,
            payload,
            ticket,
        } => (
            class::R_QUEUE_ITEM,
            vec![
                JdrValue::Long(ts.value()),
                JdrValue::Int(*tag as i32),
                JdrValue::Long(*ticket as i64),
                JdrValue::payload(payload.clone()),
            ],
        ),
        Reply::NsFound { resource, meta } => (
            class::R_NS_FOUND,
            vec![resource_value(*resource), JdrValue::str(meta)],
        ),
        Reply::NsEntries { entries } => (
            class::R_NS_ENTRIES,
            vec![JdrValue::List(
                entries
                    .iter()
                    .map(|e| {
                        Box::new(JdrValue::object(
                            0,
                            vec![
                                JdrValue::str(&e.name),
                                resource_value(e.resource),
                                JdrValue::str(&e.meta),
                            ],
                        ))
                    })
                    .collect(),
            )],
        ),
        Reply::Pong { nonce } => (class::R_PONG, vec![JdrValue::Long(*nonce as i64)]),
        Reply::Error { code, detail } => (
            class::R_ERROR,
            vec![JdrValue::Int(*code as i32), JdrValue::str(detail)],
        ),
        Reply::StatsReport { snapshot } => (
            class::R_STATS_REPORT,
            vec![JdrValue::payload(snapshot.clone())],
        ),
        Reply::TraceReport { dump } => {
            (class::R_TRACE_REPORT, vec![JdrValue::payload(dump.clone())])
        }
        Reply::HistoryReport { dump } => (
            class::R_HISTORY_REPORT,
            vec![JdrValue::payload(dump.clone())],
        ),
        Reply::HealthReport { report } => (
            class::R_HEALTH_REPORT,
            vec![JdrValue::payload(report.clone())],
        ),
        Reply::BatchResults { codes } => (
            class::R_BATCH_RESULTS,
            vec![JdrValue::List(
                codes
                    .iter()
                    .map(|&c| Box::new(JdrValue::Int(c as i32)))
                    .collect(),
            )],
        ),
        Reply::BatchItems { items } => (
            class::R_BATCH_ITEMS,
            vec![JdrValue::List(
                items.iter().map(|i| Box::new(batch_got_value(i))).collect(),
            )],
        ),
    };
    JdrValue::object(
        u32::MAX,
        vec![
            JdrValue::Long(frame.seq as i64),
            JdrValue::List(notes),
            JdrValue::object(cls, fields),
            trace_value(frame.trace),
        ],
    )
}

fn value_to_reply(v: &JdrValue) -> Result<ReplyFrame, WireError> {
    let (env_cls, env) = v.as_object()?;
    if env_cls != u32::MAX {
        return Err(WireError::BadTag(env_cls));
    }
    let seq = field(env, 0)?.as_u64()?;
    let mut gc_notes = Vec::new();
    for n in field(env, 1)?.as_list()? {
        gc_notes.push(value_to_gc_note(n)?);
    }
    let (cls, f) = field(env, 2)?.as_object()?;
    let reply = match cls {
        class::R_OK => Reply::Ok,
        class::R_ATTACHED => Reply::Attached {
            session: field(f, 0)?.as_u64()?,
            as_id: AsId(field(f, 1)?.as_i32()? as u16),
        },
        class::R_CREATED => Reply::Created {
            resource: value_to_resource(field(f, 0)?)?,
        },
        class::R_CONNECTED => Reply::Connected {
            conn: field(f, 0)?.as_u64()?,
        },
        class::R_ITEM => Reply::Item {
            ts: Timestamp::new(field(f, 0)?.as_i64()?),
            tag: field(f, 1)?.as_u32()?,
            payload: field(f, 2)?.as_payload()?.clone(),
        },
        class::R_QUEUE_ITEM => Reply::QueueItem {
            ts: Timestamp::new(field(f, 0)?.as_i64()?),
            tag: field(f, 1)?.as_u32()?,
            ticket: field(f, 2)?.as_u64()?,
            payload: field(f, 3)?.as_payload()?.clone(),
        },
        class::R_NS_FOUND => Reply::NsFound {
            resource: value_to_resource(field(f, 0)?)?,
            meta: field(f, 1)?.as_str()?.to_owned(),
        },
        class::R_NS_ENTRIES => {
            let mut entries = Vec::new();
            for e in field(f, 0)?.as_list()? {
                let (_, ef) = e.as_object()?;
                entries.push(NsEntry {
                    name: field(ef, 0)?.as_str()?.to_owned(),
                    resource: value_to_resource(field(ef, 1)?)?,
                    meta: field(ef, 2)?.as_str()?.to_owned(),
                });
            }
            Reply::NsEntries { entries }
        }
        class::R_PONG => Reply::Pong {
            nonce: field(f, 0)?.as_u64()?,
        },
        class::R_ERROR => Reply::Error {
            code: field(f, 0)?.as_u32()?,
            detail: field(f, 1)?.as_str()?.to_owned(),
        },
        class::R_STATS_REPORT => Reply::StatsReport {
            snapshot: field(f, 0)?.as_payload()?.clone(),
        },
        class::R_TRACE_REPORT => Reply::TraceReport {
            dump: field(f, 0)?.as_payload()?.clone(),
        },
        class::R_HISTORY_REPORT => Reply::HistoryReport {
            dump: field(f, 0)?.as_payload()?.clone(),
        },
        class::R_HEALTH_REPORT => Reply::HealthReport {
            report: field(f, 0)?.as_payload()?.clone(),
        },
        class::R_BATCH_RESULTS => {
            let mut codes = Vec::new();
            for c in field(f, 0)?.as_list()? {
                codes.push(c.as_u32()?);
            }
            Reply::BatchResults { codes }
        }
        class::R_BATCH_ITEMS => {
            let mut items = Vec::new();
            for item in field(f, 0)?.as_list()? {
                items.push(value_to_batch_got(item)?);
            }
            Reply::BatchItems { items }
        }
        t => return Err(WireError::BadTag(t)),
    };
    Ok(ReplyFrame {
        seq,
        gc_notes,
        reply,
        trace: value_to_trace(env, 3)?,
    })
}

impl JdrCodec {
    /// Encodes a request with the pre-zero-copy path: the object tree
    /// is streamed element-wise into one buffer, payloads included.
    /// Kept for the cross-version compatibility tests and legacy
    /// callers; the bytes are identical to the flattened
    /// [`Codec::encode_request`] output.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::encode_request`].
    pub fn encode_request_legacy(&self, frame: &RequestFrame) -> Result<Vec<u8>, WireError> {
        Ok(jdr_encode(&request_to_value(frame)?))
    }

    /// Decodes a request with the pre-zero-copy element-wise path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode_request`].
    pub fn decode_request_legacy(&self, bytes: &[u8]) -> Result<RequestFrame, WireError> {
        value_to_request(&jdr_decode(bytes)?)
    }

    /// Encodes a reply with the pre-zero-copy element-wise path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::encode_reply`].
    pub fn encode_reply_legacy(&self, frame: &ReplyFrame) -> Result<Vec<u8>, WireError> {
        Ok(jdr_encode(&reply_to_value(frame)))
    }

    /// Decodes a reply with the pre-zero-copy element-wise path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode_reply`].
    pub fn decode_reply_legacy(&self, bytes: &[u8]) -> Result<ReplyFrame, WireError> {
        value_to_reply(&jdr_decode(bytes)?)
    }
}

impl Codec for JdrCodec {
    fn id(&self) -> CodecId {
        CodecId::Jdr
    }

    fn encode_request(&self, frame: &RequestFrame) -> Result<EncodedFrame, WireError> {
        Ok(jdr::encode_frame(&request_to_value(frame)?))
    }

    fn decode_request(&self, bytes: &Bytes) -> Result<RequestFrame, WireError> {
        value_to_request(&jdr::decode_bytes(bytes)?)
    }

    fn encode_reply(&self, frame: &ReplyFrame) -> Result<EncodedFrame, WireError> {
        Ok(jdr::encode_frame(&reply_to_value(frame)))
    }

    fn decode_reply(&self, bytes: &Bytes) -> Result<ReplyFrame, WireError> {
        value_to_reply(&jdr::decode_bytes(bytes)?)
    }

    fn encode_sack(&self, sack: &SackInfo) -> Result<EncodedFrame, WireError> {
        if sack.bitmap.len() > crate::rpc::MAX_SACK_BITMAP {
            return Err(WireError::BadValue(format!(
                "sack bitmap of {} bytes exceeds {}",
                sack.bitmap.len(),
                crate::rpc::MAX_SACK_BITMAP
            )));
        }
        let v = JdrValue::object(
            class::CLF_SACK,
            vec![
                JdrValue::Long(sack.ack_next as i64),
                JdrValue::Bytes(sack.bitmap.clone()),
            ],
        );
        Ok(jdr::encode_frame(&v))
    }

    fn decode_sack(&self, bytes: &Bytes) -> Result<SackInfo, WireError> {
        let v = jdr::decode_bytes(bytes)?;
        let (cls, fields) = v.as_object()?;
        if cls != class::CLF_SACK {
            return Err(WireError::BadTag(cls));
        }
        let ack_next = field(fields, 0)?.as_u64()?;
        let bitmap = match field(fields, 1)? {
            JdrValue::Bytes(b) => b.clone(),
            other => return Err(WireError::BadValue(format!("sack bitmap: {other:?}"))),
        };
        if bitmap.len() > crate::rpc::MAX_SACK_BITMAP {
            return Err(WireError::BadValue(format!(
                "sack bitmap of {} bytes exceeds {}",
                bitmap.len(),
                crate::rpc::MAX_SACK_BITMAP
            )));
        }
        Ok(SackInfo { ack_next, bitmap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::test_vectors::{all_replies, all_requests};

    #[test]
    fn every_request_round_trips() {
        let codec = JdrCodec::new();
        for (i, req) in all_requests().into_iter().enumerate() {
            let frame = RequestFrame::new(i as u64, req);
            let bytes = codec.encode_request(&frame).unwrap().to_bytes();
            let back = codec.decode_request(&bytes).unwrap();
            assert_eq!(back, frame, "request #{i}");
        }
    }

    #[test]
    fn every_reply_round_trips() {
        let codec = JdrCodec::new();
        for (i, (reply, notes)) in all_replies().into_iter().enumerate() {
            let frame = ReplyFrame::new(i as u64, notes, reply);
            let bytes = codec.encode_reply(&frame).unwrap().to_bytes();
            let back = codec.decode_reply(&bytes).unwrap();
            assert_eq!(back, frame, "reply #{i}");
        }
    }

    #[test]
    fn legacy_paths_match_scatter_paths() {
        let codec = JdrCodec::new();
        for (i, req) in all_requests().into_iter().enumerate() {
            let frame = RequestFrame::new(i as u64, req);
            let legacy = codec.encode_request_legacy(&frame).unwrap();
            let scatter = codec.encode_request(&frame).unwrap().to_bytes();
            assert_eq!(&scatter[..], &legacy[..], "request #{i}");
            assert_eq!(codec.decode_request_legacy(&scatter).unwrap(), frame);
            assert_eq!(codec.decode_request(&Bytes::from(legacy)).unwrap(), frame);
        }
        for (i, (reply, notes)) in all_replies().into_iter().enumerate() {
            let frame = ReplyFrame::new(i as u64, notes, reply);
            let legacy = codec.encode_reply_legacy(&frame).unwrap();
            let scatter = codec.encode_reply(&frame).unwrap().to_bytes();
            assert_eq!(&scatter[..], &legacy[..], "reply #{i}");
            assert_eq!(codec.decode_reply_legacy(&scatter).unwrap(), frame);
            assert_eq!(codec.decode_reply(&Bytes::from(legacy)).unwrap(), frame);
        }
    }

    #[test]
    fn jdr_and_xdr_are_different_wire_formats() {
        let frame = RequestFrame::new(1, Request::Ping { nonce: 2 });
        let jdr = JdrCodec::new().encode_request(&frame).unwrap().to_bytes();
        let xdr = crate::codec_xdr::XdrCodec::new()
            .encode_request(&frame)
            .unwrap()
            .to_bytes();
        assert_ne!(jdr, xdr);
        // Cross-decoding must fail or mis-parse, never panic.
        let _ = JdrCodec::new().decode_request(&xdr);
    }

    #[test]
    fn bad_envelope_rejected() {
        let v = JdrValue::object(3, vec![]);
        let bytes = Bytes::from(jdr_encode(&v));
        assert!(JdrCodec::new().decode_request(&bytes).is_err());
        assert!(JdrCodec::new().decode_reply(&bytes).is_err());
    }

    #[test]
    fn trace_context_round_trips() {
        let codec = JdrCodec::new();
        let ctx = TraceContext {
            trace: TraceId(u64::MAX - 3),
            span: SpanId(42),
        };
        let frame = RequestFrame::new(5, Request::Ping { nonce: 1 }).with_trace(Some(ctx));
        let back = codec
            .decode_request(&codec.encode_request(&frame).unwrap().to_bytes())
            .unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.trace, Some(ctx));

        let reply = ReplyFrame::new(5, vec![], Reply::Pong { nonce: 1 }).with_trace(Some(ctx));
        let back = codec
            .decode_reply(&codec.encode_reply(&reply).unwrap().to_bytes())
            .unwrap();
        assert_eq!(back.trace, Some(ctx));
    }

    #[test]
    fn envelope_without_trace_field_decodes_as_none() {
        // A two-field request envelope is what pre-tracing encoders emit.
        let v = JdrValue::object(
            u32::MAX,
            vec![JdrValue::Long(9), JdrValue::object(class::DETACH, vec![])],
        );
        let back = JdrCodec::new()
            .decode_request(&Bytes::from(jdr_encode(&v)))
            .unwrap();
        assert_eq!(back, RequestFrame::new(9, Request::Detach));
        assert_eq!(back.trace, None);
    }

    #[test]
    fn missing_field_rejected() {
        // Envelope with a PING object that has no fields.
        let v = JdrValue::object(
            u32::MAX,
            vec![JdrValue::Long(1), JdrValue::object(class::PING, vec![])],
        );
        let bytes = Bytes::from(jdr_encode(&v));
        assert_eq!(
            JdrCodec::new().decode_request(&bytes).unwrap_err(),
            WireError::Truncated
        );
    }
}
