//! The XDR codec: flat, bulk-copy marshalling (the C client library).

use bytes::Bytes;

use dstampede_core::{
    AsId, ChanId, ChannelAttrs, GcPolicy, GetSpec, Interest, OverflowPolicy, QueueAttrs, QueueId,
    ResourceId, TagFilter, Timestamp,
};

use dstampede_obs::{SpanId, TraceContext, TraceId};

use crate::codec::{class, Codec, CodecId};
use crate::error::WireError;
use crate::frame::EncodedFrame;
use crate::rpc::{
    BatchGot, BatchPutItem, GcNote, NsEntry, Reply, ReplyFrame, Request, RequestFrame, SackInfo,
    WaitSpec,
};
use crate::xdr::{XdrReader, XdrWriter};

/// Flat XDR marshalling of RPC frames. Scalars are written in place and
/// payloads are bulk-copied — the C client's cheap cost profile.
#[derive(Debug, Default, Clone, Copy)]
pub struct XdrCodec;

impl XdrCodec {
    /// Creates the codec (stateless).
    #[must_use]
    pub fn new() -> Self {
        XdrCodec
    }
}

fn put_chan_id(w: &mut XdrWriter, id: ChanId) {
    w.put_u32(u32::from(id.owner.0));
    w.put_u32(id.index);
}

fn get_chan_id(r: &mut XdrReader<'_>) -> Result<ChanId, WireError> {
    let owner = r.get_u32()?;
    let owner = u16::try_from(owner)
        .map_err(|_| WireError::BadValue(format!("address space id {owner}")))?;
    Ok(ChanId {
        owner: AsId(owner),
        index: r.get_u32()?,
    })
}

fn put_queue_id(w: &mut XdrWriter, id: QueueId) {
    w.put_u32(u32::from(id.owner.0));
    w.put_u32(id.index);
}

fn get_queue_id(r: &mut XdrReader<'_>) -> Result<QueueId, WireError> {
    let owner = r.get_u32()?;
    let owner = u16::try_from(owner)
        .map_err(|_| WireError::BadValue(format!("address space id {owner}")))?;
    Ok(QueueId {
        owner: AsId(owner),
        index: r.get_u32()?,
    })
}

fn put_resource(w: &mut XdrWriter, res: ResourceId) {
    match res {
        ResourceId::Channel(c) => {
            w.put_u32(class::RES_CHANNEL);
            put_chan_id(w, c);
        }
        ResourceId::Queue(q) => {
            w.put_u32(class::RES_QUEUE);
            put_queue_id(w, q);
        }
    }
}

fn get_resource(r: &mut XdrReader<'_>) -> Result<ResourceId, WireError> {
    match r.get_u32()? {
        class::RES_CHANNEL => Ok(ResourceId::Channel(get_chan_id(r)?)),
        class::RES_QUEUE => Ok(ResourceId::Queue(get_queue_id(r)?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_channel_attrs(w: &mut XdrWriter, attrs: &ChannelAttrs) {
    w.put_option(attrs.capacity().as_ref(), |w, c| w.put_u32(*c));
    w.put_u32(attrs.overflow().code());
    w.put_u32(attrs.gc().code());
}

fn get_channel_attrs(r: &mut XdrReader<'_>) -> Result<ChannelAttrs, WireError> {
    let capacity = r.get_option(|r| r.get_u32())?;
    let overflow = OverflowPolicy::from_code(r.get_u32()?);
    let gc = GcPolicy::from_code(r.get_u32()?);
    let mut b = ChannelAttrs::builder().overflow(overflow).gc(gc);
    if let Some(c) = capacity {
        b = b.capacity(c);
    }
    Ok(b.build())
}

fn put_queue_attrs(w: &mut XdrWriter, attrs: &QueueAttrs) {
    w.put_option(attrs.capacity().as_ref(), |w, c| w.put_u32(*c));
    w.put_u32(attrs.overflow().code());
}

fn get_queue_attrs(r: &mut XdrReader<'_>) -> Result<QueueAttrs, WireError> {
    let capacity = r.get_option(|r| r.get_u32())?;
    let overflow = OverflowPolicy::from_code(r.get_u32()?);
    let mut b = QueueAttrs::builder().overflow(overflow);
    if let Some(c) = capacity {
        b = b.capacity(c);
    }
    Ok(b.build())
}

fn put_interest(w: &mut XdrWriter, interest: Interest) {
    match interest {
        Interest::FromEarliest => w.put_u32(class::INTEREST_EARLIEST),
        Interest::FromLatest => w.put_u32(class::INTEREST_LATEST),
        Interest::FromTs(ts) => {
            w.put_u32(class::INTEREST_FROM_TS);
            w.put_i64(ts.value());
        }
    }
}

fn get_interest(r: &mut XdrReader<'_>) -> Result<Interest, WireError> {
    match r.get_u32()? {
        class::INTEREST_EARLIEST => Ok(Interest::FromEarliest),
        class::INTEREST_LATEST => Ok(Interest::FromLatest),
        class::INTEREST_FROM_TS => Ok(Interest::FromTs(Timestamp::new(r.get_i64()?))),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_filter(w: &mut XdrWriter, filter: &TagFilter) {
    match filter {
        TagFilter::Any => w.put_u32(class::FILTER_ANY),
        TagFilter::Only(tags) => {
            w.put_u32(class::FILTER_ONLY);
            w.put_u32(tags.len() as u32);
            for t in tags {
                w.put_u32(*t);
            }
        }
        TagFilter::Stripe { modulus, remainder } => {
            w.put_u32(class::FILTER_STRIPE);
            w.put_u32(*modulus);
            w.put_u32(*remainder);
        }
    }
}

fn get_filter(r: &mut XdrReader<'_>) -> Result<TagFilter, WireError> {
    match r.get_u32()? {
        class::FILTER_ANY => Ok(TagFilter::Any),
        class::FILTER_ONLY => {
            let n = r.get_u32()?;
            if n > 1_000_000 {
                return Err(WireError::BadValue(format!("filter tag count {n}")));
            }
            let mut tags = Vec::with_capacity(n as usize);
            for _ in 0..n {
                tags.push(r.get_u32()?);
            }
            Ok(TagFilter::Only(tags))
        }
        class::FILTER_STRIPE => Ok(TagFilter::Stripe {
            modulus: r.get_u32()?,
            remainder: r.get_u32()?,
        }),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_spec(w: &mut XdrWriter, spec: GetSpec) {
    match spec {
        GetSpec::Exact(ts) => {
            w.put_u32(class::SPEC_EXACT);
            w.put_i64(ts.value());
        }
        GetSpec::Latest => w.put_u32(class::SPEC_LATEST),
        GetSpec::Earliest => w.put_u32(class::SPEC_EARLIEST),
        GetSpec::After(ts) => {
            w.put_u32(class::SPEC_AFTER);
            w.put_i64(ts.value());
        }
    }
}

fn get_spec(r: &mut XdrReader<'_>) -> Result<GetSpec, WireError> {
    match r.get_u32()? {
        class::SPEC_EXACT => Ok(GetSpec::Exact(Timestamp::new(r.get_i64()?))),
        class::SPEC_LATEST => Ok(GetSpec::Latest),
        class::SPEC_EARLIEST => Ok(GetSpec::Earliest),
        class::SPEC_AFTER => Ok(GetSpec::After(Timestamp::new(r.get_i64()?))),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_wait(w: &mut XdrWriter, wait: WaitSpec) {
    match wait {
        WaitSpec::NonBlocking => w.put_u32(class::WAIT_NON_BLOCKING),
        WaitSpec::Forever => w.put_u32(class::WAIT_FOREVER),
        WaitSpec::TimeoutMs(ms) => {
            w.put_u32(class::WAIT_TIMEOUT);
            w.put_u32(ms);
        }
    }
}

fn get_wait(r: &mut XdrReader<'_>) -> Result<WaitSpec, WireError> {
    match r.get_u32()? {
        class::WAIT_NON_BLOCKING => Ok(WaitSpec::NonBlocking),
        class::WAIT_FOREVER => Ok(WaitSpec::Forever),
        class::WAIT_TIMEOUT => Ok(WaitSpec::TimeoutMs(r.get_u32()?)),
        t => Err(WireError::BadTag(t)),
    }
}

/// Cap on decoded batch lengths, matching the filter-tag sanity bound.
const MAX_BATCH: u32 = 1_000_000;

fn put_opt_trace(w: &mut XdrWriter, trace: Option<TraceContext>) {
    w.put_option(trace.as_ref(), |w, ctx| {
        w.put_u64(ctx.trace.0);
        w.put_u64(ctx.span.0);
    });
}

fn get_opt_trace(r: &mut XdrReader<'_>) -> Result<Option<TraceContext>, WireError> {
    r.get_option(|r| {
        Ok(TraceContext {
            trace: TraceId(r.get_u64()?),
            span: SpanId(r.get_u64()?),
        })
    })
}

fn put_batch_put_item(w: &mut XdrWriter, item: &BatchPutItem) {
    w.put_i64(item.ts.value());
    w.put_u32(item.tag);
    put_opt_trace(w, item.trace);
    w.put_payload(&item.payload);
}

fn get_batch_put_item(r: &mut XdrReader<'_>) -> Result<BatchPutItem, WireError> {
    let ts = Timestamp::new(r.get_i64()?);
    let tag = r.get_u32()?;
    let trace = get_opt_trace(r)?;
    let payload = r.get_payload()?;
    Ok(BatchPutItem {
        ts,
        tag,
        payload,
        trace,
    })
}

fn put_batch_got(w: &mut XdrWriter, item: &BatchGot) {
    w.put_u32(item.code);
    w.put_i64(item.ts.value());
    w.put_u32(item.tag);
    w.put_u64(item.ticket);
    put_opt_trace(w, item.trace);
    w.put_payload(&item.payload);
}

fn get_batch_got(r: &mut XdrReader<'_>) -> Result<BatchGot, WireError> {
    let code = r.get_u32()?;
    let ts = Timestamp::new(r.get_i64()?);
    let tag = r.get_u32()?;
    let ticket = r.get_u64()?;
    let trace = get_opt_trace(r)?;
    let payload = r.get_payload()?;
    Ok(BatchGot {
        code,
        ts,
        tag,
        payload,
        ticket,
        trace,
    })
}

fn get_batch_len(r: &mut XdrReader<'_>, what: &str) -> Result<u32, WireError> {
    let n = r.get_u32()?;
    if n > MAX_BATCH {
        return Err(WireError::BadValue(format!("{what} count {n}")));
    }
    Ok(n)
}

fn put_gc_note(w: &mut XdrWriter, n: &GcNote) {
    put_resource(w, n.resource);
    w.put_i64(n.ts.value());
    w.put_u32(n.tag);
    w.put_u32(n.len);
}

fn get_gc_note(r: &mut XdrReader<'_>) -> Result<GcNote, WireError> {
    Ok(GcNote {
        resource: get_resource(r)?,
        ts: Timestamp::new(r.get_i64()?),
        tag: r.get_u32()?,
        len: r.get_u32()?,
    })
}

fn put_request_body(w: &mut XdrWriter, req: &Request) -> Result<(), WireError> {
    match req {
        Request::Attach { client_name } => {
            w.put_u32(class::ATTACH);
            w.put_string(client_name);
        }
        Request::Detach => w.put_u32(class::DETACH),
        Request::Ping { nonce } => {
            w.put_u32(class::PING);
            w.put_u64(*nonce);
        }
        Request::ChannelCreate { name, attrs } => {
            w.put_u32(class::CHANNEL_CREATE);
            w.put_option(name.as_ref(), |w, n| w.put_string(n));
            put_channel_attrs(w, attrs);
        }
        Request::QueueCreate { name, attrs } => {
            w.put_u32(class::QUEUE_CREATE);
            w.put_option(name.as_ref(), |w, n| w.put_string(n));
            put_queue_attrs(w, attrs);
        }
        Request::ConnectChannelIn {
            chan,
            interest,
            filter,
        } => {
            w.put_u32(class::CONNECT_CHANNEL_IN);
            put_chan_id(w, *chan);
            put_interest(w, *interest);
            put_filter(w, filter);
        }
        Request::ConnectChannelOut { chan } => {
            w.put_u32(class::CONNECT_CHANNEL_OUT);
            put_chan_id(w, *chan);
        }
        Request::ConnectQueueIn { queue } => {
            w.put_u32(class::CONNECT_QUEUE_IN);
            put_queue_id(w, *queue);
        }
        Request::ConnectQueueOut { queue } => {
            w.put_u32(class::CONNECT_QUEUE_OUT);
            put_queue_id(w, *queue);
        }
        Request::Disconnect { conn } => {
            w.put_u32(class::DISCONNECT);
            w.put_u64(*conn);
        }
        Request::ChannelPut {
            conn,
            ts,
            tag,
            payload,
            wait,
        } => {
            w.put_u32(class::CHANNEL_PUT);
            w.put_u64(*conn);
            w.put_i64(ts.value());
            w.put_u32(*tag);
            put_wait(w, *wait);
            w.put_payload(payload);
        }
        Request::ChannelGet { conn, spec, wait } => {
            w.put_u32(class::CHANNEL_GET);
            w.put_u64(*conn);
            put_spec(w, *spec);
            put_wait(w, *wait);
        }
        Request::ChannelConsume { conn, upto } => {
            w.put_u32(class::CHANNEL_CONSUME);
            w.put_u64(*conn);
            w.put_i64(upto.value());
        }
        Request::ChannelSetVt { conn, vt } => {
            w.put_u32(class::CHANNEL_SET_VT);
            w.put_u64(*conn);
            w.put_i64(vt.value());
        }
        Request::QueuePut {
            conn,
            ts,
            tag,
            payload,
            wait,
        } => {
            w.put_u32(class::QUEUE_PUT);
            w.put_u64(*conn);
            w.put_i64(ts.value());
            w.put_u32(*tag);
            put_wait(w, *wait);
            w.put_payload(payload);
        }
        Request::QueueGet { conn, wait } => {
            w.put_u32(class::QUEUE_GET);
            w.put_u64(*conn);
            put_wait(w, *wait);
        }
        Request::QueueConsume { conn, ticket } => {
            w.put_u32(class::QUEUE_CONSUME);
            w.put_u64(*conn);
            w.put_u64(*ticket);
        }
        Request::QueueRequeue { conn, ticket } => {
            w.put_u32(class::QUEUE_REQUEUE);
            w.put_u64(*conn);
            w.put_u64(*ticket);
        }
        Request::NsRegister {
            name,
            resource,
            meta,
        } => {
            w.put_u32(class::NS_REGISTER);
            w.put_string(name);
            put_resource(w, *resource);
            w.put_string(meta);
        }
        Request::NsLookup { name, wait } => {
            w.put_u32(class::NS_LOOKUP);
            w.put_string(name);
            put_wait(w, *wait);
        }
        Request::NsUnregister { name } => {
            w.put_u32(class::NS_UNREGISTER);
            w.put_string(name);
        }
        Request::NsList => w.put_u32(class::NS_LIST),
        Request::InstallGarbageHook { resource } => {
            w.put_u32(class::INSTALL_GARBAGE_HOOK);
            put_resource(w, *resource);
        }
        Request::GcReport { from, min_vt } => {
            w.put_u32(class::GC_REPORT);
            w.put_u32(u32::from(from.0));
            w.put_i64(min_vt.value());
        }
        Request::StatsPull { cluster } => {
            w.put_u32(class::STATS_PULL);
            w.put_bool(*cluster);
        }
        Request::TracePull { cluster } => {
            w.put_u32(class::TRACE_PULL);
            w.put_bool(*cluster);
        }
        Request::HistoryPull { cluster } => {
            w.put_u32(class::HISTORY_PULL);
            w.put_bool(*cluster);
        }
        Request::HealthPull { cluster } => {
            w.put_u32(class::HEALTH_PULL);
            w.put_bool(*cluster);
        }
        Request::Heartbeat { incarnation } => {
            w.put_u32(class::HEARTBEAT);
            w.put_u64(*incarnation);
        }
        Request::PutBatch { conn, items, wait } => {
            w.put_u32(class::PUT_BATCH);
            w.put_u64(*conn);
            put_wait(w, *wait);
            w.put_u32(items.len() as u32);
            for item in items {
                put_batch_put_item(w, item);
            }
        }
        Request::GetBatch { conn, specs, max } => {
            w.put_u32(class::GET_BATCH);
            w.put_u64(*conn);
            w.put_u32(*max);
            w.put_u32(specs.len() as u32);
            for spec in specs {
                put_spec(w, *spec);
            }
        }
        Request::WithId { req_id, req } => {
            if matches!(**req, Request::WithId { .. }) {
                return Err(WireError::BadValue("nested WithId request".to_owned()));
            }
            w.put_u32(class::WITH_ID);
            w.put_u64(*req_id);
            put_request_body(w, req)?;
        }
        Request::ReplicaOpenChannel { chan, name, attrs } => {
            w.put_u32(class::REPLICA_OPEN_CHANNEL);
            put_chan_id(w, *chan);
            w.put_option(name.as_ref(), |w, n| w.put_string(n));
            put_channel_attrs(w, attrs);
        }
        Request::ReplicaOpenQueue { queue, name, attrs } => {
            w.put_u32(class::REPLICA_OPEN_QUEUE);
            put_queue_id(w, *queue);
            w.put_option(name.as_ref(), |w, n| w.put_string(n));
            put_queue_attrs(w, attrs);
        }
        Request::ReplicatePut {
            resource,
            floor,
            items,
        } => {
            w.put_u32(class::REPLICATE_PUT);
            put_resource(w, *resource);
            w.put_i64(floor.value());
            w.put_u32(items.len() as u32);
            for item in items {
                put_batch_put_item(w, item);
            }
        }
    }
    Ok(())
}

fn get_request_body(r: &mut XdrReader<'_>, depth: u32) -> Result<Request, WireError> {
    let tag = r.get_u32()?;
    let req = match tag {
        class::ATTACH => Request::Attach {
            client_name: r.get_string()?,
        },
        class::DETACH => Request::Detach,
        class::PING => Request::Ping {
            nonce: r.get_u64()?,
        },
        class::CHANNEL_CREATE => Request::ChannelCreate {
            name: r.get_option(|r| r.get_string())?,
            attrs: get_channel_attrs(r)?,
        },
        class::QUEUE_CREATE => Request::QueueCreate {
            name: r.get_option(|r| r.get_string())?,
            attrs: get_queue_attrs(r)?,
        },
        class::CONNECT_CHANNEL_IN => Request::ConnectChannelIn {
            chan: get_chan_id(r)?,
            interest: get_interest(r)?,
            filter: get_filter(r)?,
        },
        class::CONNECT_CHANNEL_OUT => Request::ConnectChannelOut {
            chan: get_chan_id(r)?,
        },
        class::CONNECT_QUEUE_IN => Request::ConnectQueueIn {
            queue: get_queue_id(r)?,
        },
        class::CONNECT_QUEUE_OUT => Request::ConnectQueueOut {
            queue: get_queue_id(r)?,
        },
        class::DISCONNECT => Request::Disconnect { conn: r.get_u64()? },
        class::CHANNEL_PUT => {
            let conn = r.get_u64()?;
            let ts = Timestamp::new(r.get_i64()?);
            let tag = r.get_u32()?;
            let wait = get_wait(r)?;
            let payload = r.get_payload()?;
            Request::ChannelPut {
                conn,
                ts,
                tag,
                payload,
                wait,
            }
        }
        class::CHANNEL_GET => Request::ChannelGet {
            conn: r.get_u64()?,
            spec: get_spec(r)?,
            wait: get_wait(r)?,
        },
        class::CHANNEL_CONSUME => Request::ChannelConsume {
            conn: r.get_u64()?,
            upto: Timestamp::new(r.get_i64()?),
        },
        class::CHANNEL_SET_VT => Request::ChannelSetVt {
            conn: r.get_u64()?,
            vt: Timestamp::new(r.get_i64()?),
        },
        class::QUEUE_PUT => {
            let conn = r.get_u64()?;
            let ts = Timestamp::new(r.get_i64()?);
            let tag = r.get_u32()?;
            let wait = get_wait(r)?;
            let payload = r.get_payload()?;
            Request::QueuePut {
                conn,
                ts,
                tag,
                payload,
                wait,
            }
        }
        class::QUEUE_GET => Request::QueueGet {
            conn: r.get_u64()?,
            wait: get_wait(r)?,
        },
        class::QUEUE_CONSUME => Request::QueueConsume {
            conn: r.get_u64()?,
            ticket: r.get_u64()?,
        },
        class::QUEUE_REQUEUE => Request::QueueRequeue {
            conn: r.get_u64()?,
            ticket: r.get_u64()?,
        },
        class::NS_REGISTER => Request::NsRegister {
            name: r.get_string()?,
            resource: get_resource(r)?,
            meta: r.get_string()?,
        },
        class::NS_LOOKUP => Request::NsLookup {
            name: r.get_string()?,
            wait: get_wait(r)?,
        },
        class::NS_UNREGISTER => Request::NsUnregister {
            name: r.get_string()?,
        },
        class::NS_LIST => Request::NsList,
        class::INSTALL_GARBAGE_HOOK => Request::InstallGarbageHook {
            resource: get_resource(r)?,
        },
        class::GC_REPORT => {
            let from = r.get_u32()?;
            let from = u16::try_from(from)
                .map_err(|_| WireError::BadValue(format!("address space id {from}")))?;
            Request::GcReport {
                from: AsId(from),
                min_vt: Timestamp::new(r.get_i64()?),
            }
        }
        class::STATS_PULL => Request::StatsPull {
            cluster: r.get_bool()?,
        },
        class::TRACE_PULL => Request::TracePull {
            cluster: r.get_bool()?,
        },
        class::HISTORY_PULL => Request::HistoryPull {
            cluster: r.get_bool()?,
        },
        class::HEALTH_PULL => Request::HealthPull {
            cluster: r.get_bool()?,
        },
        class::HEARTBEAT => Request::Heartbeat {
            incarnation: r.get_u64()?,
        },
        class::PUT_BATCH => {
            let conn = r.get_u64()?;
            let wait = get_wait(r)?;
            let n = get_batch_len(r, "batch item")?;
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                items.push(get_batch_put_item(r)?);
            }
            Request::PutBatch { conn, items, wait }
        }
        class::GET_BATCH => {
            let conn = r.get_u64()?;
            let max = r.get_u32()?;
            let n = get_batch_len(r, "batch spec")?;
            let mut specs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                specs.push(get_spec(r)?);
            }
            Request::GetBatch { conn, specs, max }
        }
        class::WITH_ID => {
            if depth > 0 {
                return Err(WireError::BadValue("nested WithId request".to_owned()));
            }
            Request::WithId {
                req_id: r.get_u64()?,
                req: Box::new(get_request_body(r, depth + 1)?),
            }
        }
        class::REPLICA_OPEN_CHANNEL => {
            let chan = get_chan_id(r)?;
            let name = r.get_option(|r| r.get_string())?;
            let attrs = get_channel_attrs(r)?;
            Request::ReplicaOpenChannel { chan, name, attrs }
        }
        class::REPLICA_OPEN_QUEUE => {
            let queue = get_queue_id(r)?;
            let name = r.get_option(|r| r.get_string())?;
            let attrs = get_queue_attrs(r)?;
            Request::ReplicaOpenQueue { queue, name, attrs }
        }
        class::REPLICATE_PUT => {
            let resource = get_resource(r)?;
            let floor = Timestamp::new(r.get_i64()?);
            let n = get_batch_len(r, "replicated item")?;
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                items.push(get_batch_put_item(r)?);
            }
            Request::ReplicatePut {
                resource,
                floor,
                items,
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    Ok(req)
}

/// Appends the optional trace-context trailer: a magic tag followed by the
/// trace and span ids. Nothing is written when the frame carries no context,
/// so traced and untraced frames stay wire-compatible.
fn put_trace_trailer(w: &mut XdrWriter, trace: Option<TraceContext>) {
    if let Some(ctx) = trace {
        w.put_u32(class::TRACE_CTX);
        w.put_u64(ctx.trace.0);
        w.put_u64(ctx.span.0);
    }
}

/// Parses the optional trace-context trailer. No remaining bytes means no
/// context (frames from pre-tracing peers); remaining bytes that do not
/// start with the magic tag are trailing garbage, reported exactly as
/// before the trailer existed.
fn get_trace_trailer(r: &mut XdrReader<'_>) -> Result<Option<TraceContext>, WireError> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    let rem = r.remaining();
    if r.get_u32()? != class::TRACE_CTX {
        return Err(WireError::TrailingBytes(rem));
    }
    Ok(Some(TraceContext {
        trace: TraceId(r.get_u64()?),
        span: SpanId(r.get_u64()?),
    }))
}

/// Writes a full request frame: seq, body, optional trace trailer.
/// Shared by the scatter-gather and legacy encode paths — the writer's
/// mode decides whether payloads are borrowed or copied.
fn put_request_frame(w: &mut XdrWriter, frame: &RequestFrame) -> Result<(), WireError> {
    w.put_u64(frame.seq);
    put_request_body(w, &frame.req)?;
    put_trace_trailer(w, frame.trace);
    Ok(())
}

/// Parses a full request frame, requiring full consumption. Shared by
/// the view-returning and legacy decode paths — the reader's backing
/// decides whether payloads are slices or copies.
fn get_request_frame(r: &mut XdrReader<'_>) -> Result<RequestFrame, WireError> {
    let seq = r.get_u64()?;
    let req = get_request_body(r, 0)?;
    let trace = get_trace_trailer(r)?;
    r.finish()?;
    Ok(RequestFrame { seq, req, trace })
}

/// Writes a full reply frame: seq, gc notes, body, optional trailer.
fn put_reply_frame(w: &mut XdrWriter, frame: &ReplyFrame) -> Result<(), WireError> {
    w.put_u64(frame.seq);
    w.put_u32(frame.gc_notes.len() as u32);
    for n in &frame.gc_notes {
        put_gc_note(w, n);
    }
    match &frame.reply {
        Reply::Ok => w.put_u32(class::R_OK),
        Reply::Attached { session, as_id } => {
            w.put_u32(class::R_ATTACHED);
            w.put_u64(*session);
            w.put_u32(u32::from(as_id.0));
        }
        Reply::Created { resource } => {
            w.put_u32(class::R_CREATED);
            put_resource(w, *resource);
        }
        Reply::Connected { conn } => {
            w.put_u32(class::R_CONNECTED);
            w.put_u64(*conn);
        }
        Reply::Item { ts, tag, payload } => {
            w.put_u32(class::R_ITEM);
            w.put_i64(ts.value());
            w.put_u32(*tag);
            w.put_payload(payload);
        }
        Reply::QueueItem {
            ts,
            tag,
            payload,
            ticket,
        } => {
            w.put_u32(class::R_QUEUE_ITEM);
            w.put_i64(ts.value());
            w.put_u32(*tag);
            w.put_u64(*ticket);
            w.put_payload(payload);
        }
        Reply::NsFound { resource, meta } => {
            w.put_u32(class::R_NS_FOUND);
            put_resource(w, *resource);
            w.put_string(meta);
        }
        Reply::NsEntries { entries } => {
            w.put_u32(class::R_NS_ENTRIES);
            w.put_u32(entries.len() as u32);
            for e in entries {
                w.put_string(&e.name);
                put_resource(w, e.resource);
                w.put_string(&e.meta);
            }
        }
        Reply::Pong { nonce } => {
            w.put_u32(class::R_PONG);
            w.put_u64(*nonce);
        }
        Reply::Error { code, detail } => {
            w.put_u32(class::R_ERROR);
            w.put_u32(*code);
            w.put_string(detail);
        }
        Reply::StatsReport { snapshot } => {
            w.put_u32(class::R_STATS_REPORT);
            w.put_payload(snapshot);
        }
        Reply::TraceReport { dump } => {
            w.put_u32(class::R_TRACE_REPORT);
            w.put_payload(dump);
        }
        Reply::HistoryReport { dump } => {
            w.put_u32(class::R_HISTORY_REPORT);
            w.put_payload(dump);
        }
        Reply::HealthReport { report } => {
            w.put_u32(class::R_HEALTH_REPORT);
            w.put_payload(report);
        }
        Reply::BatchResults { codes } => {
            w.put_u32(class::R_BATCH_RESULTS);
            w.put_u32(codes.len() as u32);
            for c in codes {
                w.put_u32(*c);
            }
        }
        Reply::BatchItems { items } => {
            w.put_u32(class::R_BATCH_ITEMS);
            w.put_u32(items.len() as u32);
            for item in items {
                put_batch_got(w, item);
            }
        }
    }
    put_trace_trailer(w, frame.trace);
    Ok(())
}

/// Parses a full reply frame; `input_len` bounds the sanity checks on
/// decoded collection counts.
fn get_reply_frame(r: &mut XdrReader<'_>, input_len: usize) -> Result<ReplyFrame, WireError> {
    let seq = r.get_u64()?;
    let n_notes = r.get_u32()?;
    if n_notes as usize > input_len {
        return Err(WireError::BadValue(format!("gc note count {n_notes}")));
    }
    let mut gc_notes = Vec::with_capacity(n_notes as usize);
    for _ in 0..n_notes {
        gc_notes.push(get_gc_note(r)?);
    }
    let tag = r.get_u32()?;
    let reply = match tag {
        class::R_OK => Reply::Ok,
        class::R_ATTACHED => {
            let session = r.get_u64()?;
            let as_id = r.get_u32()?;
            let as_id = u16::try_from(as_id)
                .map_err(|_| WireError::BadValue(format!("address space id {as_id}")))?;
            Reply::Attached {
                session,
                as_id: AsId(as_id),
            }
        }
        class::R_CREATED => Reply::Created {
            resource: get_resource(r)?,
        },
        class::R_CONNECTED => Reply::Connected { conn: r.get_u64()? },
        class::R_ITEM => Reply::Item {
            ts: Timestamp::new(r.get_i64()?),
            tag: r.get_u32()?,
            payload: r.get_payload()?,
        },
        class::R_QUEUE_ITEM => Reply::QueueItem {
            ts: Timestamp::new(r.get_i64()?),
            tag: r.get_u32()?,
            ticket: r.get_u64()?,
            payload: r.get_payload()?,
        },
        class::R_NS_FOUND => Reply::NsFound {
            resource: get_resource(r)?,
            meta: r.get_string()?,
        },
        class::R_NS_ENTRIES => {
            let n = r.get_u32()?;
            if n as usize > input_len {
                return Err(WireError::BadValue(format!("entry count {n}")));
            }
            let mut entries = Vec::with_capacity(n as usize);
            for _ in 0..n {
                entries.push(NsEntry {
                    name: r.get_string()?,
                    resource: get_resource(r)?,
                    meta: r.get_string()?,
                });
            }
            Reply::NsEntries { entries }
        }
        class::R_PONG => Reply::Pong {
            nonce: r.get_u64()?,
        },
        class::R_ERROR => Reply::Error {
            code: r.get_u32()?,
            detail: r.get_string()?,
        },
        class::R_STATS_REPORT => Reply::StatsReport {
            snapshot: r.get_payload()?,
        },
        class::R_TRACE_REPORT => Reply::TraceReport {
            dump: r.get_payload()?,
        },
        class::R_HISTORY_REPORT => Reply::HistoryReport {
            dump: r.get_payload()?,
        },
        class::R_HEALTH_REPORT => Reply::HealthReport {
            report: r.get_payload()?,
        },
        class::R_BATCH_RESULTS => {
            let n = get_batch_len(r, "batch code")?;
            let mut codes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                codes.push(r.get_u32()?);
            }
            Reply::BatchResults { codes }
        }
        class::R_BATCH_ITEMS => {
            let n = get_batch_len(r, "batch item")?;
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                items.push(get_batch_got(r)?);
            }
            Reply::BatchItems { items }
        }
        t => return Err(WireError::BadTag(t)),
    };
    let trace = get_trace_trailer(r)?;
    r.finish()?;
    Ok(ReplyFrame {
        seq,
        gc_notes,
        reply,
        trace,
    })
}

impl XdrCodec {
    /// Encodes a request with the pre-zero-copy contiguous path: every
    /// payload is bulk-copied into one buffer. Kept for the
    /// cross-version compatibility tests and legacy callers; the bytes
    /// are identical to the flattened [`Codec::encode_request`] output.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::encode_request`].
    pub fn encode_request_legacy(&self, frame: &RequestFrame) -> Result<Vec<u8>, WireError> {
        let mut w = XdrWriter::with_capacity(64);
        put_request_frame(&mut w, frame)?;
        Ok(w.into_bytes())
    }

    /// Decodes a request with the pre-zero-copy copying path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode_request`].
    pub fn decode_request_legacy(&self, bytes: &[u8]) -> Result<RequestFrame, WireError> {
        let mut r = XdrReader::new(bytes);
        get_request_frame(&mut r)
    }

    /// Encodes a reply with the pre-zero-copy contiguous path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::encode_reply`].
    pub fn encode_reply_legacy(&self, frame: &ReplyFrame) -> Result<Vec<u8>, WireError> {
        let mut w = XdrWriter::with_capacity(64);
        put_reply_frame(&mut w, frame)?;
        Ok(w.into_bytes())
    }

    /// Decodes a reply with the pre-zero-copy copying path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode_reply`].
    pub fn decode_reply_legacy(&self, bytes: &[u8]) -> Result<ReplyFrame, WireError> {
        let mut r = XdrReader::new(bytes);
        get_reply_frame(&mut r, bytes.len())
    }
}

impl Codec for XdrCodec {
    fn id(&self) -> CodecId {
        CodecId::Xdr
    }

    fn encode_request(&self, frame: &RequestFrame) -> Result<EncodedFrame, WireError> {
        let mut w = XdrWriter::scatter(64);
        put_request_frame(&mut w, frame)?;
        Ok(w.into_frame())
    }

    fn decode_request(&self, bytes: &Bytes) -> Result<RequestFrame, WireError> {
        let mut r = XdrReader::with_backing(bytes);
        get_request_frame(&mut r)
    }

    fn encode_reply(&self, frame: &ReplyFrame) -> Result<EncodedFrame, WireError> {
        let mut w = XdrWriter::scatter(64);
        put_reply_frame(&mut w, frame)?;
        Ok(w.into_frame())
    }

    fn decode_reply(&self, bytes: &Bytes) -> Result<ReplyFrame, WireError> {
        let mut r = XdrReader::with_backing(bytes);
        get_reply_frame(&mut r, bytes.len())
    }

    fn encode_sack(&self, sack: &SackInfo) -> Result<EncodedFrame, WireError> {
        if sack.bitmap.len() > crate::rpc::MAX_SACK_BITMAP {
            return Err(WireError::BadValue(format!(
                "sack bitmap of {} bytes exceeds {}",
                sack.bitmap.len(),
                crate::rpc::MAX_SACK_BITMAP
            )));
        }
        // Layout mirrors a request frame's prologue (u64, then a u32
        // body tag) so a SACK misdirected at an old request decoder
        // deterministically dies on `BadTag(CLF_SACK)` instead of
        // misreading the tag bytes as part of a sequence number.
        let mut w = XdrWriter::scatter(32);
        w.put_u64(sack.ack_next);
        w.put_u32(class::CLF_SACK);
        w.put_payload(&sack.bitmap);
        Ok(w.into_frame())
    }

    fn decode_sack(&self, bytes: &Bytes) -> Result<SackInfo, WireError> {
        let mut r = XdrReader::with_backing(bytes);
        let ack_next = r.get_u64()?;
        match r.get_u32()? {
            class::CLF_SACK => {}
            t => return Err(WireError::BadTag(t)),
        }
        let bitmap = r.get_payload()?;
        if bitmap.len() > crate::rpc::MAX_SACK_BITMAP {
            return Err(WireError::BadValue(format!(
                "sack bitmap of {} bytes exceeds {}",
                bitmap.len(),
                crate::rpc::MAX_SACK_BITMAP
            )));
        }
        r.finish()?;
        Ok(SackInfo { ack_next, bitmap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::test_vectors::{all_replies, all_requests};

    #[test]
    fn every_request_round_trips() {
        let codec = XdrCodec::new();
        for (i, req) in all_requests().into_iter().enumerate() {
            let frame = RequestFrame::new(i as u64, req);
            let bytes = codec.encode_request(&frame).unwrap().to_bytes();
            let back = codec.decode_request(&bytes).unwrap();
            assert_eq!(back, frame, "request #{i}");
        }
    }

    #[test]
    fn every_reply_round_trips() {
        let codec = XdrCodec::new();
        for (i, (reply, notes)) in all_replies().into_iter().enumerate() {
            let frame = ReplyFrame::new(i as u64, notes, reply);
            let bytes = codec.encode_reply(&frame).unwrap().to_bytes();
            let back = codec.decode_reply(&bytes).unwrap();
            assert_eq!(back, frame, "reply #{i}");
        }
    }

    #[test]
    fn legacy_paths_match_scatter_paths() {
        // The legacy contiguous encode must be byte-identical to the
        // flattened scatter encode, and each decode must accept the
        // other's output.
        let codec = XdrCodec::new();
        for (i, req) in all_requests().into_iter().enumerate() {
            let frame = RequestFrame::new(i as u64, req);
            let legacy = codec.encode_request_legacy(&frame).unwrap();
            let scatter = codec.encode_request(&frame).unwrap().to_bytes();
            assert_eq!(&scatter[..], &legacy[..], "request #{i}");
            assert_eq!(codec.decode_request_legacy(&scatter).unwrap(), frame);
            assert_eq!(
                codec.decode_request(&Bytes::from(legacy)).unwrap(),
                frame,
                "request #{i}"
            );
        }
        for (i, (reply, notes)) in all_replies().into_iter().enumerate() {
            let frame = ReplyFrame::new(i as u64, notes, reply);
            let legacy = codec.encode_reply_legacy(&frame).unwrap();
            let scatter = codec.encode_reply(&frame).unwrap().to_bytes();
            assert_eq!(&scatter[..], &legacy[..], "reply #{i}");
            assert_eq!(codec.decode_reply_legacy(&scatter).unwrap(), frame);
            assert_eq!(
                codec.decode_reply(&Bytes::from(legacy)).unwrap(),
                frame,
                "reply #{i}"
            );
        }
    }

    #[test]
    fn unknown_request_tag_rejected() {
        let mut w = XdrWriter::new();
        w.put_u64(1);
        w.put_u32(999);
        let bytes = Bytes::from(w.into_bytes());
        assert_eq!(
            XdrCodec::new().decode_request(&bytes).unwrap_err(),
            WireError::BadTag(999)
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let codec = XdrCodec::new();
        let frame = RequestFrame::new(1, Request::Detach);
        let mut bytes = codec.encode_request_legacy(&frame).unwrap();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(
            codec.decode_request(&Bytes::from(bytes)).unwrap_err(),
            WireError::TrailingBytes(4)
        );
    }

    #[test]
    fn trace_context_round_trips() {
        let codec = XdrCodec::new();
        let ctx = TraceContext {
            trace: TraceId(0xdead_beef_cafe_f00d),
            span: SpanId(0x0123_4567_89ab_cdef),
        };
        let frame = RequestFrame::new(7, Request::Ping { nonce: 9 }).with_trace(Some(ctx));
        let bytes = codec.encode_request(&frame).unwrap().to_bytes();
        let back = codec.decode_request(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.trace, Some(ctx));

        let reply = ReplyFrame::new(7, vec![], Reply::Pong { nonce: 9 }).with_trace(Some(ctx));
        let bytes = codec.encode_reply(&reply).unwrap().to_bytes();
        let back = codec.decode_reply(&bytes).unwrap();
        assert_eq!(back.trace, Some(ctx));
    }

    #[test]
    fn context_free_frames_unchanged_on_wire() {
        // A frame without context must encode to exactly the pre-tracing
        // byte layout: no trailer bytes at all.
        let codec = XdrCodec::new();
        let plain = codec
            .encode_request(&RequestFrame::new(1, Request::Detach))
            .unwrap()
            .to_bytes();
        let traced = codec
            .encode_request(
                &RequestFrame::new(1, Request::Detach).with_trace(Some(TraceContext {
                    trace: TraceId(1),
                    span: SpanId(2),
                })),
            )
            .unwrap()
            .to_bytes();
        assert_eq!(traced.len(), plain.len() + 4 + 8 + 8);
        assert_eq!(&traced[..plain.len()], &plain[..]);
    }

    #[test]
    fn truncated_trace_trailer_rejected() {
        let codec = XdrCodec::new();
        let frame = RequestFrame::new(1, Request::Detach).with_trace(Some(TraceContext {
            trace: TraceId(1),
            span: SpanId(2),
        }));
        let bytes = codec.encode_request(&frame).unwrap().to_bytes();
        assert_eq!(
            codec
                .decode_request(&bytes.slice(..bytes.len() - 4))
                .unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn truncated_reply_rejected() {
        let codec = XdrCodec::new();
        let frame = ReplyFrame::new(1, vec![], Reply::Pong { nonce: 3 });
        let bytes = codec.encode_reply(&frame).unwrap().to_bytes();
        assert_eq!(
            codec
                .decode_reply(&bytes.slice(..bytes.len() - 2))
                .unwrap_err(),
            WireError::Truncated
        );
    }
}
