//! Marshalling errors.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding or decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// Padding bytes were non-zero.
    BadPadding,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A tag byte or discriminant did not match any known variant.
    BadTag(u32),
    /// A field held an out-of-range or inconsistent value.
    BadValue(String),
    /// Decoding finished with input left over.
    TrailingBytes(usize),
    /// The message exceeds the maximum frame size.
    TooLarge(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadPadding => write!(f, "non-zero padding bytes"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::BadValue(s) => write!(f, "bad value: {s}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::TooLarge(n) => write!(f, "message of {n} bytes exceeds frame limit"),
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for e in [
            WireError::Truncated,
            WireError::BadPadding,
            WireError::BadUtf8,
            WireError::BadTag(3),
            WireError::BadValue("x".into()),
            WireError::TrailingBytes(2),
            WireError::TooLarge(10),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}
