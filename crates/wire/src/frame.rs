//! Length-prefixed framing over byte streams.
//!
//! The client↔cluster transport is a TCP stream (paper §3.2.1); frames are
//! a 4-byte big-endian length followed by the codec-encoded message. A
//! generous maximum frame size guards both sides against corrupt or
//! hostile length prefixes.

use std::io::{self, Read, Write};

/// Largest frame either side will accept (16 MiB — far above the paper's
/// 190 KB frames but small enough to catch corrupt prefixes).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// Accepts any [`Write`]; pass `&mut stream` to keep ownership.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] if `payload` exceeds [`MAX_FRAME`];
/// otherwise whatever the underlying writer reports.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Accepts any [`Read`]; pass `&mut stream` to keep ownership.
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] on a short read,
/// [`io::ErrorKind::InvalidData`] on an oversized length prefix; otherwise
/// whatever the underlying reader reports.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn eof_mid_frame_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_rejected() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        let err = write_frame(&mut out, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let err = read_frame(Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
