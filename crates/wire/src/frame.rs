//! Length-prefixed framing over byte streams.
//!
//! The client↔cluster transport is a TCP stream (paper §3.2.1); frames are
//! a 4-byte big-endian length followed by the codec-encoded message. A
//! generous maximum frame size guards both sides against corrupt or
//! hostile length prefixes.
//!
//! The zero-copy data plane moves frames as [`EncodedFrame`] segment
//! lists: header bytes staged in pooled buffers plus borrowed payload
//! [`Bytes`]. [`write_encoded`] gathers the segments with vectored
//! writes so a multi-segment frame still hits the stream as one
//! syscall-sized burst, and [`read_frame_bytes`] fills a pooled buffer
//! and freezes it so decoders can hand out payload slices that outlive
//! the read loop. The legacy contiguous [`write_frame`]/[`read_frame`]
//! pair is kept for callers that don't care.

use std::io::{self, IoSlice, Read, Write};

use bytes::Bytes;

use crate::pool;

/// Largest frame either side will accept (16 MiB — far above the paper's
/// 190 KB frames but small enough to catch corrupt prefixes).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// A codec-encoded message as an ordered list of byte segments:
/// header/scalar bytes interleaved with borrowed payload [`Bytes`]
/// (scatter-gather). Flattening the segments in order yields exactly
/// the legacy contiguous encoding — the wire format is unchanged, only
/// the in-memory representation is segmented.
#[derive(Debug, Clone, Default)]
pub struct EncodedFrame {
    segments: Vec<Bytes>,
    len: usize,
}

impl EncodedFrame {
    /// An empty frame.
    #[must_use]
    pub fn new() -> Self {
        EncodedFrame::default()
    }

    /// Builds a frame from segments.
    #[must_use]
    pub fn from_segments(segments: Vec<Bytes>) -> Self {
        let len = segments.iter().map(Bytes::len).sum();
        EncodedFrame { segments, len }
    }

    /// Appends a segment.
    pub fn push(&mut self, seg: Bytes) {
        self.len += seg.len();
        self.segments.push(seg);
    }

    /// Prepends a segment (used for envelope bytes like the runtime's
    /// request/reply kind tag).
    pub fn prepend(&mut self, seg: Bytes) {
        self.len += seg.len();
        self.segments.insert(0, seg);
    }

    /// The segments in wire order.
    #[must_use]
    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// Total encoded length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the frame is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flattens into one contiguous buffer. Zero-copy when the frame
    /// is a single segment; otherwise one gather copy. Legacy
    /// transports and tests use this; the vectored paths don't.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        if self.segments.len() == 1 {
            return self.segments[0].clone();
        }
        let mut out = Vec::with_capacity(self.len);
        for s in &self.segments {
            out.extend_from_slice(s);
        }
        Bytes::from(out)
    }

    /// Consumes the frame, returning its segments.
    #[must_use]
    pub fn into_segments(self) -> Vec<Bytes> {
        self.segments
    }
}

impl From<Bytes> for EncodedFrame {
    fn from(b: Bytes) -> Self {
        EncodedFrame::from_segments(vec![b])
    }
}

/// Writes one length-prefixed frame.
///
/// Accepts any [`Write`]; pass `&mut stream` to keep ownership.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] if `payload` exceeds [`MAX_FRAME`];
/// otherwise whatever the underlying writer reports.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one length-prefixed [`EncodedFrame`] with vectored I/O: the
/// length prefix and every segment go down in as few writes as the
/// stream accepts, without flattening the payload first.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] if the frame exceeds [`MAX_FRAME`];
/// [`io::ErrorKind::WriteZero`] if the writer stops accepting bytes;
/// otherwise whatever the underlying writer reports.
pub fn write_encoded<W: Write>(mut w: W, frame: &EncodedFrame) -> io::Result<()> {
    if frame.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", frame.len()),
        ));
    }
    let header = (frame.len() as u32).to_be_bytes();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(frame.segments().len() + 1);
    bufs.push(&header);
    bufs.extend(
        frame
            .segments()
            .iter()
            .map(|s| &s[..])
            .filter(|s| !s.is_empty()),
    );

    let (mut i, mut off) = (0usize, 0usize);
    while i < bufs.len() {
        let slices: Vec<IoSlice<'_>> = std::iter::once(IoSlice::new(&bufs[i][off..]))
            .chain(bufs[i + 1..].iter().map(|b| IoSlice::new(b)))
            .collect();
        let mut n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        while i < bufs.len() && n >= bufs[i].len() - off {
            n -= bufs[i].len() - off;
            off = 0;
            i += 1;
        }
        off += n;
    }
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Accepts any [`Read`]; pass `&mut stream` to keep ownership.
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] on a short read,
/// [`io::ErrorKind::InvalidData`] on an oversized length prefix; otherwise
/// whatever the underlying reader reports.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Reads one length-prefixed frame into a pooled buffer and freezes
/// it, so decoders can return payload `Bytes` that are slice views
/// into the receive buffer (the buffer's allocation is recycled once
/// the last view drops).
///
/// # Errors
///
/// Same conditions as [`read_frame`].
pub fn read_frame_bytes<R: Read>(mut r: R) -> io::Result<Bytes> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = pool::get(len).into_vec();
    payload.resize(len, 0);
    r.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn eof_mid_frame_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame(Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_rejected() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        let err = write_frame(&mut out, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let err = read_frame(Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn encoded_frames_interleave_with_contiguous_ones() {
        let mut frame = EncodedFrame::new();
        frame.push(Bytes::from_static(b"hel"));
        frame.push(Bytes::new());
        frame.push(Bytes::from_static(b"lo"));
        assert_eq!(frame.len(), 5);
        let mut buf = Vec::new();
        write_encoded(&mut buf, &frame).unwrap();
        write_frame(&mut buf, b"plain").unwrap();
        write_encoded(&mut buf, &EncodedFrame::new()).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(&read_frame_bytes(&mut r).unwrap()[..], b"plain");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
    }

    #[test]
    fn encoded_oversized_write_rejected() {
        let frame = EncodedFrame::from(Bytes::from(vec![0u8; MAX_FRAME + 1]));
        let mut out = Vec::new();
        let err = write_encoded(&mut out, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty());
    }

    /// A writer that accepts one byte per call, forcing the vectored
    /// loop through every advance path.
    struct Dribble(Vec<u8>);

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        let mut frame = EncodedFrame::new();
        frame.push(Bytes::from_static(b"abc"));
        frame.push(Bytes::from_static(b"defg"));
        let mut w = Dribble(Vec::new());
        write_encoded(&mut w, &frame).unwrap();
        assert_eq!(read_frame(Cursor::new(w.0)).unwrap(), b"abcdefg");
    }

    #[test]
    fn flatten_is_zero_copy_for_single_segment() {
        let payload = Bytes::from(vec![9u8; 64]);
        let frame = EncodedFrame::from(payload.clone());
        assert!(frame.to_bytes().shares_allocation_with(&payload));
    }
}
