//! JDR — "Java data representation", the Java client library's wire format.
//!
//! The paper's Java client library "uses our own data representation to
//! perform the marshalling and unmarshalling of the arguments" (§3.2.1),
//! and attributes the Java client's higher latency to the fact that "in
//! Java \[marshalling and unmarshalling\] involve construction of objects"
//! while in C they are "mostly pointer manipulation" (§5.1, Result 2).
//!
//! This module reproduces that cost profile *structurally* rather than with
//! artificial delays:
//!
//! * every value is a heap-allocated node in a [`JdrValue`] tree (each
//!   field boxed, as a 2002 JVM boxed serialized members);
//! * the byte stream is produced and parsed **one byte at a time through a
//!   virtual call** ([`JdrSink`]/[`JdrSource`] trait objects, with the
//!   concrete implementations marked `#[inline(never)]`), mirroring
//!   `DataOutputStream.write(int)` dispatch;
//! * byte arrays are marshalled element-wise — no `memcpy` fast path.
//!
//! The asymmetry between this codec and [`crate::xdr`] is what regenerates
//! the Figure 12 vs Figure 13 gap; see `EXPERIMENTS.md`.
//!
//! The zero-copy data plane adds a *chunked* payload lane on top:
//! [`JdrSink::write_chunk`]/[`JdrSource::read_chunk`] default to the
//! element-wise loops (so [`VecSink`]/[`SliceSource`] keep the legacy
//! cost profile bit-for-bit), while [`SegmentSink`]/[`BytesSource`]
//! override them to move item payloads as borrowed [`Bytes`] segments
//! and slice views. Scalars and object headers still pay the boxed,
//! byte-at-a-time cost either way.

use bytes::Bytes;

use crate::error::WireError;
use crate::frame::EncodedFrame;
use crate::pool::{self, ZC_THRESHOLD};

/// Byte-at-a-time output stream (deliberately virtual).
pub trait JdrSink {
    /// Appends one byte to the stream.
    fn write_byte(&mut self, b: u8);

    /// Appends a payload chunk. The default streams it element-wise
    /// through [`JdrSink::write_byte`] — the legacy Java cost profile;
    /// zero-copy sinks override this to take the bytes by reference.
    fn write_chunk(&mut self, chunk: &Bytes) {
        for &b in chunk.iter() {
            self.write_byte(b);
        }
    }
}

/// Byte-at-a-time input stream (deliberately virtual).
pub trait JdrSource {
    /// Reads the next byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of stream.
    fn read_byte(&mut self) -> Result<u8, WireError>;

    /// Reads a payload chunk of exactly `len` bytes. The default
    /// streams it element-wise through [`JdrSource::read_byte`];
    /// zero-copy sources override this to return a slice view.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `len` bytes remain.
    fn read_chunk(&mut self, len: usize) -> Result<Bytes, WireError> {
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            buf.push(self.read_byte()?);
        }
        Ok(Bytes::from(buf))
    }
}

/// Growable byte buffer behind the [`JdrSink`] interface.
#[derive(Debug, Default)]
pub struct VecSink {
    buf: Vec<u8>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consumes the sink, returning the bytes written.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl JdrSink for VecSink {
    #[inline(never)] // keep the per-byte virtual-call cost model honest
    fn write_byte(&mut self, b: u8) {
        self.buf.push(b);
    }
}

/// Byte-slice reader behind the [`JdrSource`] interface.
#[derive(Debug)]
pub struct SliceSource<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// A source positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SliceSource { buf, pos: 0 }
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl JdrSource for SliceSource<'_> {
    #[inline(never)] // keep the per-byte virtual-call cost model honest
    fn read_byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
}

/// Scatter-gather sink for the zero-copy encode path: scalar bytes are
/// staged in a pooled buffer while payload chunks at or above
/// [`ZC_THRESHOLD`] ride as borrowed segments of the resulting
/// [`EncodedFrame`]. Flattening the frame yields exactly the bytes a
/// [`VecSink`] would have produced.
#[derive(Debug)]
pub struct SegmentSink {
    buf: Vec<u8>,
    segments: Vec<Bytes>,
}

impl SegmentSink {
    /// An empty sink staging into a pooled buffer of at least `cap`
    /// bytes.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        SegmentSink {
            buf: pool::get(cap).into_vec(),
            segments: Vec::new(),
        }
    }

    /// Seals the staged buffer into the segment list.
    fn seal(&mut self) {
        if !self.buf.is_empty() {
            self.segments
                .push(Bytes::from(std::mem::take(&mut self.buf)));
        }
    }

    /// Consumes the sink, returning the scatter-gather frame.
    #[must_use]
    pub fn into_frame(mut self) -> EncodedFrame {
        self.seal();
        EncodedFrame::from_segments(self.segments)
    }
}

impl JdrSink for SegmentSink {
    #[inline(never)] // scalars keep the per-byte virtual-call cost model
    fn write_byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn write_chunk(&mut self, chunk: &Bytes) {
        if chunk.len() >= ZC_THRESHOLD {
            self.seal();
            self.segments.push(chunk.clone());
            pool::note_copy_avoided(chunk.len());
        } else {
            self.buf.extend_from_slice(chunk);
        }
    }
}

/// Reader over a refcounted receive buffer for the zero-copy decode
/// path: payload chunks at or above [`ZC_THRESHOLD`] come back as
/// [`Bytes::slice`] views into the buffer instead of element-wise
/// copies.
#[derive(Debug)]
pub struct BytesSource<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl<'a> BytesSource<'a> {
    /// A source positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a Bytes) -> Self {
        BytesSource { buf, pos: 0 }
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl JdrSource for BytesSource<'_> {
    #[inline(never)] // scalars keep the per-byte virtual-call cost model
    fn read_byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn read_chunk(&mut self, len: usize) -> Result<Bytes, WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let start = self.pos;
        self.pos += len;
        if len >= ZC_THRESHOLD {
            pool::note_copy_avoided(len);
            Ok(self.buf.slice(start..start + len))
        } else {
            Ok(Bytes::copy_from_slice(&self.buf[start..start + len]))
        }
    }
}

mod tag {
    pub const NULL: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const INT: u8 = 2;
    pub const LONG: u8 = 3;
    pub const STR: u8 = 4;
    pub const BYTES: u8 = 5;
    pub const LIST: u8 = 6;
    pub const OBJECT: u8 = 7;
}

/// A node in the boxed object tree JDR marshals through.
///
/// Constructing one of these per field is the object-allocation cost the
/// paper measured in its Java client. Use [`JdrValue::object`] and the
/// accessors to build and inspect messages.
#[derive(Debug, Clone, PartialEq)]
pub enum JdrValue {
    /// Absent optional value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit signed integer (boxed `Integer`).
    Int(i32),
    /// 64-bit signed integer (boxed `Long`).
    Long(i64),
    /// String.
    Str(Box<str>),
    /// Byte array. Refcounted so item payloads can ride the zero-copy
    /// data plane; the legacy sinks/sources still marshal the bytes
    /// element-wise.
    Bytes(Bytes),
    /// Homogeneous list.
    List(Vec<Box<JdrValue>>),
    /// Object: class id plus boxed fields.
    Object {
        /// Class identifier (message/variant discriminator).
        class: u32,
        /// Boxed fields, in declaration order.
        fields: Vec<Box<JdrValue>>,
    },
}

impl JdrValue {
    /// Builds an object node from its class id and fields.
    #[must_use]
    pub fn object(class: u32, fields: Vec<JdrValue>) -> JdrValue {
        JdrValue::Object {
            class,
            fields: fields.into_iter().map(Box::new).collect(),
        }
    }

    /// Builds a string node.
    #[must_use]
    pub fn str(s: &str) -> JdrValue {
        JdrValue::Str(s.into())
    }

    /// Builds a byte-array node (copies, as Java serialization would).
    #[must_use]
    pub fn bytes(b: &[u8]) -> JdrValue {
        JdrValue::Bytes(Bytes::copy_from_slice(b))
    }

    /// Builds a byte-array node from a refcounted payload without
    /// copying — the zero-copy encode path's constructor.
    #[must_use]
    pub fn payload(b: Bytes) -> JdrValue {
        JdrValue::Bytes(b)
    }

    /// Reads this node as a bool.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_bool(&self) -> Result<bool, WireError> {
        match self {
            JdrValue::Bool(v) => Ok(*v),
            other => Err(type_error("bool", other)),
        }
    }

    /// Reads this node as an i32.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_i32(&self) -> Result<i32, WireError> {
        match self {
            JdrValue::Int(v) => Ok(*v),
            other => Err(type_error("int", other)),
        }
    }

    /// Reads this node as a u32 (encoded as `Int`).
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_u32(&self) -> Result<u32, WireError> {
        Ok(self.as_i32()? as u32)
    }

    /// Reads this node as an i64.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_i64(&self) -> Result<i64, WireError> {
        match self {
            JdrValue::Long(v) => Ok(*v),
            other => Err(type_error("long", other)),
        }
    }

    /// Reads this node as a u64 (encoded as `Long`).
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_u64(&self) -> Result<u64, WireError> {
        Ok(self.as_i64()? as u64)
    }

    /// Reads this node as a string slice.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_str(&self) -> Result<&str, WireError> {
        match self {
            JdrValue::Str(s) => Ok(s),
            other => Err(type_error("string", other)),
        }
    }

    /// Reads this node as a byte slice.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_bytes(&self) -> Result<&[u8], WireError> {
        match self {
            JdrValue::Bytes(b) => Ok(b),
            other => Err(type_error("bytes", other)),
        }
    }

    /// Reads this node as a refcounted payload; cloning the result is
    /// a refcount bump, not a copy.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_payload(&self) -> Result<&Bytes, WireError> {
        match self {
            JdrValue::Bytes(b) => Ok(b),
            other => Err(type_error("bytes", other)),
        }
    }

    /// Reads this node as a list.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_list(&self) -> Result<&[Box<JdrValue>], WireError> {
        match self {
            JdrValue::List(items) => Ok(items),
            other => Err(type_error("list", other)),
        }
    }

    /// Reads this node as an object, returning `(class, fields)`.
    ///
    /// # Errors
    ///
    /// [`WireError::BadValue`] if it is a different kind.
    pub fn as_object(&self) -> Result<(u32, &[Box<JdrValue>]), WireError> {
        match self {
            JdrValue::Object { class, fields } => Ok((*class, fields)),
            other => Err(type_error("object", other)),
        }
    }

    /// Reads this node as `None` (for `Null`) or `Some(self)`.
    #[must_use]
    pub fn as_option(&self) -> Option<&JdrValue> {
        match self {
            JdrValue::Null => None,
            v => Some(v),
        }
    }
}

fn type_error(wanted: &str, got: &JdrValue) -> WireError {
    let kind = match got {
        JdrValue::Null => "null",
        JdrValue::Bool(_) => "bool",
        JdrValue::Int(_) => "int",
        JdrValue::Long(_) => "long",
        JdrValue::Str(_) => "string",
        JdrValue::Bytes(_) => "bytes",
        JdrValue::List(_) => "list",
        JdrValue::Object { .. } => "object",
    };
    WireError::BadValue(format!("expected {wanted}, found {kind}"))
}

fn write_u32(sink: &mut dyn JdrSink, v: u32) {
    for b in v.to_be_bytes() {
        sink.write_byte(b);
    }
}

fn write_u64(sink: &mut dyn JdrSink, v: u64) {
    for b in v.to_be_bytes() {
        sink.write_byte(b);
    }
}

fn read_u32(src: &mut dyn JdrSource) -> Result<u32, WireError> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = (v << 8) | u32::from(src.read_byte()?);
    }
    Ok(v)
}

fn read_u64(src: &mut dyn JdrSource) -> Result<u64, WireError> {
    let mut v = 0u64;
    for _ in 0..8 {
        v = (v << 8) | u64::from(src.read_byte()?);
    }
    Ok(v)
}

/// Serializes a value tree to the sink, element by element.
pub fn write_value(value: &JdrValue, sink: &mut dyn JdrSink) {
    match value {
        JdrValue::Null => sink.write_byte(tag::NULL),
        JdrValue::Bool(v) => {
            sink.write_byte(tag::BOOL);
            sink.write_byte(u8::from(*v));
        }
        JdrValue::Int(v) => {
            sink.write_byte(tag::INT);
            write_u32(sink, *v as u32);
        }
        JdrValue::Long(v) => {
            sink.write_byte(tag::LONG);
            write_u64(sink, *v as u64);
        }
        JdrValue::Str(s) => {
            sink.write_byte(tag::STR);
            write_u32(sink, s.len() as u32);
            for &b in s.as_bytes() {
                sink.write_byte(b);
            }
        }
        JdrValue::Bytes(data) => {
            sink.write_byte(tag::BYTES);
            write_u32(sink, data.len() as u32);
            sink.write_chunk(data);
        }
        JdrValue::List(items) => {
            sink.write_byte(tag::LIST);
            write_u32(sink, items.len() as u32);
            for item in items {
                write_value(item, sink);
            }
        }
        JdrValue::Object { class, fields } => {
            sink.write_byte(tag::OBJECT);
            write_u32(sink, *class);
            write_u32(sink, fields.len() as u32);
            for field in fields {
                write_value(field, sink);
            }
        }
    }
}

/// Maximum elements a single list/object/byte-array header may declare,
/// guarding against hostile length prefixes.
const MAX_LEN: u32 = 64 * 1024 * 1024;

/// Parses a value tree from the source, constructing a boxed node per
/// value, element by element.
///
/// # Errors
///
/// [`WireError::Truncated`] on short input, [`WireError::BadTag`] on an
/// unknown type tag, [`WireError::BadValue`] on hostile lengths or bad
/// UTF-8.
pub fn read_value(src: &mut dyn JdrSource) -> Result<JdrValue, WireError> {
    let t = src.read_byte()?;
    match t {
        tag::NULL => Ok(JdrValue::Null),
        tag::BOOL => Ok(JdrValue::Bool(src.read_byte()? != 0)),
        tag::INT => Ok(JdrValue::Int(read_u32(src)? as i32)),
        tag::LONG => Ok(JdrValue::Long(read_u64(src)? as i64)),
        tag::STR => {
            let len = read_u32(src)?;
            if len > MAX_LEN {
                return Err(WireError::BadValue(format!("string length {len}")));
            }
            let mut buf = Vec::with_capacity(len as usize);
            for _ in 0..len {
                buf.push(src.read_byte()?);
            }
            let s = String::from_utf8(buf).map_err(|_| WireError::BadUtf8)?;
            Ok(JdrValue::Str(s.into_boxed_str()))
        }
        tag::BYTES => {
            let len = read_u32(src)?;
            if len > MAX_LEN {
                return Err(WireError::BadValue(format!("byte array length {len}")));
            }
            Ok(JdrValue::Bytes(src.read_chunk(len as usize)?))
        }
        tag::LIST => {
            let len = read_u32(src)?;
            if len > MAX_LEN {
                return Err(WireError::BadValue(format!("list length {len}")));
            }
            let mut items = Vec::with_capacity(len as usize);
            for _ in 0..len {
                items.push(Box::new(read_value(src)?));
            }
            Ok(JdrValue::List(items))
        }
        tag::OBJECT => {
            let class = read_u32(src)?;
            let len = read_u32(src)?;
            if len > MAX_LEN {
                return Err(WireError::BadValue(format!("field count {len}")));
            }
            let mut fields = Vec::with_capacity(len as usize);
            for _ in 0..len {
                fields.push(Box::new(read_value(src)?));
            }
            Ok(JdrValue::Object { class, fields })
        }
        other => Err(WireError::BadTag(u32::from(other))),
    }
}

/// Convenience: serializes a value tree to a fresh byte vector.
///
/// # Examples
///
/// ```
/// use dstampede_wire::jdr::{encode, decode, JdrValue};
///
/// # fn main() -> Result<(), dstampede_wire::WireError> {
/// let v = JdrValue::object(3, vec![JdrValue::Int(7), JdrValue::str("cam")]);
/// let bytes = encode(&v);
/// assert_eq!(decode(&bytes)?, v);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn encode(value: &JdrValue) -> Vec<u8> {
    let mut sink = VecSink::new();
    write_value(value, &mut sink);
    sink.into_bytes()
}

/// Convenience: parses a value tree from bytes, requiring full consumption.
///
/// # Errors
///
/// As [`read_value`], plus [`WireError::TrailingBytes`].
pub fn decode(bytes: &[u8]) -> Result<JdrValue, WireError> {
    let mut src = SliceSource::new(bytes);
    let v = read_value(&mut src)?;
    if src.remaining() > 0 {
        return Err(WireError::TrailingBytes(src.remaining()));
    }
    Ok(v)
}

/// Serializes a value tree into a scatter-gather frame: scalar bytes
/// through a pooled [`SegmentSink`], payloads as borrowed segments.
/// Flattening the frame yields exactly the [`encode`] bytes.
#[must_use]
pub fn encode_frame(value: &JdrValue) -> EncodedFrame {
    let mut sink = SegmentSink::with_capacity(64);
    write_value(value, &mut sink);
    sink.into_frame()
}

/// Parses a value tree from a refcounted receive buffer, requiring
/// full consumption; payloads come back as slice views into it.
///
/// # Errors
///
/// As [`read_value`], plus [`WireError::TrailingBytes`].
pub fn decode_bytes(bytes: &Bytes) -> Result<JdrValue, WireError> {
    let mut src = BytesSource::new(bytes);
    let v = read_value(&mut src)?;
    if src.remaining() > 0 {
        return Err(WireError::TrailingBytes(src.remaining()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            JdrValue::Null,
            JdrValue::Bool(true),
            JdrValue::Bool(false),
            JdrValue::Int(-5),
            JdrValue::Int(i32::MAX),
            JdrValue::Long(i64::MIN),
            JdrValue::str("héllo"),
            JdrValue::bytes(&[0, 255, 127]),
        ] {
            assert_eq!(decode(&encode(&v)).unwrap(), v);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = JdrValue::object(
            9,
            vec![
                JdrValue::List(vec![
                    Box::new(JdrValue::Int(1)),
                    Box::new(JdrValue::str("x")),
                ]),
                JdrValue::Null,
                JdrValue::object(2, vec![JdrValue::bytes(b"payload")]),
            ],
        );
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn empty_collections_round_trip() {
        let v = JdrValue::object(0, vec![JdrValue::List(vec![]), JdrValue::bytes(&[])]);
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn accessors_check_types() {
        let v = JdrValue::Int(3);
        assert_eq!(v.as_i32().unwrap(), 3);
        assert!(v.as_i64().is_err());
        assert!(v.as_str().is_err());
        assert!(v.as_bytes().is_err());
        assert!(v.as_list().is_err());
        assert!(v.as_object().is_err());
        assert!(v.as_bool().is_err());
        assert!(JdrValue::Null.as_option().is_none());
        assert!(v.as_option().is_some());
    }

    #[test]
    fn unsigned_accessors_reinterpret() {
        assert_eq!(JdrValue::Int(-1).as_u32().unwrap(), u32::MAX);
        assert_eq!(JdrValue::Long(-1).as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[200]).unwrap_err(), WireError::BadTag(200));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = encode(&JdrValue::Long(5));
        assert_eq!(
            decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&JdrValue::Bool(true));
        bytes.push(0);
        assert_eq!(decode(&bytes).unwrap_err(), WireError::TrailingBytes(1));
    }

    #[test]
    fn hostile_length_rejected() {
        // BYTES tag with a 4 GiB length claim but no data.
        let bytes = [tag::BYTES, 0xff, 0xff, 0xff, 0xff];
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            WireError::BadValue(_)
        ));
    }

    #[test]
    fn bad_utf8_string_rejected() {
        let bytes = [tag::STR, 0, 0, 0, 2, 0xff, 0xfe];
        assert_eq!(decode(&bytes).unwrap_err(), WireError::BadUtf8);
    }

    #[test]
    fn large_payload_round_trips() {
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        let v = JdrValue::bytes(&payload);
        let encoded = encode(&v);
        assert_eq!(encoded.len(), 1 + 4 + payload.len());
        assert_eq!(decode(&encoded).unwrap(), v);
    }

    #[test]
    fn segment_sink_flattens_to_vec_sink_bytes() {
        for len in [0usize, 5, ZC_THRESHOLD - 1, ZC_THRESHOLD, 4097] {
            let payload = Bytes::from((0..len).map(|i| i as u8).collect::<Vec<u8>>());
            let v = JdrValue::object(
                3,
                vec![
                    JdrValue::Int(7),
                    JdrValue::payload(payload),
                    JdrValue::str("tail"),
                ],
            );
            assert_eq!(
                &encode_frame(&v).to_bytes()[..],
                &encode(&v)[..],
                "len={len}"
            );
        }
    }

    #[test]
    fn segment_sink_borrows_large_payloads() {
        let payload = Bytes::from(vec![0x42u8; ZC_THRESHOLD]);
        let v = JdrValue::payload(payload.clone());
        let frame = encode_frame(&v);
        assert!(frame
            .segments()
            .iter()
            .any(|s| s.shares_allocation_with(&payload)));
    }

    #[test]
    fn bytes_source_returns_views_for_large_payloads() {
        let payload = Bytes::from(vec![0x17u8; 1000]);
        let v = JdrValue::payload(payload.clone());
        let wire = Bytes::from(encode(&v));
        let back = decode_bytes(&wire).unwrap();
        assert_eq!(back, v);
        assert!(
            back.as_payload().unwrap().shares_allocation_with(&wire),
            "large payload decode must be a view"
        );
        // Small payloads are copied so they don't pin the buffer.
        let small = JdrValue::bytes(&[1, 2, 3]);
        let wire = Bytes::from(encode(&small));
        let back = decode_bytes(&wire).unwrap();
        assert!(!back.as_payload().unwrap().shares_allocation_with(&wire));
    }
}
