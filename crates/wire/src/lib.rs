//! # dstampede-wire — marshalling substrate
//!
//! Wire formats for the D-Stampede client↔cluster RPC protocol (paper
//! §3.2.1): the [`rpc`] message vocabulary, two [`codec`]s reproducing the
//! paper's heterogeneous clients — [`codec_xdr::XdrCodec`] for the C client
//! (flat XDR, bulk copies) and [`codec_jdr::JdrCodec`] for the Java client
//! (boxed object trees, element-wise streaming) — and length-prefixed
//! [`frame`] I/O over byte streams.
//!
//! ## Example
//!
//! ```
//! use dstampede_wire::{codec_for, CodecId, Request, RequestFrame};
//!
//! # fn main() -> Result<(), dstampede_wire::WireError> {
//! let frame = RequestFrame::new(1, Request::Ping { nonce: 42 });
//! for id in [CodecId::Xdr, CodecId::Jdr] {
//!     let codec = codec_for(id);
//!     let encoded = codec.encode_request(&frame)?;
//!     assert_eq!(codec.decode_request(&encoded.to_bytes())?, frame);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Encoding produces an [`EncodedFrame`]: header bytes from the
//! size-classed [`pool`] plus item payloads as borrowed `Bytes`
//! segments (scatter-gather, zero payload copies). Decoding takes the
//! refcounted receive buffer and yields payloads as slice views into
//! it — see `DESIGN.md` §4.6 for the data-plane memory model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod codec_jdr;
pub mod codec_xdr;
pub mod error;
pub mod frame;
pub mod jdr;
pub mod pool;
pub mod rpc;
pub mod xdr;

pub use codec::{codec_for, Codec, CodecId};
pub use codec_jdr::JdrCodec;
pub use codec_xdr::XdrCodec;
pub use error::WireError;
pub use frame::{
    read_frame, read_frame_bytes, write_encoded, write_frame, EncodedFrame, MAX_FRAME,
};
pub use rpc::{
    BatchGot, BatchPutItem, GcNote, NsEntry, Reply, ReplyFrame, Request, RequestFrame, SackInfo,
    WaitSpec, MAX_SACK_BITMAP,
};
