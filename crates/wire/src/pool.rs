//! Size-classed buffer pool for the zero-copy data plane.
//!
//! Encoders stage frame headers in pooled [`BytesMut`] buffers and
//! frame readers fill pooled receive buffers; once every payload slice
//! into a buffer has been dropped, [`recycle`] recovers the allocation
//! for reuse (see [`Bytes::try_into_vec`]). The pool also owns the
//! process-wide **bytes-copied-avoided** counter: every payload that
//! rides a frame as a borrowed [`Bytes`] segment (encode) or is handed
//! out as a slice view into the receive buffer (decode) adds its
//! length here instead of being memcpy'd. Tests assert on this counter
//! to prove the path is zero-copy; `AddressSpace::stats_snapshot`
//! mirrors it into the metrics registry for `dstampede-cli stats`.
//!
//! All counters are process-global monotone atomics: the pool is
//! shared by every codec and framing call site in the process, so the
//! numbers aggregate the whole data plane.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use bytes::{Bytes, BytesMut};

/// Payloads at or above this size ride the wire as borrowed segments
/// (encode) and slice views into the receive buffer (decode); smaller
/// ones are cheaper to copy than to track, and copying them on decode
/// avoids pinning a large receive buffer for a few bytes.
pub const ZC_THRESHOLD: usize = 256;

/// Buffer capacities the pool recycles, smallest first.
pub const SIZE_CLASSES: [usize; 5] = [256, 1024, 4096, 16384, 65536];

/// Buffers kept per size class; beyond this, reclaimed buffers are
/// simply freed.
const MAX_PER_CLASS: usize = 32;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static COPIES_AVOIDED: AtomicU64 = AtomicU64::new(0);
static BYTES_COPIED_AVOIDED: AtomicU64 = AtomicU64::new(0);

/// A size-classed free list of byte buffers.
///
/// The process-global instance behind [`get`]/[`recycle`] is what the
/// data plane uses; independent instances exist only in tests.
#[derive(Debug)]
pub struct BufferPool {
    shelves: [Mutex<Vec<Vec<u8>>>; SIZE_CLASSES.len()],
}

impl BufferPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        BufferPool {
            shelves: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Smallest class index whose capacity covers `cap`, or None when
    /// `cap` exceeds the largest class.
    fn class_for(cap: usize) -> Option<usize> {
        SIZE_CLASSES.iter().position(|&c| c >= cap)
    }

    /// A cleared buffer with at least `min_capacity` bytes of
    /// capacity, recycled when the matching shelf has one.
    #[must_use]
    pub fn get(&self, min_capacity: usize) -> BytesMut {
        if let Some(class) = Self::class_for(min_capacity) {
            if let Some(buf) = self.shelves[class].lock().expect("pool lock").pop() {
                HITS.fetch_add(1, Ordering::Relaxed);
                return BytesMut::from_vec(buf);
            }
            MISSES.fetch_add(1, Ordering::Relaxed);
            return BytesMut::with_capacity(SIZE_CLASSES[class]);
        }
        // Jumbo request: allocate exactly, never shelved.
        MISSES.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(min_capacity)
    }

    /// Hands a frozen buffer back. Reclaims the allocation only when
    /// this was the last handle and it views the whole vector —
    /// payload slices legitimately keep receive buffers alive, in
    /// which case the buffer is dropped (freed when the last slice
    /// goes). Returns whether the allocation was shelved.
    pub fn recycle(&self, buf: Bytes) -> bool {
        match buf.try_into_vec() {
            Ok(v) => self.recycle_vec(v),
            Err(_) => false,
        }
    }

    /// Shelves a reclaimed vector if its capacity matches a class with
    /// room.
    pub fn recycle_vec(&self, mut v: Vec<u8>) -> bool {
        // Largest class the capacity fully covers.
        let Some(class) = SIZE_CLASSES.iter().rposition(|&c| v.capacity() >= c) else {
            return false;
        };
        let mut shelf = self.shelves[class].lock().expect("pool lock");
        if shelf.len() >= MAX_PER_CLASS {
            return false;
        }
        v.clear();
        shelf.push(v);
        RECYCLED.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

fn global() -> &'static BufferPool {
    static POOL: OnceLock<BufferPool> = OnceLock::new();
    POOL.get_or_init(BufferPool::new)
}

/// A cleared buffer from the process-global pool.
#[must_use]
pub fn get(min_capacity: usize) -> BytesMut {
    global().get(min_capacity)
}

/// Returns a frozen buffer to the process-global pool (see
/// [`BufferPool::recycle`]).
pub fn recycle(buf: Bytes) -> bool {
    global().recycle(buf)
}

/// Returns a raw vector to the process-global pool.
pub fn recycle_vec(v: Vec<u8>) -> bool {
    global().recycle_vec(v)
}

/// Records one payload of `len` bytes that crossed the data plane by
/// reference instead of by memcpy.
pub fn note_copy_avoided(len: usize) {
    COPIES_AVOIDED.fetch_add(1, Ordering::Relaxed);
    BYTES_COPIED_AVOIDED.fetch_add(len as u64, Ordering::Relaxed);
}

/// Monotone counters for the process-global pool and the zero-copy
/// payload paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from a shelf.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers whose allocation was reclaimed and shelved.
    pub recycled: u64,
    /// Payloads that crossed the data plane without a memcpy.
    pub copies_avoided: u64,
    /// Total payload bytes those reference passes avoided copying.
    pub bytes_copied_avoided: u64,
}

/// Snapshot of the process-global counters.
#[must_use]
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        copies_avoided: COPIES_AVOIDED.load(Ordering::Relaxed),
        bytes_copied_avoided: BYTES_COPIED_AVOIDED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_recycle_round_trip() {
        let pool = BufferPool::new();
        let mut buf = pool.get(1000);
        assert!(buf.capacity() >= 1000);
        buf.extend_from_slice(&[7u8; 100]);
        let frozen = buf.freeze();
        assert!(pool.recycle(frozen), "unique full-view buffer reclaims");
        let again = pool.get(1000);
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert!(again.capacity() >= 1000);
    }

    #[test]
    fn shared_buffers_are_not_reclaimed() {
        let pool = BufferPool::new();
        let mut buf = pool.get(512);
        buf.extend_from_slice(&[1u8; 512]);
        let frozen = buf.freeze();
        let slice = frozen.slice(0..256);
        assert!(!pool.recycle(frozen), "live slice must block reclaim");
        assert_eq!(&slice[..4], &[1, 1, 1, 1]);
    }

    #[test]
    fn jumbo_requests_allocate_exact() {
        let pool = BufferPool::new();
        let buf = pool.get(SIZE_CLASSES[SIZE_CLASSES.len() - 1] + 1);
        assert!(buf.capacity() > SIZE_CLASSES[SIZE_CLASSES.len() - 1]);
    }

    #[test]
    fn stats_are_monotone() {
        let before = stats();
        let b = get(64);
        recycle(b.freeze());
        note_copy_avoided(100);
        let after = stats();
        assert!(after.hits + after.misses > before.hits + before.misses);
        assert!(after.bytes_copied_avoided >= before.bytes_copied_avoided + 100);
        assert!(after.copies_avoided > before.copies_avoided);
    }
}
