//! RPC message vocabulary between end devices and the cluster.
//!
//! The D-Stampede API is "exported to the distributed end points in a
//! manner analogous to exporting a procedure call using an RPC interface"
//! (paper §3.2.1). Each API call becomes a [`Request`]; the surrogate
//! thread executes it on the cluster and answers with a [`Reply`]. Garbage
//! collection notifications for the end device ride piggy-back on replies
//! as [`GcNote`]s, delivered "at an opportune time (for e.g. when the next
//! D-Stampede API call comes from the end device)" (§3.2.4).
//!
//! Messages are plain data; the [`crate::codec`] module marshals them with
//! either XDR (C client) or JDR (Java client).

use bytes::Bytes;

use dstampede_core::{
    AsId, ChanId, ChannelAttrs, GetSpec, Interest, QueueAttrs, QueueId, ResourceId, StmError,
    TagFilter, Timestamp,
};
use dstampede_obs::TraceContext;

/// How long an operation may block on the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitSpec {
    /// Fail with `Absent`/`Full` instead of blocking.
    NonBlocking,
    /// Block until the condition is met (the surrogate thread waits).
    Forever,
    /// Block up to the given number of milliseconds.
    TimeoutMs(u32),
}

/// One entry of a [`Request::PutBatch`].
///
/// Each item carries its own optional trace context so causal tracing
/// survives batching: a batch is one frame on the wire but N logical items.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPutItem {
    /// Item timestamp.
    pub ts: Timestamp,
    /// Item user tag.
    pub tag: u32,
    /// Item payload.
    pub payload: Bytes,
    /// Per-item causal trace context.
    pub trace: Option<TraceContext>,
}

/// One entry of a [`Reply::BatchItems`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchGot {
    /// `0` for a delivered item, else the [`StmError::code`] of the
    /// per-spec failure (the remaining fields are then zero/empty).
    pub code: u32,
    /// Item timestamp.
    pub ts: Timestamp,
    /// Item user tag.
    pub tag: u32,
    /// Item payload.
    pub payload: Bytes,
    /// Settlement ticket for queue items; `0` for channel items.
    pub ticket: u64,
    /// Per-item causal trace context.
    pub trace: Option<TraceContext>,
}

/// A client-to-cluster API call.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Join the computation; the listener spawns a surrogate.
    Attach {
        /// Human-readable client name (for diagnostics and the name server).
        client_name: String,
    },
    /// Leave cleanly; the surrogate tears down.
    Detach,
    /// Liveness/latency probe.
    Ping {
        /// Echoed back in the reply.
        nonce: u64,
    },
    /// Create a channel on the cluster (in the surrogate's address space).
    ChannelCreate {
        /// Optional name-server registration name.
        name: Option<String>,
        /// Channel attributes.
        attrs: ChannelAttrs,
    },
    /// Create a queue on the cluster.
    QueueCreate {
        /// Optional name-server registration name.
        name: Option<String>,
        /// Queue attributes.
        attrs: QueueAttrs,
    },
    /// Open an input connection to a channel.
    ConnectChannelIn {
        /// Target channel.
        chan: ChanId,
        /// Where the connection starts paying attention.
        interest: Interest,
        /// Which item tags it attends to (the selective-attention
        /// filtering extension).
        filter: TagFilter,
    },
    /// Open an output connection to a channel.
    ConnectChannelOut {
        /// Target channel.
        chan: ChanId,
    },
    /// Open an input connection to a queue.
    ConnectQueueIn {
        /// Target queue.
        queue: QueueId,
    },
    /// Open an output connection to a queue.
    ConnectQueueOut {
        /// Target queue.
        queue: QueueId,
    },
    /// Close a connection previously opened in this session.
    Disconnect {
        /// Session-local connection handle.
        conn: u64,
    },
    /// Put an item into a channel.
    ChannelPut {
        /// Session-local connection handle (output mode).
        conn: u64,
        /// Item timestamp.
        ts: Timestamp,
        /// Item user tag.
        tag: u32,
        /// Item payload.
        payload: Bytes,
        /// Blocking discipline when the channel is full.
        wait: WaitSpec,
    },
    /// Get an item from a channel.
    ChannelGet {
        /// Session-local connection handle (input mode).
        conn: u64,
        /// Which item.
        spec: GetSpec,
        /// Blocking discipline while absent.
        wait: WaitSpec,
    },
    /// Mark items consumed up to and including a timestamp.
    ChannelConsume {
        /// Session-local connection handle (input mode).
        conn: u64,
        /// Consume through this timestamp.
        upto: Timestamp,
    },
    /// Advance the connection's virtual-time promise.
    ChannelSetVt {
        /// Session-local connection handle (input mode).
        conn: u64,
        /// New virtual-time floor.
        vt: Timestamp,
    },
    /// Put an item into a queue.
    QueuePut {
        /// Session-local connection handle (output mode).
        conn: u64,
        /// Item timestamp.
        ts: Timestamp,
        /// Item user tag.
        tag: u32,
        /// Item payload.
        payload: Bytes,
        /// Blocking discipline when the queue is full.
        wait: WaitSpec,
    },
    /// Get the next item from a queue.
    QueueGet {
        /// Session-local connection handle (input mode).
        conn: u64,
        /// Blocking discipline while empty.
        wait: WaitSpec,
    },
    /// Settle a queue ticket as consumed.
    QueueConsume {
        /// Session-local connection handle (input mode).
        conn: u64,
        /// Ticket returned by the corresponding get.
        ticket: u64,
    },
    /// Put an unfinished queue item back.
    QueueRequeue {
        /// Session-local connection handle (input mode).
        conn: u64,
        /// Ticket returned by the corresponding get.
        ticket: u64,
    },
    /// Register a resource with the name server.
    NsRegister {
        /// Registration name (unique).
        name: String,
        /// The resource being registered.
        resource: ResourceId,
        /// Free-form metadata ("intended use in the application").
        meta: String,
    },
    /// Look a name up in the name server.
    NsLookup {
        /// Registration name.
        name: String,
        /// Blocking discipline while unregistered.
        wait: WaitSpec,
    },
    /// Remove a name-server registration.
    NsUnregister {
        /// Registration name.
        name: String,
    },
    /// Enumerate all name-server registrations.
    NsList,
    /// Ask the cluster to queue garbage notifications for a resource so the
    /// client can run its local garbage handler (§3.2.4).
    InstallGarbageHook {
        /// Resource to watch.
        resource: ResourceId,
    },
    /// Distributed-GC epoch report: an address space's minimum virtual
    /// time, sent to the aggregator in address space 0.
    GcReport {
        /// The reporting address space.
        from: AsId,
        /// Minimum virtual-time floor across its threads.
        min_vt: Timestamp,
    },
    /// Pull a telemetry snapshot (see the `dstampede-obs` crate).
    StatsPull {
        /// `false`: only the receiving address space's metrics.
        /// `true`: the receiver fans out to its known peers and merges
        /// their snapshots into a cluster-wide one.
        cluster: bool,
    },
    /// Pull the causal-trace span dump (see `dstampede-obs::trace`).
    TracePull {
        /// `false`: only the receiving address space's spans.
        /// `true`: the receiver fans out to its known peers and merges
        /// their dumps into a cluster-wide one.
        cluster: bool,
    },
    /// Pull the flight recorder's metric history (see
    /// `dstampede-obs::history`).
    HistoryPull {
        /// `false`: only the receiving address space's recorded
        /// history. `true`: the receiver fans out to its known peers
        /// and merges their dumps into a cluster-wide one.
        cluster: bool,
    },
    /// Pull the derived health states (see `dstampede-obs::health`).
    HealthPull {
        /// `false`: only the receiving address space's health view.
        /// `true`: the receiver fans out to its known peers and merges
        /// their reports into a cluster-wide one.
        cluster: bool,
    },
    /// Explicit lease renewal between address spaces (and from long-idle
    /// end devices). Carries no payload beyond the sender's incarnation;
    /// any traffic renews the lease, heartbeats exist for idle links.
    Heartbeat {
        /// The sender's start incarnation, so a restarted peer is
        /// distinguishable from a recovered one.
        incarnation: u64,
    },
    /// Put a batch of items through one connection (channel or queue
    /// output mode) in a single frame. Answered with
    /// [`Reply::BatchResults`], one code per item in order. Entries are
    /// independent — there is no transactional atomicity.
    PutBatch {
        /// Session-local connection handle (output mode).
        conn: u64,
        /// The items, in put order.
        items: Vec<BatchPutItem>,
        /// Blocking discipline applied per item when full.
        wait: WaitSpec,
    },
    /// Get a batch of items through one connection in a single frame,
    /// answered with [`Reply::BatchItems`]. Channel connections resolve
    /// `specs` (one result per spec, non-blocking); queue connections
    /// ignore `specs` and dequeue up to `max` items non-blocking.
    GetBatch {
        /// Session-local connection handle (input mode).
        conn: u64,
        /// Per-item get specs (channel connections).
        specs: Vec<GetSpec>,
        /// Maximum items to dequeue (queue connections).
        max: u32,
    },
    /// A non-idempotent request tagged with a retry-stable id. The
    /// executor remembers `(origin, req_id)` and answers a replayed id
    /// with the original reply instead of re-executing, making the inner
    /// request safe to retry across transport timeouts.
    WithId {
        /// Retry-stable request id, unique per origin.
        req_id: u64,
        /// The wrapped request.
        req: Box<Request>,
    },
    /// Primary → follower: open (or reopen) a channel replica so
    /// subsequent [`Request::ReplicatePut`] frames have a home. Carries
    /// the primary's channel identity and creation attributes so the
    /// follower can rebuild the container byte-for-byte on promotion.
    /// Idempotent in effect: reopening an existing replica is a no-op.
    ReplicaOpenChannel {
        /// The primary-owned channel being replicated.
        chan: ChanId,
        /// Registered name, if any (adopted in the nameserver on failover).
        name: Option<String>,
        /// Creation-time attributes, replayed on promotion.
        attrs: ChannelAttrs,
    },
    /// Primary → follower: open (or reopen) a queue replica. See
    /// [`Request::ReplicaOpenChannel`].
    ReplicaOpenQueue {
        /// The primary-owned queue being replicated.
        queue: QueueId,
        /// Registered name, if any (adopted in the nameserver on failover).
        name: Option<String>,
        /// Creation-time attributes, replayed on promotion.
        attrs: QueueAttrs,
    },
    /// Primary → follower: append accepted puts to a replica. Rides the
    /// PR 4 batch item encoding; answered with [`Reply::Ok`] once the
    /// items are durable in the replica map. Appends are idempotent per
    /// `(resource, ts)` — a replayed frame overwrites with equal bytes.
    ReplicatePut {
        /// The replicated resource (channel or queue).
        resource: ResourceId,
        /// The primary's reclamation floor: the follower prunes replica
        /// items at or below it, so replicas track GC instead of growing
        /// without bound. `Timestamp::MIN` for queues (no floor notion).
        floor: Timestamp,
        /// The accepted items, in primary accept order.
        items: Vec<BatchPutItem>,
    },
}

/// One name-server registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsEntry {
    /// Registration name.
    pub name: String,
    /// The registered resource.
    pub resource: ResourceId,
    /// Free-form metadata.
    pub meta: String,
}

/// A garbage-collection notification queued for an end device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcNote {
    /// The container the item lived in.
    pub resource: ResourceId,
    /// The reclaimed item's timestamp.
    pub ts: Timestamp,
    /// The reclaimed item's user tag.
    pub tag: u32,
    /// The reclaimed payload's length.
    pub len: u32,
}

/// A cluster-to-client answer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Reply {
    /// Generic success.
    Ok,
    /// Successful attach.
    Attached {
        /// Session id assigned by the listener.
        session: u64,
        /// Address space hosting the surrogate.
        as_id: AsId,
    },
    /// Successful create.
    Created {
        /// Id of the new container.
        resource: ResourceId,
    },
    /// Successful connect.
    Connected {
        /// Session-local connection handle for subsequent calls.
        conn: u64,
    },
    /// A channel item.
    Item {
        /// Item timestamp.
        ts: Timestamp,
        /// Item user tag.
        tag: u32,
        /// Item payload.
        payload: Bytes,
    },
    /// A queue item plus its settlement ticket.
    QueueItem {
        /// Item timestamp.
        ts: Timestamp,
        /// Item user tag.
        tag: u32,
        /// Item payload.
        payload: Bytes,
        /// Ticket for consume/requeue.
        ticket: u64,
    },
    /// Successful name-server lookup.
    NsFound {
        /// The registered resource.
        resource: ResourceId,
        /// Its metadata.
        meta: String,
    },
    /// Name-server enumeration.
    NsEntries {
        /// All current registrations.
        entries: Vec<NsEntry>,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// The request's nonce.
        nonce: u64,
    },
    /// Answer to [`Request::StatsPull`]: an encoded `dstampede-obs`
    /// snapshot (its own versioned format, opaque to this layer).
    StatsReport {
        /// `Snapshot::encode()` bytes; decode with `Snapshot::decode`.
        snapshot: Bytes,
    },
    /// Answer to [`Request::TracePull`]: an encoded `dstampede-obs`
    /// trace dump (its own versioned format, opaque to this layer).
    TraceReport {
        /// `TraceDump::encode()` bytes; decode with `TraceDump::decode`.
        dump: Bytes,
    },
    /// Answer to [`Request::HistoryPull`]: an encoded `dstampede-obs`
    /// history dump (its own versioned format, opaque to this layer).
    HistoryReport {
        /// `HistoryDump::encode()` bytes; decode with
        /// `HistoryDump::decode`.
        dump: Bytes,
    },
    /// Answer to [`Request::HealthPull`]: an encoded `dstampede-obs`
    /// health report (its own versioned format, opaque to this layer).
    HealthReport {
        /// `HealthReport::encode()` bytes; decode with
        /// `HealthReport::decode`.
        report: Bytes,
    },
    /// Answer to [`Request::PutBatch`]: one [`StmError::code`] per item in
    /// request order, `0` meaning success.
    BatchResults {
        /// Per-item outcome codes.
        codes: Vec<u32>,
    },
    /// Answer to [`Request::GetBatch`].
    BatchItems {
        /// Delivered items and per-spec failures, in order.
        items: Vec<BatchGot>,
    },
    /// The operation failed.
    Error {
        /// [`StmError::code`] of the failure.
        code: u32,
        /// Human-readable detail.
        detail: String,
    },
}

impl Reply {
    /// Wraps an [`StmError`] for the wire.
    #[must_use]
    pub fn from_error(e: &StmError) -> Reply {
        Reply::Error {
            code: e.code(),
            detail: e.detail().to_owned(),
        }
    }

    /// Converts an error reply back into an [`StmError`], or returns the
    /// reply unchanged.
    ///
    /// # Errors
    ///
    /// The transported [`StmError`] when `self` is [`Reply::Error`].
    pub fn into_result(self) -> Result<Reply, StmError> {
        match self {
            Reply::Error { code, detail } => Err(StmError::from_code(code, &detail)),
            other => Ok(other),
        }
    }
}

/// Upper bound on a [`SackInfo`] bitmap accepted by the decoders —
/// 8 KiB of bitmap covers a 65,536-packet window, far beyond any
/// configured CLF send window.
pub const MAX_SACK_BITMAP: usize = 8192;

/// A CLF selective-acknowledgment frame body (DESIGN.md §4.10).
///
/// The receiver's view of its reorder window: `ack_next` is the
/// cumulative frontier (every packet with `seq < ack_next` has been
/// received), and the bitmap marks packets received out of order above
/// it. Packet `ack_next` itself is by definition missing, so bit `i`
/// of the bitmap (byte `i / 8`, LSB first within a byte) refers to
/// packet `ack_next + 1 + i`.
///
/// This is a standalone frame body — it rides inside CLF datagrams,
/// not inside the RPC envelope — but it is encoded by the session
/// codecs so both XDR and JDR peers can produce and consume it, and so
/// the cross-codec property suites cover it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SackInfo {
    /// Next in-order sequence number the receiver expects.
    pub ack_next: u64,
    /// Out-of-order receipt bitmap; trailing zero bytes carry no
    /// information and may be trimmed by the encoder.
    pub bitmap: Bytes,
}

impl SackInfo {
    /// Whether bit `i` (packet `ack_next + 1 + i`) is set.
    #[must_use]
    pub fn is_set(&self, i: usize) -> bool {
        self.bitmap
            .get(i / 8)
            .is_some_and(|byte| byte & (1 << (i % 8)) != 0)
    }

    /// The sequence numbers the bitmap reports as received out of order.
    /// Bits that would name a sequence past `u64::MAX` (only reachable
    /// in a forged frame — real windows never get near wraparound) are
    /// ignored rather than wrapped.
    #[must_use]
    pub fn sacked_seqs(&self) -> Vec<u64> {
        (0..self.bitmap.len() * 8)
            .filter(|&i| self.is_set(i))
            .filter_map(|i| self.ack_next.checked_add(1 + i as u64))
            .collect()
    }
}

/// A request with its sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-assigned sequence number, echoed in the reply.
    pub seq: u64,
    /// The call.
    pub req: Request,
    /// Optional causal trace context. Wire-compatible in both codecs:
    /// an absent field decodes as `None`, so old peers interoperate.
    pub trace: Option<TraceContext>,
}

impl RequestFrame {
    /// A frame with no trace context.
    #[must_use]
    pub fn new(seq: u64, req: Request) -> Self {
        RequestFrame {
            seq,
            req,
            trace: None,
        }
    }

    /// Attaches (or clears) a trace context, builder-style.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<TraceContext>) -> Self {
        self.trace = trace;
        self
    }
}

/// A reply with its sequence number and piggy-backed GC notes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyFrame {
    /// Sequence number of the request being answered.
    pub seq: u64,
    /// Garbage notifications for the end device (possibly empty).
    pub gc_notes: Vec<GcNote>,
    /// The answer.
    pub reply: Reply,
    /// Optional causal trace context (e.g. the context carried by a
    /// returned item). Absent field decodes as `None`.
    pub trace: Option<TraceContext>,
}

impl ReplyFrame {
    /// A frame with no trace context.
    #[must_use]
    pub fn new(seq: u64, gc_notes: Vec<GcNote>, reply: Reply) -> Self {
        ReplyFrame {
            seq,
            gc_notes,
            reply,
            trace: None,
        }
    }

    /// Attaches (or clears) a trace context, builder-style.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<TraceContext>) -> Self {
        self.trace = trace;
        self
    }
}

/// Exhaustive message samples used by codec round-trip tests (one per
/// variant, with edge-case field values). Not part of the public API.
#[doc(hidden)]
pub mod test_vectors {
    use super::*;
    use dstampede_core::{ChanId, ChannelAttrs, GcPolicy, OverflowPolicy, QueueAttrs};

    fn chan(owner: u16, index: u32) -> ChanId {
        ChanId {
            owner: AsId(owner),
            index,
        }
    }

    fn queue(owner: u16, index: u32) -> QueueId {
        QueueId {
            owner: AsId(owner),
            index,
        }
    }

    /// One sample of every request variant.
    #[must_use]
    pub fn all_requests() -> Vec<Request> {
        vec![
            Request::Attach {
                client_name: "camera-0".into(),
            },
            Request::Attach {
                client_name: String::new(),
            },
            Request::Detach,
            Request::Ping { nonce: u64::MAX },
            Request::ChannelCreate {
                name: Some("video".into()),
                attrs: ChannelAttrs::builder()
                    .capacity(16)
                    .overflow(OverflowPolicy::DropOldest)
                    .gc(GcPolicy::Transparent)
                    .build(),
            },
            Request::ChannelCreate {
                name: None,
                attrs: ChannelAttrs::default(),
            },
            Request::QueueCreate {
                name: Some("work".into()),
                attrs: QueueAttrs::builder()
                    .capacity(4)
                    .overflow(OverflowPolicy::Reject)
                    .build(),
            },
            Request::QueueCreate {
                name: None,
                attrs: QueueAttrs::default(),
            },
            Request::ConnectChannelIn {
                chan: chan(1, 2),
                interest: Interest::FromEarliest,
                filter: TagFilter::Any,
            },
            Request::ConnectChannelIn {
                chan: chan(0, 1),
                interest: Interest::FromLatest,
                filter: TagFilter::Only(vec![0, 7, u32::MAX]),
            },
            Request::ConnectChannelIn {
                chan: chan(65535, u32::MAX),
                interest: Interest::FromTs(Timestamp::new(-9)),
                filter: TagFilter::Stripe {
                    modulus: 4,
                    remainder: 3,
                },
            },
            Request::ConnectChannelOut { chan: chan(3, 4) },
            Request::ConnectQueueIn { queue: queue(1, 1) },
            Request::ConnectQueueOut { queue: queue(2, 7) },
            Request::Disconnect { conn: 42 },
            Request::ChannelPut {
                conn: 7,
                ts: Timestamp::new(i64::MIN),
                tag: 3,
                payload: Bytes::from_static(b"frame data"),
                wait: WaitSpec::Forever,
            },
            Request::ChannelPut {
                conn: 7,
                ts: Timestamp::new(0),
                tag: 0,
                payload: Bytes::new(),
                wait: WaitSpec::NonBlocking,
            },
            Request::ChannelGet {
                conn: 8,
                spec: GetSpec::Exact(Timestamp::new(55)),
                wait: WaitSpec::TimeoutMs(1500),
            },
            Request::ChannelGet {
                conn: 8,
                spec: GetSpec::Latest,
                wait: WaitSpec::NonBlocking,
            },
            Request::ChannelGet {
                conn: 8,
                spec: GetSpec::Earliest,
                wait: WaitSpec::Forever,
            },
            Request::ChannelGet {
                conn: 8,
                spec: GetSpec::After(Timestamp::new(-1)),
                wait: WaitSpec::Forever,
            },
            Request::ChannelConsume {
                conn: 9,
                upto: Timestamp::new(100),
            },
            Request::ChannelSetVt {
                conn: 9,
                vt: Timestamp::new(i64::MAX),
            },
            Request::QueuePut {
                conn: 10,
                ts: Timestamp::new(5),
                tag: 2,
                payload: Bytes::from_static(&[0xff, 0x00, 0x80]),
                wait: WaitSpec::TimeoutMs(0),
            },
            Request::QueueGet {
                conn: 11,
                wait: WaitSpec::Forever,
            },
            Request::QueueConsume {
                conn: 11,
                ticket: 77,
            },
            Request::QueueRequeue {
                conn: 11,
                ticket: 78,
            },
            Request::NsRegister {
                name: "mixer-out".into(),
                resource: ResourceId::Channel(chan(0, 9)),
                meta: "composite video".into(),
            },
            Request::NsLookup {
                name: "mixer-out".into(),
                wait: WaitSpec::TimeoutMs(3000),
            },
            Request::NsUnregister {
                name: "mixer-out".into(),
            },
            Request::NsList,
            Request::InstallGarbageHook {
                resource: ResourceId::Queue(queue(1, 3)),
            },
            Request::GcReport {
                from: AsId(3),
                min_vt: Timestamp::new(4096),
            },
            Request::StatsPull { cluster: false },
            Request::StatsPull { cluster: true },
            Request::TracePull { cluster: false },
            Request::TracePull { cluster: true },
            Request::HistoryPull { cluster: false },
            Request::HistoryPull { cluster: true },
            Request::HealthPull { cluster: false },
            Request::HealthPull { cluster: true },
            Request::Heartbeat { incarnation: 0 },
            Request::Heartbeat {
                incarnation: u64::MAX,
            },
            Request::WithId {
                req_id: 1,
                req: Box::new(Request::QueuePut {
                    conn: 10,
                    ts: Timestamp::new(5),
                    tag: 2,
                    payload: Bytes::from_static(&[9, 8]),
                    wait: WaitSpec::NonBlocking,
                }),
            },
            Request::WithId {
                req_id: u64::MAX,
                req: Box::new(Request::ConnectQueueIn { queue: queue(2, 2) }),
            },
            Request::PutBatch {
                conn: 12,
                items: vec![
                    BatchPutItem {
                        ts: Timestamp::new(1),
                        tag: 0,
                        payload: Bytes::from_static(b"first"),
                        trace: None,
                    },
                    BatchPutItem {
                        ts: Timestamp::new(-2),
                        tag: u32::MAX,
                        payload: Bytes::new(),
                        trace: Some(dstampede_obs::TraceContext {
                            trace: dstampede_obs::TraceId(7),
                            span: dstampede_obs::SpanId(8),
                        }),
                    },
                ],
                wait: WaitSpec::NonBlocking,
            },
            Request::PutBatch {
                conn: 13,
                items: vec![],
                wait: WaitSpec::Forever,
            },
            Request::GetBatch {
                conn: 14,
                specs: vec![
                    GetSpec::Exact(Timestamp::new(3)),
                    GetSpec::Latest,
                    GetSpec::Earliest,
                    GetSpec::After(Timestamp::new(i64::MIN)),
                ],
                max: 0,
            },
            Request::GetBatch {
                conn: 15,
                specs: vec![],
                max: 32,
            },
            Request::ReplicaOpenChannel {
                chan: chan(2, 7),
                name: Some("video-frames".into()),
                attrs: ChannelAttrs::default(),
            },
            Request::ReplicaOpenChannel {
                chan: chan(3, 0),
                name: None,
                attrs: ChannelAttrs::default(),
            },
            Request::ReplicaOpenQueue {
                queue: queue(2, 9),
                name: Some("work".into()),
                attrs: QueueAttrs::default(),
            },
            Request::ReplicaOpenQueue {
                queue: queue(1, 1),
                name: None,
                attrs: QueueAttrs::default(),
            },
            Request::ReplicatePut {
                resource: ResourceId::Channel(chan(2, 7)),
                floor: Timestamp::new(10),
                items: vec![
                    BatchPutItem {
                        ts: Timestamp::new(11),
                        tag: 3,
                        payload: Bytes::from_static(b"replica"),
                        trace: None,
                    },
                    BatchPutItem {
                        ts: Timestamp::new(12),
                        tag: 0,
                        payload: Bytes::new(),
                        trace: Some(dstampede_obs::TraceContext {
                            trace: dstampede_obs::TraceId(21),
                            span: dstampede_obs::SpanId(22),
                        }),
                    },
                ],
            },
            Request::ReplicatePut {
                resource: ResourceId::Queue(queue(2, 9)),
                floor: Timestamp::new(i64::MIN),
                items: vec![],
            },
        ]
    }

    /// One sample of every reply variant, paired with GC-note piggybacks.
    #[must_use]
    pub fn all_replies() -> Vec<(Reply, Vec<GcNote>)> {
        let note = GcNote {
            resource: ResourceId::Channel(chan(1, 2)),
            ts: Timestamp::new(4),
            tag: 1,
            len: 4096,
        };
        let note2 = GcNote {
            resource: ResourceId::Queue(queue(2, 3)),
            ts: Timestamp::new(-4),
            tag: 0,
            len: 0,
        };
        vec![
            (Reply::Ok, vec![]),
            (Reply::Ok, vec![note, note2]),
            (
                Reply::Attached {
                    session: 12,
                    as_id: AsId(3),
                },
                vec![],
            ),
            (
                Reply::Created {
                    resource: ResourceId::Channel(chan(9, 1)),
                },
                vec![note],
            ),
            (Reply::Connected { conn: 5 }, vec![]),
            (
                Reply::Item {
                    ts: Timestamp::new(30),
                    tag: 7,
                    payload: Bytes::from_static(b"pixels"),
                },
                vec![],
            ),
            (
                Reply::Item {
                    ts: Timestamp::new(0),
                    tag: 0,
                    payload: Bytes::new(),
                },
                vec![note],
            ),
            (
                Reply::QueueItem {
                    ts: Timestamp::new(31),
                    tag: 2,
                    payload: Bytes::from_static(&[1, 2, 3, 4, 5]),
                    ticket: 99,
                },
                vec![],
            ),
            (
                Reply::NsFound {
                    resource: ResourceId::Queue(queue(0, 8)),
                    meta: "tracker input".into(),
                },
                vec![],
            ),
            (Reply::NsEntries { entries: vec![] }, vec![]),
            (
                Reply::NsEntries {
                    entries: vec![
                        NsEntry {
                            name: "a".into(),
                            resource: ResourceId::Channel(chan(1, 1)),
                            meta: String::new(),
                        },
                        NsEntry {
                            name: "b".into(),
                            resource: ResourceId::Queue(queue(1, 2)),
                            meta: "m".into(),
                        },
                    ],
                },
                vec![],
            ),
            (Reply::Pong { nonce: 0 }, vec![]),
            (
                Reply::StatsReport {
                    snapshot: Bytes::from_static(b"obs1\nS as-0\n"),
                },
                vec![],
            ),
            (
                Reply::StatsReport {
                    snapshot: Bytes::new(),
                },
                vec![note],
            ),
            (
                Reply::TraceReport {
                    dump: Bytes::from_static(b"trc1 0\n"),
                },
                vec![],
            ),
            (Reply::TraceReport { dump: Bytes::new() }, vec![note2]),
            (
                Reply::HistoryReport {
                    dump: Bytes::from_static(b"hst1\nR as-0 stm puts - v 0 1 5:1\n"),
                },
                vec![],
            ),
            (Reply::HistoryReport { dump: Bytes::new() }, vec![note]),
            (
                Reply::HealthReport {
                    report: Bytes::from_static(b"hlt1\nE as-0 peer:as-1 healthy 0 3 ok\n"),
                },
                vec![],
            ),
            (
                Reply::HealthReport {
                    report: Bytes::new(),
                },
                vec![note2],
            ),
            (
                Reply::Error {
                    code: StmError::Full.code(),
                    detail: String::new(),
                },
                vec![],
            ),
            (
                Reply::Error {
                    code: 14,
                    detail: "bad tag".into(),
                },
                vec![note],
            ),
            (Reply::BatchResults { codes: vec![] }, vec![]),
            (
                Reply::BatchResults {
                    codes: vec![0, StmError::Full.code(), 0, StmError::TsExists.code()],
                },
                vec![note],
            ),
            (Reply::BatchItems { items: vec![] }, vec![]),
            (
                Reply::BatchItems {
                    items: vec![
                        BatchGot {
                            code: 0,
                            ts: Timestamp::new(5),
                            tag: 2,
                            payload: Bytes::from_static(b"chunk"),
                            ticket: 0,
                            trace: Some(dstampede_obs::TraceContext {
                                trace: dstampede_obs::TraceId(1),
                                span: dstampede_obs::SpanId(2),
                            }),
                        },
                        BatchGot {
                            code: StmError::Absent.code(),
                            ts: Timestamp::new(0),
                            tag: 0,
                            payload: Bytes::new(),
                            ticket: 0,
                            trace: None,
                        },
                        BatchGot {
                            code: 0,
                            ts: Timestamp::new(-1),
                            tag: 9,
                            payload: Bytes::from_static(&[0xde, 0xad]),
                            ticket: u64::MAX,
                            trace: None,
                        },
                    ],
                },
                vec![note2],
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_error_round_trip() {
        let e = StmError::Full;
        let reply = Reply::from_error(&e);
        assert_eq!(reply.into_result().unwrap_err(), e);
        assert_eq!(Reply::Ok.into_result().unwrap(), Reply::Ok);
    }

    #[test]
    fn reply_error_preserves_protocol_detail() {
        let e = StmError::Protocol("weird".into());
        let reply = Reply::from_error(&e);
        assert_eq!(reply.into_result().unwrap_err(), e);
    }

    #[test]
    fn frames_are_plain_data() {
        let f = RequestFrame::new(3, Request::Ping { nonce: 9 });
        assert_eq!(f.clone(), f);
        assert_eq!(f.trace, None);
        let r = ReplyFrame::new(3, vec![], Reply::Pong { nonce: 9 });
        assert_eq!(r.clone(), r);
        assert_eq!(r.trace, None);
    }

    #[test]
    fn with_trace_attaches_context() {
        use dstampede_obs::{SpanId, TraceId};
        let ctx = TraceContext {
            trace: TraceId(7),
            span: SpanId(8),
        };
        let f = RequestFrame::new(1, Request::Detach).with_trace(Some(ctx));
        assert_eq!(f.trace, Some(ctx));
        let r = ReplyFrame::new(1, vec![], Reply::Ok).with_trace(Some(ctx));
        assert_eq!(r.trace, Some(ctx));
    }
}
