//! XDR-style marshalling primitives (the C client library's wire format).
//!
//! The paper's C client library marshals arguments with XDR (RFC 1832):
//! big-endian fixed-width scalars, opaque byte arrays padded to 4-byte
//! boundaries, strings as length-prefixed opaque data. Marshalling is
//! "mostly pointer manipulation" (paper §5.1, Result 2): scalars are
//! written directly and payloads are bulk-copied — the cheap cost profile
//! that makes the C client fast in Experiment 2.

use bytes::Bytes;

use crate::error::WireError;
use crate::frame::EncodedFrame;
use crate::pool::{self, ZC_THRESHOLD};

/// Pads a length up to the next multiple of four.
#[must_use]
pub fn padded_len(len: usize) -> usize {
    (len + 3) & !3
}

/// Writer of XDR-encoded data into a growable buffer.
///
/// Two modes share every `put_*` path. The contiguous mode
/// ([`XdrWriter::new`]/[`XdrWriter::with_capacity`]) writes everything
/// into one buffer — the legacy layout. The scatter mode
/// ([`XdrWriter::scatter`]) stages scalars in a pooled buffer but
/// emits large payloads as borrowed [`Bytes`] segments
/// ([`XdrWriter::put_payload`]), producing an [`EncodedFrame`] whose
/// flattened bytes are identical to the contiguous encoding.
///
/// # Examples
///
/// ```
/// use dstampede_wire::xdr::{XdrReader, XdrWriter};
///
/// # fn main() -> Result<(), dstampede_wire::WireError> {
/// let mut w = XdrWriter::new();
/// w.put_u32(7);
/// w.put_string("cam0");
/// let buf = w.into_bytes();
///
/// let mut r = XdrReader::new(&buf);
/// assert_eq!(r.get_u32()?, 7);
/// assert_eq!(r.get_string()?, "cam0");
/// r.finish()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct XdrWriter {
    buf: Vec<u8>,
    segments: Vec<Bytes>,
    /// Bytes already sealed into `segments`.
    sealed: usize,
    /// Whether `put_payload` may emit borrowed segments.
    scatter: bool,
}

impl XdrWriter {
    /// An empty contiguous-mode writer.
    #[must_use]
    pub fn new() -> Self {
        XdrWriter::default()
    }

    /// An empty contiguous-mode writer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        XdrWriter {
            buf: Vec::with_capacity(cap),
            ..XdrWriter::default()
        }
    }

    /// An empty scatter-mode writer staging into a pooled buffer:
    /// payloads at or above [`ZC_THRESHOLD`] become borrowed segments
    /// of the resulting [`EncodedFrame`] instead of being copied.
    #[must_use]
    pub fn scatter(cap: usize) -> Self {
        XdrWriter {
            buf: pool::get(cap).into_vec(),
            segments: Vec::new(),
            sealed: 0,
            scatter: true,
        }
    }

    /// Bytes written so far (across all segments).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sealed + self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seals the staged buffer into the segment list.
    fn seal(&mut self) {
        if !self.buf.is_empty() {
            let seg = Bytes::from(std::mem::take(&mut self.buf));
            self.sealed += seg.len();
            self.segments.push(seg);
        }
    }

    /// Consumes the writer, returning the encoded bytes as one
    /// contiguous vector (flattening any scatter segments).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        if self.segments.is_empty() {
            return self.buf;
        }
        let mut out = Vec::with_capacity(self.len());
        for s in &self.segments {
            out.extend_from_slice(s);
        }
        out.extend_from_slice(&self.buf);
        out
    }

    /// Consumes the writer, returning the scatter-gather frame. In
    /// contiguous mode this is a single-segment frame.
    #[must_use]
    pub fn into_frame(mut self) -> EncodedFrame {
        self.seal();
        EncodedFrame::from_segments(self.segments)
    }

    /// Writes an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes an unsigned 64-bit integer ("unsigned hyper").
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a signed 64-bit integer ("hyper").
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a boolean as an XDR int (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(u32::from(v));
    }

    /// Writes an IEEE-754 double.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes variable-length opaque data: length, bytes, zero padding to a
    /// four-byte boundary.
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.buf.extend_from_slice(data);
        let pad = padded_len(data.len()) - data.len();
        self.buf.extend_from_slice(&[0u8; 3][..pad]);
    }

    /// Writes an item payload as opaque data. Byte-identical to
    /// [`XdrWriter::put_opaque`], but in scatter mode payloads at or
    /// above [`ZC_THRESHOLD`] are emitted as borrowed segments —
    /// refcount bumps, not memcpys; the pad bytes then open the next
    /// staged segment.
    pub fn put_payload(&mut self, payload: &Bytes) {
        let len = payload.len();
        self.put_u32(len as u32);
        if self.scatter && len >= ZC_THRESHOLD {
            self.seal();
            self.sealed += len;
            self.segments.push(payload.clone());
            pool::note_copy_avoided(len);
        } else {
            self.buf.extend_from_slice(payload);
        }
        let pad = padded_len(len) - len;
        self.buf.extend_from_slice(&[0u8; 3][..pad]);
    }

    /// Writes a UTF-8 string as opaque data.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Writes an optional value: a presence flag followed by the value.
    pub fn put_option<T, F>(&mut self, v: Option<&T>, mut f: F)
    where
        F: FnMut(&mut Self, &T),
    {
        match v {
            Some(inner) => {
                self.put_bool(true);
                f(self, inner);
            }
            None => self.put_bool(false),
        }
    }
}

/// Reader of XDR-encoded data from a byte slice.
///
/// When constructed over a refcounted buffer
/// ([`XdrReader::with_backing`]), [`XdrReader::get_payload`] yields
/// large payloads as [`Bytes::slice`] views into that buffer — zero
/// copy, alias-safe because the views keep the allocation alive.
#[derive(Debug)]
pub struct XdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
    backing: Option<&'a Bytes>,
}

impl<'a> XdrReader<'a> {
    /// A reader positioned at the start of `buf`. Payload reads copy
    /// (the legacy decode path).
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        XdrReader {
            buf,
            pos: 0,
            backing: None,
        }
    }

    /// A reader over a refcounted receive buffer: payload reads at or
    /// above [`ZC_THRESHOLD`] return slice views instead of copies.
    #[must_use]
    pub fn with_backing(bytes: &'a Bytes) -> Self {
        XdrReader {
            buf: bytes,
            pos: 0,
            backing: Some(bytes),
        }
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads an unsigned 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than four bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a signed 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than four bytes remain.
    pub fn get_i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads an unsigned 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than eight bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a signed 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than eight bytes remain.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on short input; [`WireError::BadValue`] if
    /// the integer is neither 0 nor 1.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadValue(format!("bool encoded as {v}"))),
        }
    }

    /// Reads an IEEE-754 double.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than eight bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads variable-length opaque data (borrowing from the input).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on short input; [`WireError::BadPadding`]
    /// if the pad bytes are non-zero.
    pub fn get_opaque(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        let data = self.take(len)?;
        let pad = padded_len(len) - len;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(WireError::BadPadding);
        }
        Ok(data)
    }

    /// Reads an item payload written by [`XdrWriter::put_payload`] (or
    /// [`XdrWriter::put_opaque`] — the encodings are identical). With
    /// a backing buffer, payloads at or above [`ZC_THRESHOLD`] come
    /// back as slice views into it; smaller ones (and all reads
    /// without backing) are copied, which keeps tiny payloads from
    /// pinning a large receive buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`XdrReader::get_opaque`].
    pub fn get_payload(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_u32()? as usize;
        let off = self.pos;
        let data = self.take(len)?;
        let pad = padded_len(len) - len;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(WireError::BadPadding);
        }
        match self.backing {
            Some(b) if len >= ZC_THRESHOLD => {
                pool::note_copy_avoided(len);
                Ok(b.slice(off..off + len))
            }
            _ => Ok(Bytes::copy_from_slice(data)),
        }
    }

    /// Reads a UTF-8 string.
    ///
    /// # Errors
    ///
    /// As [`XdrReader::get_opaque`], plus [`WireError::BadUtf8`].
    pub fn get_string(&mut self) -> Result<String, WireError> {
        let data = self.get_opaque()?;
        String::from_utf8(data.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads an optional value encoded by [`XdrWriter::put_option`].
    ///
    /// # Errors
    ///
    /// Propagates errors from the presence flag and the inner decoder.
    pub fn get_option<T, F>(&mut self, mut f: F) -> Result<Option<T>, WireError>
    where
        F: FnMut(&mut Self) -> Result<T, WireError>,
    {
        if self.get_bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Asserts that the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] if input remains.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = XdrWriter::new();
        w.put_u32(0xdead_beef);
        w.put_i32(-7);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i64(i64::MIN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(3.25);
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_i32().unwrap(), -7);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), 3.25);
        r.finish().unwrap();
    }

    #[test]
    fn scalars_are_big_endian() {
        let mut w = XdrWriter::new();
        w.put_u32(1);
        assert_eq!(w.into_bytes(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn opaque_pads_to_four_bytes() {
        for len in 0..=9 {
            let data: Vec<u8> = (0..len as u8).collect();
            let mut w = XdrWriter::new();
            w.put_opaque(&data);
            let buf = w.into_bytes();
            assert_eq!(buf.len(), 4 + padded_len(len), "len={len}");
            let mut r = XdrReader::new(&buf);
            assert_eq!(r.get_opaque().unwrap(), &data[..]);
            r.finish().unwrap();
        }
    }

    #[test]
    fn string_round_trips() {
        let mut w = XdrWriter::new();
        w.put_string("héllo 世界");
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf);
        assert_eq!(r.get_string().unwrap(), "héllo 世界");
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = XdrWriter::new();
        w.put_opaque(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf);
        assert_eq!(r.get_string().unwrap_err(), WireError::BadUtf8);
    }

    #[test]
    fn nonzero_padding_rejected() {
        let mut w = XdrWriter::new();
        w.put_opaque(&[1]);
        let mut buf = w.into_bytes();
        buf[6] = 0xcc; // corrupt a pad byte
        let mut r = XdrReader::new(&buf);
        assert_eq!(r.get_opaque().unwrap_err(), WireError::BadPadding);
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = XdrReader::new(&[0, 0]);
        assert_eq!(r.get_u32().unwrap_err(), WireError::Truncated);
        // Opaque whose declared length exceeds what is present.
        let mut w = XdrWriter::new();
        w.put_opaque(b"abcdef");
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf[..6]);
        assert_eq!(r.get_opaque().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn bad_bool_rejected() {
        let mut w = XdrWriter::new();
        w.put_u32(2);
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf);
        assert!(matches!(r.get_bool(), Err(WireError::BadValue(_))));
    }

    #[test]
    fn option_round_trips() {
        let mut w = XdrWriter::new();
        w.put_option(Some(&5u32), |w, v| w.put_u32(*v));
        w.put_option::<u32, _>(None, |w, v| w.put_u32(*v));
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf);
        assert_eq!(r.get_option(|r| r.get_u32()).unwrap(), Some(5));
        assert_eq!(r.get_option(|r| r.get_u32()).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn finish_detects_trailing_bytes() {
        let mut w = XdrWriter::new();
        w.put_u32(1);
        w.put_u32(2);
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf);
        let _ = r.get_u32().unwrap();
        assert_eq!(r.finish().unwrap_err(), WireError::TrailingBytes(4));
    }

    #[test]
    fn padded_len_math() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 4);
        assert_eq!(padded_len(4), 4);
        assert_eq!(padded_len(5), 8);
    }

    /// The scatter encoding must flatten to exactly the contiguous
    /// encoding — including the pad bytes that land at the start of
    /// the segment after a borrowed payload.
    #[test]
    fn scatter_flattens_to_contiguous_layout() {
        for len in [
            0usize,
            5,
            ZC_THRESHOLD - 1,
            ZC_THRESHOLD,
            ZC_THRESHOLD + 3,
            4097,
        ] {
            let payload = Bytes::from((0..len).map(|i| i as u8).collect::<Vec<u8>>());
            let mut contiguous = XdrWriter::new();
            contiguous.put_u32(7);
            contiguous.put_payload(&payload);
            contiguous.put_u64(9);
            let mut scattered = XdrWriter::scatter(64);
            scattered.put_u32(7);
            scattered.put_payload(&payload);
            scattered.put_u64(9);
            assert_eq!(scattered.len(), contiguous.len(), "len={len}");
            assert_eq!(scattered.into_bytes(), contiguous.into_bytes(), "len={len}");
        }
    }

    #[test]
    fn scatter_borrows_large_payloads() {
        let payload = Bytes::from(vec![0xabu8; ZC_THRESHOLD]);
        let mut w = XdrWriter::scatter(64);
        w.put_payload(&payload);
        let frame = w.into_frame();
        assert!(
            frame
                .segments()
                .iter()
                .any(|s| s.shares_allocation_with(&payload)),
            "payload must ride as a borrowed segment"
        );
    }

    #[test]
    fn payload_decode_is_a_view_with_backing() {
        let payload = Bytes::from(vec![0x5au8; 1000]);
        let mut w = XdrWriter::new();
        w.put_payload(&payload);
        let wire = Bytes::from(w.into_bytes());
        let mut r = XdrReader::with_backing(&wire);
        let got = r.get_payload().unwrap();
        r.finish().unwrap();
        assert_eq!(got, payload);
        assert!(got.shares_allocation_with(&wire), "decode must not copy");
        // Small payloads are copied so they don't pin the buffer.
        let small = Bytes::from(vec![1u8; 8]);
        let mut w = XdrWriter::new();
        w.put_payload(&small);
        let wire = Bytes::from(w.into_bytes());
        let mut r = XdrReader::with_backing(&wire);
        let got = r.get_payload().unwrap();
        assert_eq!(got, small);
        assert!(!got.shares_allocation_with(&wire));
    }
}
