//! Property tests of the batched put/get frames: `PutBatch`/`GetBatch`
//! requests and `BatchResults`/`BatchItems` replies must round-trip
//! through both codecs, the two codecs must agree on the decoded frame,
//! and per-item trace contexts must survive intact (a batch is one frame
//! on the wire but N logical items). Mirrors
//! `trace_header_properties.rs` for the batch vocabulary.

use bytes::Bytes;
use proptest::prelude::*;

use dstampede_core::{GetSpec, Timestamp};
use dstampede_obs::{SpanId, TraceContext, TraceId};
use dstampede_wire::rpc::{BatchGot, BatchPutItem, Reply, ReplyFrame, Request, RequestFrame};
use dstampede_wire::{codec_for, CodecId, WaitSpec};

fn arb_trace() -> impl Strategy<Value = Option<TraceContext>> {
    proptest::option::of(
        (any::<u64>(), any::<u64>()).prop_map(|(t, s)| TraceContext {
            trace: TraceId(t),
            span: SpanId(s),
        }),
    )
}

fn arb_put_item() -> impl Strategy<Value = BatchPutItem> {
    (
        any::<i64>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..48),
        arb_trace(),
    )
        .prop_map(|(ts, tag, payload, trace)| BatchPutItem {
            ts: Timestamp::new(ts),
            tag,
            payload: Bytes::from(payload),
            trace,
        })
}

fn arb_spec() -> impl Strategy<Value = GetSpec> {
    prop_oneof![
        any::<i64>().prop_map(|v| GetSpec::Exact(Timestamp::new(v))),
        Just(GetSpec::Latest),
        Just(GetSpec::Earliest),
        any::<i64>().prop_map(|v| GetSpec::After(Timestamp::new(v))),
    ]
}

fn arb_wait() -> impl Strategy<Value = WaitSpec> {
    prop_oneof![
        Just(WaitSpec::NonBlocking),
        Just(WaitSpec::Forever),
        any::<u32>().prop_map(WaitSpec::TimeoutMs),
    ]
}

fn arb_got() -> impl Strategy<Value = BatchGot> {
    (
        0u32..10,
        any::<i64>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..48),
        any::<u64>(),
        arb_trace(),
    )
        .prop_map(|(code, ts, tag, payload, ticket, trace)| BatchGot {
            code,
            ts: Timestamp::new(ts),
            tag,
            payload: Bytes::from(payload),
            ticket,
            trace,
        })
}

proptest! {
    /// `PutBatch` frames round-trip through both codecs with every item's
    /// own trace context intact, and the codecs decode identical frames.
    #[test]
    fn put_batch_round_trips(
        seq in any::<u64>(),
        conn in any::<u64>(),
        items in proptest::collection::vec(arb_put_item(), 0..12),
        wait in arb_wait(),
        trace in arb_trace(),
    ) {
        let frame = RequestFrame::new(seq, Request::PutBatch { conn, items: items.clone(), wait })
            .with_trace(trace);
        let mut decoded = Vec::new();
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_request(&frame).unwrap().to_bytes();
            let back = codec.decode_request(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
            if let Request::PutBatch { items: ref got, .. } = back.req {
                for (a, b) in got.iter().zip(&items) {
                    prop_assert_eq!(a.trace, b.trace, "per-item trace lost in codec {}", id);
                }
            } else {
                prop_assert!(false, "codec {} decoded wrong variant", id);
            }
            decoded.push(back);
        }
        prop_assert_eq!(&decoded[0], &decoded[1]);
    }

    /// `GetBatch` frames round-trip for every spec shape, and both codecs
    /// agree on the decoded frame.
    #[test]
    fn get_batch_round_trips(
        seq in any::<u64>(),
        conn in any::<u64>(),
        specs in proptest::collection::vec(arb_spec(), 0..12),
        max in any::<u32>(),
        trace in arb_trace(),
    ) {
        let frame = RequestFrame::new(seq, Request::GetBatch { conn, specs, max })
            .with_trace(trace);
        let mut decoded = Vec::new();
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_request(&frame).unwrap().to_bytes();
            let back = codec.decode_request(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
            decoded.push(back);
        }
        prop_assert_eq!(&decoded[0], &decoded[1]);
    }

    /// `BatchResults` replies round-trip with the code vector intact.
    #[test]
    fn batch_results_round_trips(
        seq in any::<u64>(),
        codes in proptest::collection::vec(0u32..10, 0..32),
        trace in arb_trace(),
    ) {
        let frame = ReplyFrame::new(seq, vec![], Reply::BatchResults { codes })
            .with_trace(trace);
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_reply(&frame).unwrap().to_bytes();
            let back = codec.decode_reply(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
        }
    }

    /// `BatchItems` replies round-trip, including per-item tickets and
    /// trace contexts, and the codecs agree.
    #[test]
    fn batch_items_round_trips(
        seq in any::<u64>(),
        items in proptest::collection::vec(arb_got(), 0..12),
        trace in arb_trace(),
    ) {
        let frame = ReplyFrame::new(seq, vec![], Reply::BatchItems { items })
            .with_trace(trace);
        let mut decoded = Vec::new();
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_reply(&frame).unwrap().to_bytes();
            let back = codec.decode_reply(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
            decoded.push(back);
        }
        prop_assert_eq!(&decoded[0], &decoded[1]);
    }

    /// Attaching a frame-level trace context to a batch request never
    /// perturbs the base encoding: XDR extends strictly by suffix, JDR
    /// grows the envelope (wire compatibility with pre-batch decoders of
    /// the header is preserved exactly as for singleton frames).
    #[test]
    fn batch_context_is_a_pure_extension(
        seq in any::<u64>(),
        conn in any::<u64>(),
        items in proptest::collection::vec(arb_put_item().prop_map(|mut i| { i.trace = None; i }), 0..6),
        t in any::<u64>(),
        s in any::<u64>(),
    ) {
        let ctx = TraceContext { trace: TraceId(t), span: SpanId(s) };
        let req = Request::PutBatch { conn, items, wait: WaitSpec::NonBlocking };
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let plain = codec
                .encode_request(&RequestFrame::new(seq, req.clone()))
                .unwrap()
                .to_bytes();
            let traced = codec
                .encode_request(&RequestFrame::new(seq, req.clone()).with_trace(Some(ctx)))
                .unwrap()
                .to_bytes();
            prop_assert!(traced.len() > plain.len(), "codec {}", id);
            if id == CodecId::Xdr {
                prop_assert_eq!(&traced[..plain.len()], &plain[..]);
            }
        }
    }
}
