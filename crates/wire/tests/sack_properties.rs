//! Property tests of the CLF SACK frame (`SackInfo`, tag `CLF_SACK`):
//! round-trip fidelity through both codecs, cross-codec semantic
//! equivalence, bitmap semantics, and pure-extension safety — an old
//! decoder that has never heard of SACK must reject the frame cleanly
//! instead of misparsing it as something else.

use bytes::Bytes;
use proptest::prelude::*;

use dstampede_wire::{Codec, JdrCodec, SackInfo, WireError, XdrCodec, MAX_SACK_BITMAP};

fn arb_sack() -> impl Strategy<Value = SackInfo> {
    (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256)).prop_map(|(ack_next, bitmap)| {
        SackInfo {
            ack_next,
            bitmap: Bytes::from(bitmap),
        }
    })
}

proptest! {
    /// XDR round-trips every SACK exactly, including the full u64
    /// sequence range and empty bitmaps.
    #[test]
    fn xdr_round_trips(sack in arb_sack()) {
        let c = XdrCodec::new();
        let wire = c.encode_sack(&sack).unwrap().to_bytes();
        let back = c.decode_sack(&wire).unwrap();
        prop_assert_eq!(back.ack_next, sack.ack_next);
        prop_assert_eq!(&back.bitmap[..], &sack.bitmap[..]);
    }

    /// JDR round-trips every SACK exactly — `ack_next` travels as a
    /// bit-cast Long, so values above `i64::MAX` must survive too.
    #[test]
    fn jdr_round_trips(sack in arb_sack()) {
        let c = JdrCodec::new();
        let wire = c.encode_sack(&sack).unwrap().to_bytes();
        let back = c.decode_sack(&wire).unwrap();
        prop_assert_eq!(back.ack_next, sack.ack_next);
        prop_assert_eq!(&back.bitmap[..], &sack.bitmap[..]);
    }

    /// Both codecs carry identical semantics: decode(encode(x)) agrees
    /// across XDR and JDR for the same input, and the reported set of
    /// out-of-order sequences matches the bitmap definition
    /// (bit `i`, LSB-first per byte ⇒ sequence `ack_next + 1 + i`).
    #[test]
    fn codecs_agree_and_bitmap_semantics_hold(sack in arb_sack()) {
        let via_xdr = XdrCodec::new()
            .decode_sack(&XdrCodec::new().encode_sack(&sack).unwrap().to_bytes())
            .unwrap();
        let via_jdr = JdrCodec::new()
            .decode_sack(&JdrCodec::new().encode_sack(&sack).unwrap().to_bytes())
            .unwrap();
        prop_assert_eq!(via_xdr.ack_next, via_jdr.ack_next);
        prop_assert_eq!(&via_xdr.bitmap[..], &via_jdr.bitmap[..]);

        let seqs = via_xdr.sacked_seqs();
        for (i, &seq) in seqs.iter().enumerate() {
            prop_assert!(seq > via_xdr.ack_next, "sacked seq at or below ack_next");
            if i > 0 {
                prop_assert!(seq > seqs[i - 1], "sacked seqs not strictly increasing");
            }
            let bit = (seq - via_xdr.ack_next - 1) as usize;
            prop_assert!(via_xdr.is_set(bit), "reported seq whose bit is clear");
        }
        // Bits naming sequences past u64::MAX (possible only in forged
        // frames) are deliberately ignored by `sacked_seqs`.
        let expected = (0..via_xdr.bitmap.len() * 8)
            .filter(|&i| via_xdr.is_set(i) && via_xdr.ack_next.checked_add(1 + i as u64).is_some())
            .count();
        prop_assert_eq!(seqs.len(), expected, "seq list misses set bits");
    }

    /// Pure extension: a SACK frame is *not* decodable as any
    /// pre-existing frame kind. The request path is rejected by
    /// construction — both codecs put the `CLF_SACK` tag where the
    /// request tag lives, and 36 is not a request — and the reply path
    /// dies parsing the frame long before it could yield a value (the
    /// tag lands in the gc-note count, demanding far more valid note
    /// bytes than any SACK body supplies).
    #[test]
    fn old_decoders_reject_sack_frames(sack in arb_sack()) {
        for wire in [
            XdrCodec::new().encode_sack(&sack).unwrap().to_bytes(),
            JdrCodec::new().encode_sack(&sack).unwrap().to_bytes(),
        ] {
            let x = XdrCodec::new();
            let j = JdrCodec::new();
            prop_assert!(x.decode_request(&wire).is_err());
            prop_assert!(x.decode_reply(&wire).is_err());
            prop_assert!(j.decode_request(&wire).is_err());
            prop_assert!(j.decode_reply(&wire).is_err());
        }
    }

    /// Conversely, a SACK decoder rejects every non-SACK tag instead of
    /// guessing: JDR reports the foreign class tag it found.
    #[test]
    fn sack_decoder_rejects_foreign_frames(junk in proptest::collection::vec(any::<u8>(), 0..64)) {
        let wire = Bytes::from(junk);
        prop_assert!(XdrCodec::new().decode_sack(&wire).is_err());
        prop_assert!(JdrCodec::new().decode_sack(&wire).is_err());
    }
}

/// Oversized bitmaps are refused symmetrically: the encoder never
/// produces a frame the decoder would reject, and a hand-forged
/// oversized frame is rejected on decode.
#[test]
fn oversized_bitmap_rejected_both_ways() {
    let sack = SackInfo {
        ack_next: 7,
        bitmap: Bytes::from(vec![0xFF; MAX_SACK_BITMAP + 1]),
    };
    assert!(matches!(
        XdrCodec::new().encode_sack(&sack),
        Err(WireError::BadValue(_))
    ));
    assert!(matches!(
        JdrCodec::new().encode_sack(&sack),
        Err(WireError::BadValue(_))
    ));
    let ok = SackInfo {
        ack_next: 7,
        bitmap: Bytes::from(vec![0xFF; MAX_SACK_BITMAP]),
    };
    assert!(XdrCodec::new().encode_sack(&ok).is_ok());
    assert!(JdrCodec::new().encode_sack(&ok).is_ok());
}
