//! Property tests of the optional trace-context frame header: both codecs
//! must round-trip any (seq, context) combination, agree with each other on
//! the decoded context, and keep context-free frames decodable by decoders
//! that predate tracing.

use proptest::prelude::*;

use dstampede_obs::{SpanId, TraceContext, TraceId};
use dstampede_wire::rpc::{Reply, ReplyFrame, Request, RequestFrame};
use dstampede_wire::{codec_for, CodecId};

fn arb_trace() -> impl Strategy<Value = Option<TraceContext>> {
    proptest::option::of(
        (any::<u64>(), any::<u64>()).prop_map(|(t, s)| TraceContext {
            trace: TraceId(t),
            span: SpanId(s),
        }),
    )
}

proptest! {
    /// Request frames round-trip through both codecs with and without a
    /// trace context, and the two codecs decode identical frames.
    #[test]
    fn request_header_round_trips(
        seq in any::<u64>(),
        nonce in any::<u64>(),
        trace in arb_trace(),
    ) {
        let frame = RequestFrame::new(seq, Request::Ping { nonce }).with_trace(trace);
        let mut decoded = Vec::new();
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_request(&frame).unwrap().to_bytes();
            let back = codec.decode_request(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
            prop_assert_eq!(back.trace, trace, "codec {}", id);
            decoded.push(back);
        }
        prop_assert_eq!(&decoded[0], &decoded[1]);
    }

    /// Reply frames round-trip likewise.
    #[test]
    fn reply_header_round_trips(
        seq in any::<u64>(),
        nonce in any::<u64>(),
        trace in arb_trace(),
    ) {
        let frame = ReplyFrame::new(seq, vec![], Reply::Pong { nonce }).with_trace(trace);
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_reply(&frame).unwrap().to_bytes();
            let back = codec.decode_reply(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
            prop_assert_eq!(back.trace, trace, "codec {}", id);
        }
    }

    /// A context-free frame encodes to the same bytes as a frame whose
    /// context was stripped: attaching trace context never perturbs the
    /// base encoding, it only appends (XDR) or extends the envelope (JDR).
    #[test]
    fn context_is_a_pure_extension(
        seq in any::<u64>(),
        nonce in any::<u64>(),
        t in any::<u64>(),
        s in any::<u64>(),
    ) {
        let ctx = TraceContext { trace: TraceId(t), span: SpanId(s) };
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let plain = codec
                .encode_request(&RequestFrame::new(seq, Request::Ping { nonce }))
                .unwrap()
                .to_bytes();
            let traced = codec
                .encode_request(
                    &RequestFrame::new(seq, Request::Ping { nonce }).with_trace(Some(ctx)),
                )
                .unwrap()
                .to_bytes();
            prop_assert!(traced.len() > plain.len(), "codec {}", id);
            if id == CodecId::Xdr {
                // XDR is a strict suffix extension.
                prop_assert_eq!(&traced[..plain.len()], &plain[..]);
            }
        }
    }
}
