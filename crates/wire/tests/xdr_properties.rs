//! Property tests of the XDR primitive layer: alignment, padding, and
//! sequencing invariants that RFC 1832-style marshalling must uphold.

use proptest::prelude::*;

use dstampede_wire::xdr::{padded_len, XdrReader, XdrWriter};

proptest! {
    /// Every encoded primitive stream is 4-byte aligned at all times.
    #[test]
    fn stream_is_always_word_aligned(
        ops in proptest::collection::vec(
            prop_oneof![
                any::<u32>().prop_map(|v| ("u32", v as u64, Vec::new())),
                any::<i64>().prop_map(|v| ("i64", v as u64, Vec::new())),
                any::<bool>().prop_map(|v| ("bool", u64::from(v), Vec::new())),
                proptest::collection::vec(any::<u8>(), 0..40)
                    .prop_map(|d| ("opaque", 0, d)),
                "[a-zA-Z0-9 ]{0,24}".prop_map(|s| ("string", 0, s.into_bytes())),
            ],
            0..30,
        ),
    ) {
        let mut w = XdrWriter::new();
        for (kind, scalar, data) in &ops {
            match *kind {
                "u32" => w.put_u32(*scalar as u32),
                "i64" => w.put_i64(*scalar as i64),
                "bool" => w.put_bool(*scalar != 0),
                "opaque" => w.put_opaque(data),
                "string" => w.put_string(std::str::from_utf8(data).unwrap()),
                _ => unreachable!(),
            }
            prop_assert_eq!(w.len() % 4, 0, "misaligned after {}", kind);
        }

        // And the reader consumes it back exactly.
        let buf = w.into_bytes();
        let mut r = XdrReader::new(&buf);
        for (kind, scalar, data) in &ops {
            match *kind {
                "u32" => prop_assert_eq!(r.get_u32().unwrap(), *scalar as u32),
                "i64" => prop_assert_eq!(r.get_i64().unwrap(), *scalar as i64),
                "bool" => prop_assert_eq!(r.get_bool().unwrap(), *scalar != 0),
                "opaque" => prop_assert_eq!(r.get_opaque().unwrap(), &data[..]),
                "string" => {
                    let got = r.get_string().unwrap();
                    prop_assert_eq!(got.as_bytes(), &data[..]);
                }
                _ => unreachable!(),
            }
        }
        r.finish().unwrap();
    }

    /// Opaque encoding size is exactly 4 + padded length, and padding is
    /// zero.
    #[test]
    fn opaque_layout(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut w = XdrWriter::new();
        w.put_opaque(&data);
        let buf = w.into_bytes();
        prop_assert_eq!(buf.len(), 4 + padded_len(data.len()));
        for &pad in &buf[4 + data.len()..] {
            prop_assert_eq!(pad, 0);
        }
    }

    /// Truncating an encoded stream anywhere never panics the reader —
    /// it errors (or succeeds on a prefix that happens to parse).
    #[test]
    fn truncation_is_total(
        value in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<usize>(),
    ) {
        let mut w = XdrWriter::new();
        w.put_u64(value);
        w.put_opaque(&data);
        let buf = w.into_bytes();
        let cut = cut % (buf.len() + 1);
        let mut r = XdrReader::new(&buf[..cut]);
        let _ = r.get_u64().and_then(|_| r.get_opaque().map(<[u8]>::len));
    }
}
