//! Property tests of the zero-copy data plane (PR 5): the scatter-gather
//! encoders must stay byte-identical to the legacy contiguous paths in
//! both directions and for both codecs (cross-version compatibility — an
//! old peer can talk to a new one and vice versa); decoded payload views
//! must alias the receive buffer without copying and stay valid after
//! the buffer handle drops; and the pool's copies-avoided accounting
//! must observe large payloads riding through untouched.

use bytes::Bytes;
use proptest::prelude::*;

use dstampede_core::Timestamp;
use dstampede_wire::pool::{self, ZC_THRESHOLD};
use dstampede_wire::rpc::{Reply, ReplyFrame, Request, RequestFrame};
use dstampede_wire::{Codec, JdrCodec, WaitSpec, XdrCodec};

/// A put request whose payload exercises both sides of the zero-copy
/// threshold.
fn arb_put_frame() -> impl Strategy<Value = RequestFrame> {
    (
        any::<u64>(),
        any::<i64>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..(2 * ZC_THRESHOLD)),
    )
        .prop_map(|(seq, ts, tag, payload)| {
            RequestFrame::new(
                seq,
                Request::ChannelPut {
                    conn: 1,
                    ts: Timestamp::new(ts),
                    tag,
                    payload: Bytes::from(payload),
                    wait: WaitSpec::Forever,
                },
            )
        })
}

/// An item reply whose payload exercises both sides of the threshold.
fn arb_item_frame() -> impl Strategy<Value = ReplyFrame> {
    (
        any::<u64>(),
        any::<i64>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..(2 * ZC_THRESHOLD)),
    )
        .prop_map(|(seq, ts, tag, payload)| {
            ReplyFrame::new(
                seq,
                vec![],
                Reply::Item {
                    ts: Timestamp::new(ts),
                    tag,
                    payload: Bytes::from(payload),
                },
            )
        })
}

proptest! {
    /// XDR cross-version: the legacy contiguous encoding and the flattened
    /// scatter encoding are byte-identical, a legacy-encoded frame decodes
    /// through the new path, and a scatter-encoded frame decodes through
    /// the legacy path.
    #[test]
    fn xdr_legacy_and_scatter_interoperate(frame in arb_put_frame()) {
        let codec = XdrCodec::new();
        let legacy = codec.encode_request_legacy(&frame).unwrap();
        let scatter = codec.encode_request(&frame).unwrap().to_bytes();
        prop_assert_eq!(&legacy[..], &scatter[..]);
        prop_assert_eq!(codec.decode_request(&Bytes::from(legacy.clone())).unwrap(), frame.clone());
        prop_assert_eq!(codec.decode_request_legacy(&scatter).unwrap(), frame);
    }

    /// JDR cross-version, likewise.
    #[test]
    fn jdr_legacy_and_scatter_interoperate(frame in arb_put_frame()) {
        let codec = JdrCodec::new();
        let legacy = codec.encode_request_legacy(&frame).unwrap();
        let scatter = codec.encode_request(&frame).unwrap().to_bytes();
        prop_assert_eq!(&legacy[..], &scatter[..]);
        prop_assert_eq!(codec.decode_request(&Bytes::from(legacy.clone())).unwrap(), frame.clone());
        prop_assert_eq!(codec.decode_request_legacy(&scatter).unwrap(), frame);
    }

    /// Replies interoperate the same way in both codecs.
    #[test]
    fn replies_interoperate_across_versions(frame in arb_item_frame()) {
        let xdr = XdrCodec::new();
        let jdr = JdrCodec::new();
        for (legacy, scatter, back_new, back_old) in [
            (
                xdr.encode_reply_legacy(&frame).unwrap(),
                xdr.encode_reply(&frame).unwrap().to_bytes(),
                xdr.decode_reply(&xdr.encode_reply_legacy(&frame).unwrap().into()).unwrap(),
                xdr.decode_reply_legacy(&xdr.encode_reply(&frame).unwrap().to_bytes()).unwrap(),
            ),
            (
                jdr.encode_reply_legacy(&frame).unwrap(),
                jdr.encode_reply(&frame).unwrap().to_bytes(),
                jdr.decode_reply(&jdr.encode_reply_legacy(&frame).unwrap().into()).unwrap(),
                jdr.decode_reply_legacy(&jdr.encode_reply(&frame).unwrap().to_bytes()).unwrap(),
            ),
        ] {
            prop_assert_eq!(&legacy[..], &scatter[..]);
            prop_assert_eq!(&back_new, &frame);
            prop_assert_eq!(&back_old, &frame);
        }
    }

    /// Decoded payloads stay valid after the receive buffer handle drops:
    /// the view holds its own reference on the shared allocation, so
    /// recycling the caller's handle cannot invalidate it.
    #[test]
    fn payload_views_outlive_the_receive_buffer(
        payload in proptest::collection::vec(any::<u8>(), ZC_THRESHOLD..4096),
    ) {
        for codec in [&XdrCodec::new() as &dyn Codec, &JdrCodec::new()] {
            let frame = RequestFrame::new(
                9,
                Request::ChannelPut {
                    conn: 1,
                    ts: Timestamp::new(0),
                    tag: 0,
                    payload: Bytes::from(payload.clone()),
                    wait: WaitSpec::NonBlocking,
                },
            );
            let wire = codec.encode_request(&frame).unwrap().to_bytes();
            let decoded = codec.decode_request(&wire).unwrap();
            let Request::ChannelPut { payload: view, .. } = &decoded.req else {
                panic!("wrong variant");
            };
            // Above the threshold the decode is a true view, not a copy.
            prop_assert!(view.shares_allocation_with(&wire));
            let view = view.clone();
            drop(wire);
            drop(decoded);
            prop_assert_eq!(&view[..], &payload[..]);
        }
    }
}

/// Large payloads decoded as views are counted by the pool's
/// copies-avoided accounting (both codecs). Other tests share the global
/// counters, so the assertion is a lower bound on the delta.
#[test]
fn large_payload_decode_bumps_copies_avoided() {
    let payload = vec![0xA5u8; 4 * 1024];
    for codec in [&XdrCodec::new() as &dyn Codec, &JdrCodec::new()] {
        let frame = RequestFrame::new(
            1,
            Request::ChannelPut {
                conn: 1,
                ts: Timestamp::new(0),
                tag: 0,
                payload: Bytes::from(payload.clone()),
                wait: WaitSpec::Forever,
            },
        );
        let wire = codec.encode_request(&frame).unwrap().to_bytes();
        let before = pool::stats();
        let _decoded = codec.decode_request(&wire).unwrap();
        let after = pool::stats();
        assert!(after.copies_avoided > before.copies_avoided);
        assert!(after.bytes_copied_avoided >= before.bytes_copied_avoided + payload.len() as u64);
    }
}

/// Sub-threshold payloads are copied out, so the receive buffer stays
/// reclaimable — the decoded payload must NOT alias the wire bytes.
#[test]
fn small_payloads_do_not_pin_the_receive_buffer() {
    let payload = vec![7u8; ZC_THRESHOLD - 1];
    for codec in [&XdrCodec::new() as &dyn Codec, &JdrCodec::new()] {
        let frame = RequestFrame::new(
            1,
            Request::ChannelPut {
                conn: 1,
                ts: Timestamp::new(0),
                tag: 0,
                payload: Bytes::from(payload.clone()),
                wait: WaitSpec::Forever,
            },
        );
        let wire = codec.encode_request(&frame).unwrap().to_bytes();
        let decoded = codec.decode_request(&wire).unwrap();
        let Request::ChannelPut { payload: out, .. } = &decoded.req else {
            panic!("wrong variant");
        };
        assert!(!out.shares_allocation_with(&wire));
        assert_eq!(&out[..], &payload[..]);
    }
}
