//! Quickstart: the paper's §3.1 producer/consumer pseudocode, end to end.
//!
//! Starts an in-process cluster, attaches one end device with the C-style
//! (XDR) client library, streams timestamped items through a channel, and
//! shows garbage collection reclaiming consumed items.
//!
//! Run with: `cargo run --example quickstart`

use dstampede::client::EndDevice;
use dstampede::core::{ChannelAttrs, GetSpec, Interest, Item, StmError, Timestamp};
use dstampede::runtime::Cluster;
use dstampede::wire::WaitSpec;

fn main() -> Result<(), StmError> {
    // The cluster: one address space, name server, TCP listener.
    let cluster = Cluster::in_process(1)?;
    let addr = cluster.listener_addr(0)?;
    println!("cluster listening on {addr}");

    // An end device joins (the listener spawns its surrogate thread).
    let device = EndDevice::attach_c(addr, "quickstart-device")?;
    println!(
        "attached as session {} in address space {}",
        device.session(),
        device.as_id()
    );

    // Channel creation + connections, as in the paper's pseudocode.
    let chan = device.create_channel(Some("demo-stream"), ChannelAttrs::default())?;
    let out = device.connect_channel_out(chan)?;
    let inp = device.connect_channel_in(chan, Interest::FromEarliest)?;

    // Producer loop: put_item(channel, timestamp, item).
    for ts in 0..5i64 {
        let item = Item::from_vec(format!("frame-{ts}").into_bytes());
        out.put(Timestamp::new(ts), item, WaitSpec::Forever)?;
        println!("put  ts={ts}");
    }

    // Consumer loop: get_item / use / consume (signal garbage).
    for ts in 0..5i64 {
        let (t, item) = inp.get(GetSpec::Exact(Timestamp::new(ts)), WaitSpec::Forever)?;
        println!(
            "got  ts={} payload={:?}",
            t.value(),
            String::from_utf8_lossy(item.payload())
        );
        inp.consume_until(t)?;
    }

    println!("all items consumed and garbage collected");
    drop((out, inp));
    device.detach()?;
    cluster.shutdown();
    Ok(())
}
