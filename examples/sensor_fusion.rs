//! Temporal correlation of heterogeneous sensor streams — the paper's
//! motivating capability (§2, requirement 2): "a stereo vision application
//! would combine images captured at the same time from two different
//! camera sensors ... other analyzers may work multimedially".
//!
//! A "video" sensor produces one frame per tick and an "audio" sensor
//! produces four sample-buffers per tick, each paced against real time
//! with the loose-synchrony API. A fusion thread correlates them *by
//! timestamp*: for video frame `t` it fetches exactly audio buffers
//! `4t..4t+4` — random access by timestamp is what channels add over plain
//! sockets. A C-style and a Java-style client coexist in the same
//! application (§3.2.3 heterogeneity).
//!
//! Run with: `cargo run --release --example sensor_fusion`

use std::sync::Arc;
use std::time::Duration;

use dstampede::client::EndDevice;
use dstampede::core::rtsync::{Clock, RealClock, RtSync};
use dstampede::core::{ChannelAttrs, GetSpec, Interest, Item, ResourceId, StmError, Timestamp};
use dstampede::runtime::Cluster;
use dstampede::wire::WaitSpec;

const TICKS: i64 = 20;
const AUDIO_PER_VIDEO: i64 = 4;

fn main() -> Result<(), StmError> {
    let cluster = Cluster::in_process(1)?;
    let addr = cluster.listener_addr(0)?;

    // -- video sensor: a C client pacing at 50 "fps" --------------------
    let video = std::thread::spawn(move || -> Result<(), StmError> {
        let device = EndDevice::attach_c(addr, "video-sensor")?;
        let chan = device.create_channel(None, ChannelAttrs::default())?;
        device.ns_register("fusion/video", ResourceId::Channel(chan), "camera")?;
        let out = device.connect_channel_out(chan)?;
        let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
        let mut pacer = RtSync::new(clock, Duration::from_millis(20), Duration::from_millis(5));
        for t in 0..TICKS {
            let frame = Item::from_vec(format!("video@{t}").into_bytes());
            out.put(Timestamp::new(t), frame, WaitSpec::Forever)?;
            pacer.synchronize();
        }
        drop(out);
        device.detach()
    });

    // -- audio sensor: a Java client at 4x the video rate ---------------
    let audio = std::thread::spawn(move || -> Result<(), StmError> {
        let device = EndDevice::attach_java(addr, "audio-sensor")?;
        let chan = device.create_channel(None, ChannelAttrs::default())?;
        device.ns_register("fusion/audio", ResourceId::Channel(chan), "microphone")?;
        let out = device.connect_channel_out(chan)?;
        let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
        let mut pacer = RtSync::new(clock, Duration::from_millis(5), Duration::from_millis(2));
        for t in 0..TICKS * AUDIO_PER_VIDEO {
            let sample = Item::from_vec(format!("audio@{t}").into_bytes());
            out.put(Timestamp::new(t), sample, WaitSpec::Forever)?;
            pacer.synchronize();
        }
        drop(out);
        device.detach()
    });

    // -- fusion: correlate the two streams by timestamp -----------------
    let fusion = std::thread::spawn(move || -> Result<usize, StmError> {
        let device = EndDevice::attach_c(addr, "fusion")?;
        // Dynamic rendezvous through the name server (blocking lookups).
        let (video_res, _) = device.ns_lookup("fusion/video", WaitSpec::Forever)?;
        let (audio_res, _) = device.ns_lookup("fusion/audio", WaitSpec::Forever)?;
        let (ResourceId::Channel(vc), ResourceId::Channel(ac)) = (video_res, audio_res) else {
            return Err(StmError::Protocol("expected channels".into()));
        };
        let video_in = device.connect_channel_in(vc, Interest::FromEarliest)?;
        let audio_in = device.connect_channel_in(ac, Interest::FromEarliest)?;

        let mut fused = 0;
        for t in 0..TICKS {
            let (_, frame) = video_in.get(GetSpec::Exact(Timestamp::new(t)), WaitSpec::Forever)?;
            let mut samples = Vec::new();
            for a in t * AUDIO_PER_VIDEO..(t + 1) * AUDIO_PER_VIDEO {
                let (_, s) = audio_in.get(GetSpec::Exact(Timestamp::new(a)), WaitSpec::Forever)?;
                samples.push(String::from_utf8_lossy(s.payload()).into_owned());
            }
            println!(
                "tick {t:>2}: {} + {:?}",
                String::from_utf8_lossy(frame.payload()),
                samples
            );
            fused += 1;
            // Selective attention: done with everything at or below t.
            video_in.consume_until(Timestamp::new(t))?;
            audio_in.consume_until(Timestamp::new((t + 1) * AUDIO_PER_VIDEO - 1))?;
        }
        drop((video_in, audio_in));
        device.detach()?;
        Ok(fused)
    });

    video.join().expect("video sensor")?;
    audio.join().expect("audio sensor")?;
    let fused = fusion.join().expect("fusion")?;
    println!("\nfused {fused} ticks of temporally-correlated video+audio");
    cluster.shutdown();
    Ok(())
}
