//! The paper's opening scenario (§1): a telepresence chat room with
//! participants that join and leave dynamically.
//!
//! "John is sitting in his living room. He opens a connection to a virtual
//! chat room and joins the discussion..." Participants come and go at
//! different times (§2, requirement 5); the mixer discovers them through
//! the name server, adapts its input set on the fly, and garbage hooks
//! release each participant's buffers as composites are consumed.
//!
//! Run with: `cargo run --release --example telepresence`

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dstampede::client::EndDevice;
use dstampede::core::{
    ChannelAttrs, GetSpec, Interest, Item, OverflowPolicy, ResourceId, StmError, Timestamp,
};
use dstampede::runtime::Cluster;
use dstampede::wire::WaitSpec;

const TICKS: i64 = 12;

/// A participant: joins at `join_tick`, leaves after `leave_tick`.
struct Participant {
    name: &'static str,
    join_tick: i64,
    leave_tick: i64,
}

const ROSTER: &[Participant] = &[
    Participant {
        name: "john",
        join_tick: 0,
        leave_tick: 11,
    },
    Participant {
        name: "maria",
        join_tick: 0,
        leave_tick: 7,
    },
    Participant {
        name: "ahmed",
        join_tick: 4,
        leave_tick: 11,
    },
];

fn main() -> Result<(), StmError> {
    let cluster = Cluster::in_process(2)?;
    let addr = cluster.listener_addr(0)?;
    let reclaimed = Arc::new(AtomicUsize::new(0));

    // Participants join on their own schedule.
    let mut handles = Vec::new();
    for p in ROSTER {
        let reclaimed = Arc::clone(&reclaimed);
        handles.push(std::thread::spawn(move || -> Result<(), StmError> {
            std::thread::sleep(Duration::from_millis(60 * p.join_tick as u64));
            let device = EndDevice::attach_c(addr, p.name)?;
            let chan = device.create_channel(
                None,
                ChannelAttrs::builder()
                    .capacity(8)
                    .overflow(OverflowPolicy::DropOldest) // sensors keep only recent frames
                    .build(),
            )?;
            device.ns_register(
                &format!("chat/{}", p.name),
                ResourceId::Channel(chan),
                "avatar feed",
            )?;
            // Garbage hook: release capture buffers as the mixer consumes.
            let r = Arc::clone(&reclaimed);
            device.install_garbage_hook(ResourceId::Channel(chan), move |_| {
                r.fetch_add(1, Ordering::SeqCst);
            })?;
            let out = device.connect_channel_out(chan)?;
            for tick in p.join_tick..=p.leave_tick {
                let frame = Item::from_vec(format!("{}@{tick}", p.name).into_bytes());
                out.put(Timestamp::new(tick), frame, WaitSpec::Forever)?;
                std::thread::sleep(Duration::from_millis(60));
            }
            // Linger long enough for the mixer to consume the final ticks
            // before the avatar disappears from the room.
            std::thread::sleep(Duration::from_millis(200));
            println!("[{}] leaves the chat after tick {}", p.name, p.leave_tick);
            device.ns_unregister(&format!("chat/{}", p.name))?;
            drop(out);
            device.detach()
        }));
    }

    // The mixer: re-discovers the current participant set each tick and
    // composites whatever avatars are present — dynamic plumbing.
    let mixer_space = cluster.space(1)?;
    let mut inputs: HashMap<String, dstampede::runtime::ChanInput> = HashMap::new();
    for tick in 0..TICKS {
        // Pace one step behind the sensors so each tick's frames exist by
        // the time the mixer asks for them.
        std::thread::sleep(Duration::from_millis(65));
        // Discover who is registered right now.
        let present = mixer_space.ns_list()?;
        for entry in &present {
            if let (false, ResourceId::Channel(id)) =
                (inputs.contains_key(&entry.name), entry.resource)
            {
                inputs.insert(
                    entry.name.clone(),
                    mixer_space
                        .open_channel(id)?
                        .connect_input(Interest::FromEarliest)?,
                );
                println!("[mixer] {} joined the room", entry.name);
            }
        }
        // Drop inputs of departed participants.
        inputs.retain(|name, _| {
            let still_here = present.iter().any(|e| &e.name == name);
            if !still_here {
                println!("[mixer] {name} left the room");
            }
            still_here
        });

        // Composite this tick from whoever has a frame for it.
        let mut scene = Vec::new();
        for (name, inp) in &inputs {
            match inp.get(
                GetSpec::Exact(Timestamp::new(tick)),
                WaitSpec::TimeoutMs(60),
            ) {
                Ok((_, frame)) => {
                    scene.push(String::from_utf8_lossy(frame.payload()).into_owned());
                    inp.consume_until(Timestamp::new(tick))?;
                }
                Err(StmError::Dropped | StmError::Timeout) => {
                    // Participant joined mid-tick or its sensor dropped the
                    // frame (DropOldest): skip them this tick.
                    let _ = name;
                }
                Err(e) => return Err(e),
            }
        }
        scene.sort();
        println!("tick {tick:>2}: room = {scene:?}");
    }

    for h in handles {
        h.join().expect("participant thread")?;
    }
    println!(
        "\ngarbage hooks released {} capture buffers during the session",
        reclaimed.load(Ordering::SeqCst)
    );
    cluster.shutdown();
    Ok(())
}
