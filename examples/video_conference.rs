//! The paper's §4 video-conferencing application, all three versions.
//!
//! Runs a small conference (3 participants, 16 KB virtual camera frames)
//! as the socket baseline, the single-threaded D-Stampede version, and the
//! multi-threaded D-Stampede version, and prints the sustained frame rate
//! each achieves — the miniature of the paper's §5.2 study.
//!
//! Run with: `cargo run --release --example video_conference`

use dstampede::apps::{
    run_dstampede_conference, run_socket_conference, ConferenceConfig, MixerKind,
};
use dstampede::core::StmError;

fn main() -> Result<(), StmError> {
    let base = ConferenceConfig {
        clients: 3,
        image_size: 16 * 1024,
        frames: 60,
        warmup: 10,
        mixer: MixerKind::SingleThreaded,
        ..ConferenceConfig::default()
    };

    println!(
        "video conference: {} participants, {} KB frames, {} frames\n",
        base.clients,
        base.image_size / 1024,
        base.frames
    );

    let socket = run_socket_conference(&base)?;
    println!("version 1 (sockets, single-threaded mixer):    {socket}");

    let single = run_dstampede_conference(&base)?;
    println!("version 2 (D-Stampede, single-threaded mixer): {single}");

    let multi = run_dstampede_conference(&ConferenceConfig {
        mixer: MixerKind::MultiThreaded,
        ..base
    })?;
    println!("version 3 (D-Stampede, multi-threaded mixer):  {multi}");

    println!(
        "\nEvery composite was validated pixel-for-pixel at every display; \
         compare the fps columns to the paper's Figures 14-15."
    );
    Ok(())
}
