//! The paper's Figure 3: task and data parallelism over frame fragments.
//!
//! A digitizer streams frames into a channel; a splitter fans each frame
//! out as fragments (same timestamp, distinct tags) into a queue; a pool
//! of trackers analyses fragments in parallel; a joiner correlates the
//! per-fragment results *by timestamp* back into per-frame records.
//!
//! Run with: `cargo run --release --example vision_pipeline`
//!
//! Pass `--trace` to record a causal trace of every frame (sampling 1)
//! and export it as Chrome trace-event JSON to `results/vision_trace.json`
//! for chrome://tracing or <https://ui.perfetto.dev>.
//!
//! Pass `--prom` to export the end-of-run cluster metrics snapshot in
//! the Prometheus text exposition format to `results/vision_metrics.prom`
//! (validated in CI by `scripts/check_exposition.py`).

use dstampede::apps::{run_vision_pipeline, VisionConfig};
use dstampede::core::StmError;

fn main() -> Result<(), StmError> {
    let args: Vec<String> = std::env::args().collect();
    let trace = args.iter().any(|a| a == "--trace");
    let prom = args.iter().any(|a| a == "--prom");
    let cfg = VisionConfig {
        frames: 24,
        frame_size: 128 * 1024,
        fragments: 4,
        trackers: 3,
        address_spaces: 2, // splitter and trackers in different address spaces
        trace_sampling: if trace { 1 } else { 0 },
    };
    println!(
        "vision pipeline: {} frames of {} KB, split {} ways, {} trackers, {} address spaces",
        cfg.frames,
        cfg.frame_size / 1024,
        cfg.fragments,
        cfg.trackers,
        cfg.address_spaces
    );

    let report = run_vision_pipeline(&cfg)?;
    println!("\n{report}");
    for record in report.records.iter().take(3) {
        println!(
            "frame {:>2}: fragment checksums {:x?}",
            record.frame, record.fragment_results
        );
    }
    println!("...");
    println!(
        "work sharing across trackers: {:?} fragments each",
        report.per_tracker_fragments
    );

    if trace {
        let path = std::path::Path::new("results/vision_trace.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(path, report.trace.to_chrome_json()).expect("write trace");
        println!(
            "trace: {} spans across {} traces -> {} (open in chrome://tracing or ui.perfetto.dev)",
            report.trace.spans.len(),
            report.trace.traces().len(),
            path.display()
        );
    }
    if prom {
        let path = std::path::Path::new("results/vision_metrics.prom");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(path, report.stats.to_prometheus()).expect("write exposition");
        println!(
            "metrics: {} counter + {} gauge + {} histogram series -> {}",
            report.stats.counters.len(),
            report.stats.gauges.len(),
            report.stats.histograms.len(),
            path.display()
        );
    }
    Ok(())
}
