#!/usr/bin/env python3
"""Bench regression gate for the STM, wire, and load perf trajectories.

Compares a fresh bench report against a committed baseline and fails
when throughput in any comparable section regresses by more than the
tolerance. The schema is auto-detected from the reports:

* ``bench-stm-v2`` (``stm_perf --suite``): compares cycle ops/sec in
  the ``single_thread`` / ``threads_8`` / ``batch_32`` sections.
* ``bench-wire-v1`` (``wire_perf``): compares codec round-trip
  ops/sec (``xdr_*`` / ``jdr_*``) and CLF loopback MB/s (``clf_*``).
* ``bench-load-v1`` (``load_perf``): compares achieved rate at every
  swept offered rate, and — latency being the point of the open-loop
  harness — additionally gates the coordinated-omission-corrected p99
  at the report's ``reference_rate`` (lower is better: the fresh p99
  may exceed the baseline's by at most the tolerance).

For load reports, ``--min-session-ratio X`` additionally checks the
fresh report's ``session_ab`` section (``load_perf --session-ab``):
the reactor side must carry at least ``X`` times the legacy session
count, both sides must meet the run's corrected-p99 budget, reactor
thread growth over baseline must stay O(workers), and the bare-attach
thread ceiling (when probed) must show no per-session threads. These
are absolute checks on the fresh run, not a baseline diff — the claim
is about the fresh binary, so an old baseline without the section
never weakens it. The flag makes the section mandatory: a fresh
report missing it fails the gate.

Sections present in both reports are compared, sections present only
on one side are reported but never fail the gate (so adding a section
does not break old baselines).

The absolute numbers in the committed baseline come from whatever
machine recorded them, so cross-machine runs are noisy by nature; the
CI job reruns the suite on the same runner class every time, and the
15% default tolerance absorbs runner-to-runner drift. The 8-thread
sharded-vs-single-lock speedup is checked by ``stm_perf
--min-speedup`` itself (scaled to the machine's core count), not here.

For wire reports, ``--min-speedup X`` additionally requires the fresh
4 KiB codec round-trip throughput to be at least ``X`` times the
baseline's — the acceptance check for the zero-copy rework, run with
the pre-rework record (``results/BENCH_wire_baseline.json``, ``"mode":
"baseline"``) as the baseline.

Usage:
    check_bench_regression.py BASELINE FRESH [--tolerance PCT]
        [--min-speedup X] [--min-session-ratio X]

Exit codes: 0 ok, 1 regression, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import sys

STM_SECTIONS = ("single_thread", "threads_8", "batch_32")

WIRE_SIZES = (64, 4096, 65536)

# The zero-copy acceptance speedup applies at the typical item size.
WIRE_GATE_SIZE = 4096


def load_sweep_entry(report: dict, rate: int) -> dict | None:
    """The sweep entry for one offered rate of a load report, or None."""
    for entry in report.get("sweep", []):
        if isinstance(entry, dict) and entry.get("rate") == rate:
            return entry
    return None


def load_metric(entry: dict | None, key: str) -> float | None:
    """One numeric field from a load sweep entry, or None when absent."""
    if not isinstance(entry, dict):
        return None
    try:
        return float(entry[key])
    except (KeyError, TypeError, ValueError):
        return None


def stm_cycle_ops(report: dict, section: str) -> float | None:
    """Cycle ops/sec for one stm suite section, or None when absent."""
    sec = report.get(section)
    if not isinstance(sec, dict):
        return None
    try:
        return float(sec["ops"]["cycle"]["ops_per_sec"])
    except (KeyError, TypeError, ValueError):
        return None


def wire_metric(report: dict, section: str, key: str) -> float | None:
    """One throughput number from a wire report, or None when absent."""
    sec = report.get(section)
    if not isinstance(sec, dict):
        return None
    try:
        return float(sec[key])
    except (KeyError, TypeError, ValueError):
        return None


def wire_sections() -> list[tuple[str, str]]:
    """(section, throughput key) pairs of the wire schema."""
    out = []
    for size in WIRE_SIZES:
        for codec in ("xdr", "jdr"):
            out.append((f"{codec}_{size}", "ops_per_sec"))
        out.append((f"clf_{size}", "mb_per_sec"))
    return out


def check_session_ab(fresh: dict, min_ratio: float) -> bool:
    """Absolute checks on a fresh session_ab section; True on failure."""
    ab = fresh.get("session_ab")
    if not isinstance(ab, dict):
        print("session_ab: missing in fresh report FAIL (required by --min-session-ratio)")
        return True
    failed = False
    try:
        budget = float(ab["p99_budget_us"])
        legacy, reactor = ab["legacy"], ab["reactor"]
        ratio = float(reactor["sessions"]) / float(legacy["sessions"])
    except (KeyError, TypeError, ValueError, ZeroDivisionError) as exc:
        print(f"session_ab: malformed section ({exc}) FAIL")
        return True
    verdict = "ok" if ratio >= min_ratio else "FAIL"
    failed |= ratio < min_ratio
    print(
        f"session_ab: {reactor['sessions']} reactor vs {legacy['sessions']} legacy "
        f"sessions ({ratio:.1f}x, need {min_ratio:g}x) {verdict}"
    )
    for side_name, side in (("legacy", legacy), ("reactor", reactor)):
        p99 = load_metric(side, "p99_us")
        if p99 is None or p99 > budget:
            failed = True
        shown = "missing" if p99 is None else f"{p99:,.0f}us"
        verdict = "ok" if p99 is not None and p99 <= budget else "FAIL"
        print(f"session_ab {side_name}: corrected p99 {shown} (budget {budget:,.0f}us) {verdict}")
    grown = load_metric(reactor, "steady_threads")
    base = load_metric(reactor, "base_threads")
    if grown is None or base is None or grown - base > 32:
        failed = True
        print(f"session_ab reactor: thread growth {grown} over base {base} FAIL (allowed +32)")
    else:
        print(f"session_ab reactor: {grown - base:.0f} threads over base ok")
    ceiling = ab.get("thread_ceiling")
    if isinstance(ceiling, dict):
        extra = load_metric(ceiling, "threads")
        cbase = load_metric(ceiling, "base_threads")
        if extra is None or cbase is None or extra - cbase > 16:
            failed = True
            print(f"session_ab ceiling: {extra} threads over base {cbase} FAIL (allowed +16)")
        else:
            print(
                f"session_ab ceiling: {ceiling.get('sessions')} bare sessions, "
                f"{extra - cbase:.0f} threads over base ok"
            )
    return failed


def compare(
    pairs: list[tuple[str, float | None, float | None]],
    tolerance: float,
    unit: str,
) -> tuple[bool, int]:
    """Prints per-section drift; returns (any failure, sections compared)."""
    failed = False
    compared = 0
    for section, base, now in pairs:
        if base is None or now is None:
            side = "baseline" if base is None else "fresh"
            print(f"{section}: missing in {side}, skipped")
            continue
        compared += 1
        drift_pct = (now - base) / base * 100.0
        verdict = "ok"
        if drift_pct < -tolerance:
            verdict = f"FAIL (allowed -{tolerance:g}%)"
            failed = True
        print(f"{section}: {base:,.0f} -> {now:,.0f} {unit} ({drift_pct:+.2f}%) {verdict}")
    return failed, compared


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("fresh", help="freshly produced report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=15.0,
        help="max allowed throughput regression, percent (default 15)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="wire only: require fresh/baseline >= X at the 4 KiB codec sections",
    )
    parser.add_argument(
        "--min-session-ratio",
        type=float,
        default=None,
        help="load only: require the fresh session_ab reactor/legacy session ratio >= X",
    )
    args = parser.parse_args()

    reports = {}
    for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
        try:
            with open(path, encoding="utf-8") as fh:
                reports[label] = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {label} {path}: {exc}", file=sys.stderr)
            return 2

    baseline, fresh = reports["baseline"], reports["fresh"]
    schemas = {baseline.get("schema"), fresh.get("schema")}
    if len(schemas) != 1 or schemas & {None}:
        print(
            f"error: schema mismatch: baseline {baseline.get('schema')!r}, "
            f"fresh {fresh.get('schema')!r}",
            file=sys.stderr,
        )
        return 2
    schema = schemas.pop()

    if schema == "bench-stm-v2":
        pairs = [
            (s, stm_cycle_ops(baseline, s), stm_cycle_ops(fresh, s)) for s in STM_SECTIONS
        ]
        failed, compared = compare(pairs, args.tolerance, "ops/s")
    elif schema == "bench-wire-v1":
        pairs = [
            (s, wire_metric(baseline, s, key), wire_metric(fresh, s, key))
            for s, key in wire_sections()
        ]
        failed, compared = compare(pairs, args.tolerance, "units/s")
        if args.min_speedup is not None:
            for codec in ("xdr", "jdr"):
                section = f"{codec}_{WIRE_GATE_SIZE}"
                base = wire_metric(baseline, section, "ops_per_sec")
                now = wire_metric(fresh, section, "ops_per_sec")
                if base is None or now is None:
                    print(f"{section}: speedup check skipped (missing data)")
                    continue
                ratio = now / base
                verdict = "ok" if ratio >= args.min_speedup else "FAIL"
                if ratio < args.min_speedup:
                    failed = True
                print(
                    f"{section}: speedup {ratio:.2f}x over baseline "
                    f"(need {args.min_speedup:g}x) {verdict}"
                )
    elif schema == "bench-load-v1":
        # Throughput: every offered rate swept by both reports.
        rates = [
            e.get("rate")
            for e in baseline.get("sweep", [])
            if isinstance(e, dict) and isinstance(e.get("rate"), int)
        ]
        pairs = [
            (
                f"rate_{rate}",
                load_metric(load_sweep_entry(baseline, rate), "achieved_rate"),
                load_metric(load_sweep_entry(fresh, rate), "achieved_rate"),
            )
            for rate in rates
        ]
        failed, compared = compare(pairs, args.tolerance, "ops/s")
        # Latency: corrected p99 at the reference rate, lower is better.
        ref = baseline.get("reference_rate")
        base_p99 = load_metric(load_sweep_entry(baseline, ref), "p99_us")
        now_p99 = load_metric(load_sweep_entry(fresh, ref), "p99_us")
        if base_p99 is None or now_p99 is None:
            print(f"p99@{ref}: missing on one side, skipped")
        else:
            compared += 1
            drift_pct = (now_p99 - base_p99) / base_p99 * 100.0
            verdict = "ok"
            if drift_pct > args.tolerance:
                verdict = f"FAIL (allowed +{args.tolerance:g}%)"
                failed = True
            print(f"p99@{ref}: {base_p99:,.0f} -> {now_p99:,.0f} us ({drift_pct:+.2f}%) {verdict}")
        if args.min_session_ratio is not None:
            if check_session_ab(fresh, args.min_session_ratio):
                failed = True
            compared += 1
    else:
        print(f"error: unknown schema {schema!r}", file=sys.stderr)
        return 2

    if compared == 0:
        print("error: no comparable sections between reports", file=sys.stderr)
        return 2
    if failed:
        print("bench gate: REGRESSION", file=sys.stderr)
        return 1
    print("bench gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
