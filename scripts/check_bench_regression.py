#!/usr/bin/env python3
"""Bench regression gate for the STM perf trajectory.

Compares a fresh ``stm_perf --suite`` report against the committed
baseline (``BENCH_stm.json``, schema ``bench-stm-v2``) and fails when
cycle throughput in any section regresses by more than the tolerance.

Both files are produced by ``stm_perf``; sections present in both are
compared, sections present only on one side are reported but never
fail the gate (so adding a section does not break old baselines).

The absolute numbers in the committed baseline come from whatever
machine recorded them, so cross-machine runs are noisy by nature; the
CI job reruns the suite on the same runner class every time, and the
15% default tolerance absorbs runner-to-runner drift. The 8-thread
sharded-vs-single-lock speedup is checked by ``stm_perf --min-speedup``
itself (scaled to the machine's core count), not here.

Usage:
    check_bench_regression.py BASELINE FRESH [--tolerance PCT]

Exit codes: 0 ok, 1 regression, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import sys

SECTIONS = ("single_thread", "threads_8", "batch_32")


def cycle_ops(report: dict, section: str) -> float | None:
    """Cycle ops/sec for one suite section, or None when absent."""
    sec = report.get(section)
    if not isinstance(sec, dict):
        return None
    try:
        return float(sec["ops"]["cycle"]["ops_per_sec"])
    except (KeyError, TypeError, ValueError):
        return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_stm.json")
    parser.add_argument("fresh", help="freshly produced suite report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=15.0,
        help="max allowed cycle ops/sec regression, percent (default 15)",
    )
    args = parser.parse_args()

    reports = {}
    for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
        try:
            with open(path, encoding="utf-8") as fh:
                reports[label] = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {label} {path}: {exc}", file=sys.stderr)
            return 2

    baseline, fresh = reports["baseline"], reports["fresh"]
    for label, rep, path in (
        ("baseline", baseline, args.baseline),
        ("fresh", fresh, args.fresh),
    ):
        schema = rep.get("schema")
        if schema != "bench-stm-v2":
            print(
                f"error: {label} {path} has schema {schema!r}, want 'bench-stm-v2'",
                file=sys.stderr,
            )
            return 2

    failed = False
    compared = 0
    for section in SECTIONS:
        base = cycle_ops(baseline, section)
        now = cycle_ops(fresh, section)
        if base is None or now is None:
            side = "baseline" if base is None else "fresh"
            print(f"{section}: missing in {side}, skipped")
            continue
        compared += 1
        drift_pct = (now - base) / base * 100.0
        verdict = "ok"
        if drift_pct < -args.tolerance:
            verdict = f"FAIL (allowed -{args.tolerance:g}%)"
            failed = True
        print(
            f"{section}: cycle {base:,.0f} -> {now:,.0f} ops/s "
            f"({drift_pct:+.2f}%) {verdict}"
        )

    if compared == 0:
        print("error: no comparable sections between reports", file=sys.stderr)
        return 2
    if failed:
        print("bench gate: REGRESSION", file=sys.stderr)
        return 1
    print("bench gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
