#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON export (object form).

Checks the shape chrome://tracing and Perfetto expect:

- top level is an object with a ``traceEvents`` array
- every event is an object with ``name``/``ph``/``pid``/``tid`` fields
- duration events (``ph == "X"``) carry numeric ``ts`` and ``dur``
- instant events (``ph == "i"``) carry numeric ``ts``
- at least one non-metadata event exists (an empty trace means the
  exporter or the sampling plumbing silently broke)
- all events sharing a ``trace`` arg agree on at least one pid-spanning
  story: the file must reference >= 2 pids when metadata names several
  address spaces (cross-space propagation evidence)

Usage: check_chrome_trace.py TRACE.json
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_chrome_trace.py TRACE.json")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")

    if not isinstance(doc, dict):
        fail("top level must be an object (Chrome trace 'object form')")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")

    real_events = 0
    pids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{i}] is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                fail(f"traceEvents[{i}] missing '{field}'")
        ph = ev["ph"]
        if ph == "M":
            continue  # metadata (process_name etc.)
        real_events += 1
        pids.add(ev["pid"])
        if not isinstance(ev.get("ts"), (int, float)):
            fail(f"traceEvents[{i}] ({ph}) needs numeric 'ts'")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(f"traceEvents[{i}] (X) needs numeric 'dur'")

    if real_events == 0:
        fail("no non-metadata events: tracing recorded nothing")

    meta_pids = {ev["pid"] for ev in events if ev.get("ph") == "M"}
    if len(meta_pids) >= 2 and len(pids) < 2:
        fail(
            "metadata names several address spaces but all spans sit on "
            "one pid: cross-space trace propagation is broken"
        )

    print(
        f"OK: {path}: {real_events} events across {len(pids)} source(s), "
        f"{len(events) - real_events} metadata record(s)"
    )


if __name__ == "__main__":
    main()
