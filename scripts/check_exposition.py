#!/usr/bin/env python3
"""Validate a Prometheus text exposition export.

Checks the shape a Prometheus scraper expects:

- every sample line parses as ``name{labels} value`` with a legal
  metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``) and a finite numeric value
- every metric family is announced by ``# HELP`` and ``# TYPE`` lines
  (type one of counter/gauge/histogram) before its first sample, and
  every announced family carries at least one sample
- counter families end in ``_total`` and their values are non-negative
  (counters are monotonic; a scrape can only assert >= 0)
- label values escape ``\\``, ``"`` and newlines; label names are legal
- histogram families expose ``_bucket`` series with cumulative,
  non-decreasing counts per label set, ending in an ``le="+Inf"``
  bucket, plus matching ``_sum`` and ``_count`` series where ``_count``
  equals the ``+Inf`` bucket

Usage: check_exposition.py METRICS.prom
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def family_of(name: str) -> str:
    """Strips histogram sample suffixes back to the announced family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(lineno: int, raw: str) -> dict:
    body = raw[1:-1]
    labels = {}
    consumed = 0
    for m in LABEL_RE.finditer(body):
        if not LABEL_NAME_RE.match(m.group(1)):
            fail(f"line {lineno}: bad label name {m.group(1)!r}")
        if "\n" in m.group(2):
            fail(f"line {lineno}: unescaped newline in label value")
        labels[m.group(1)] = m.group(2)
        consumed = m.end()
    leftover = body[consumed:].strip(", ")
    if leftover:
        fail(f"line {lineno}: unparsable label fragment {leftover!r}")
    return labels


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_exposition.py METRICS.prom")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        fail(f"{path}: {exc}")

    types = {}  # family -> declared type
    helped = set()
    samples = []  # (lineno, name, labels, value)
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                fail(f"line {lineno}: malformed HELP line")
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                fail(f"line {lineno}: malformed TYPE line")
            family, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"line {lineno}: unknown metric type {kind!r}")
            if family in types:
                fail(f"line {lineno}: duplicate TYPE for {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: unparsable sample line {line!r}")
        name, raw_labels, raw_value = m.groups()
        try:
            value = float(raw_value)
        except ValueError:
            fail(f"line {lineno}: non-numeric value {raw_value!r}")
        if math.isnan(value) or math.isinf(value):
            fail(f"line {lineno}: non-finite value {raw_value!r}")
        labels = parse_labels(lineno, raw_labels) if raw_labels else {}
        samples.append((lineno, name, labels, value))

    if not samples:
        fail("no samples: the exporter wrote an empty exposition")

    histograms = {}  # family -> {"bucket": {key: [(le, count)]}, "sum": {}, "count": {}}
    for lineno, name, labels, value in samples:
        family = family_of(name)
        kind = types.get(family) or types.get(name)
        if kind is None:
            fail(f"line {lineno}: sample {name} has no TYPE announcement")
        if (family if kind == "histogram" else name) not in helped:
            fail(f"line {lineno}: sample {name} has no HELP announcement")
        if kind == "counter":
            if not name.endswith("_total"):
                fail(f"line {lineno}: counter {name} must end in _total")
            if value < 0:
                fail(f"line {lineno}: counter {name} is negative ({value})")
        if kind == "histogram":
            slot = histograms.setdefault(
                family, {"bucket": {}, "sum": {}, "count": {}}
            )
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    fail(f"line {lineno}: histogram bucket without 'le' label")
                bound = math.inf if le == "+Inf" else float(le)
                slot["bucket"].setdefault(key, []).append((bound, value))
            elif name.endswith("_sum"):
                slot["sum"][key] = value
            elif name.endswith("_count"):
                slot["count"][key] = value
            else:
                fail(f"line {lineno}: histogram sample {name} lacks a suffix")

    for family, kind in types.items():
        seen = any(family_of(name) == family or name == family for _, name, _, _ in samples)
        if not seen:
            fail(f"TYPE announced for {family} but no samples follow")
        if family not in helped:
            fail(f"{family} has TYPE but no HELP")

    for family, series in histograms.items():
        for key, buckets in series["bucket"].items():
            buckets.sort(key=lambda b: b[0])
            if not buckets or buckets[-1][0] != math.inf:
                fail(f"{family}{dict(key)}: missing le=\"+Inf\" bucket")
            counts = [c for _, c in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                fail(f"{family}{dict(key)}: bucket counts are not cumulative")
            if key not in series["sum"]:
                fail(f"{family}{dict(key)}: missing _sum series")
            if key not in series["count"]:
                fail(f"{family}{dict(key)}: missing _count series")
            if series["count"][key] != counts[-1]:
                fail(
                    f"{family}{dict(key)}: _count {series['count'][key]} != "
                    f"+Inf bucket {counts[-1]}"
                )

    counters = sum(1 for f, k in types.items() if k == "counter")
    print(
        f"OK: {path}: {len(samples)} samples across {len(types)} families "
        f"({counters} counters, {len(histograms)} histograms)"
    )


if __name__ == "__main__":
    main()
