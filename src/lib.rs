//! # D-Stampede — a Rust reproduction of the ICDCS 2002 system
//!
//! *D-Stampede: Distributed Programming System for Ubiquitous Computing*
//! (Adhikari, Paul, Ramachandran — ICDCS 2002) built a distributed
//! programming system for interactive, stream-oriented applications:
//! timestamp-indexed **channels** and FIFO **queues** ("space-time
//! memory") shared across a cluster and a fleet of end devices, with
//! automatic distributed garbage collection of stream data, handler
//! functions, loose real-time synchrony, a name server, and heterogeneous
//! (C and Java) client libraries.
//!
//! This crate is a facade re-exporting the whole workspace:
//!
//! * [`core`] ([`dstampede_core`]) — space-time memory: [`Channel`],
//!   [`Queue`], garbage collection, [`rtsync`](core::rtsync);
//! * [`wire`] ([`dstampede_wire`]) — the RPC vocabulary and the two
//!   marshalling codecs (XDR ↔ the C client, JDR ↔ the Java client);
//! * [`clf`] ([`dstampede_clf`]) — the CLF transport: reliable ordered
//!   messaging over in-process channels or UDP, plus network shaping;
//! * [`runtime`] ([`dstampede_runtime`]) — address spaces, surrogate
//!   threads, the name server, and [`Cluster`] assembly;
//! * [`client`] ([`dstampede_client`]) — the end-device client library
//!   ([`EndDevice`]);
//! * [`apps`] ([`dstampede_apps`]) — the paper's reference applications
//!   (video conferencing, vision pipeline).
//!
//! ## Quickstart
//!
//! The paper's §3.1 producer/consumer pseudocode, end to end over a real
//! cluster and client session:
//!
//! ```
//! use dstampede::client::EndDevice;
//! use dstampede::core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
//! use dstampede::runtime::Cluster;
//! use dstampede::wire::WaitSpec;
//!
//! # fn main() -> Result<(), dstampede::core::StmError> {
//! let cluster = Cluster::in_process(1)?;
//! let device = EndDevice::attach_c(cluster.listener_addr(0)?, "quickstart")?;
//!
//! let chan = device.create_channel(Some("demo"), ChannelAttrs::default())?;
//! let out = device.connect_channel_out(chan)?;
//! let inp = device.connect_channel_in(chan, Interest::FromEarliest)?;
//!
//! for ts in 0..3 {
//!     out.put(Timestamp::new(ts), Item::from_vec(vec![ts as u8]), WaitSpec::Forever)?;
//! }
//! for ts in 0..3 {
//!     let (t, item) = inp.get(GetSpec::Exact(Timestamp::new(ts)), WaitSpec::Forever)?;
//!     assert_eq!(item.payload(), &[ts as u8]);
//!     inp.consume_until(t)?; // signal garbage
//! }
//!
//! drop((out, inp));
//! device.detach()?;
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use dstampede_apps as apps;
pub use dstampede_clf as clf;
pub use dstampede_client as client;
pub use dstampede_core as core;
pub use dstampede_runtime as runtime;
pub use dstampede_wire as wire;

pub use dstampede_client::EndDevice;
pub use dstampede_core::{Channel, Item, Queue, StmError, StmResult, Timestamp};
pub use dstampede_runtime::Cluster;
