//! Cross-crate integration tests: full D-Stampede computations spanning
//! address spaces, end devices, both codecs, both CLF backends, and the
//! distributed GC machinery.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dstampede::client::EndDevice;
use dstampede::core::{
    ChannelAttrs, GcPolicy, GetSpec, Interest, Item, OverflowPolicy, QueueAttrs, ResourceId,
    StmError, Timestamp, VirtualTime,
};
use dstampede::runtime::{Cluster, ClusterTransport, GcEpochConfig, GcEpochService};
use dstampede::wire::WaitSpec;

fn ts(v: i64) -> Timestamp {
    Timestamp::new(v)
}

/// The paper's §4 startup narrative, literally: multiple address spaces,
/// clients creating channels via surrogates, ids published through the
/// name server, a mixer correlating timestamped items from every client
/// channel, composites flowing back out to the clients.
#[test]
fn paper_section4_startup_sequence() {
    let clients = 3usize;
    let cluster = Cluster::in_process(3).unwrap();
    let mixer_space = cluster.space(2).unwrap();

    // Mixer side: output channel C_0, registered for clients to find.
    let c0 = mixer_space.create_channel(None, ChannelAttrs::default());
    mixer_space
        .ns_register("s4/composite", ResourceId::Channel(c0.id()), "mixer output")
        .unwrap();

    // Clients join different listeners, create their C_j and register.
    let mut devices = Vec::new();
    for j in 0..clients {
        let addr = cluster.listener_addr((j % 2) as u16).unwrap();
        let device = EndDevice::attach_c(addr, &format!("s4-client-{j}")).unwrap();
        let chan = device
            .create_channel(None, ChannelAttrs::default())
            .unwrap();
        device
            .ns_register(&format!("s4/client{j}"), ResourceId::Channel(chan), "")
            .unwrap();
        devices.push((device, chan));
    }

    // Producers put three timestamped frames each.
    for (j, (device, chan)) in devices.iter().enumerate() {
        let out = device.connect_channel_out(*chan).unwrap();
        for t in 0..3 {
            out.put(
                ts(t),
                Item::from_vec(vec![j as u8; 32]).with_tag(j as u32),
                WaitSpec::Forever,
            )
            .unwrap();
        }
    }

    // The mixer finds every client channel by name and correlates by
    // timestamp.
    let mixer_out = mixer_space
        .open_channel(c0.id())
        .unwrap()
        .connect_output()
        .unwrap();
    let mut inputs = Vec::new();
    for j in 0..clients {
        let (res, _) = mixer_space
            .ns_lookup_wait(&format!("s4/client{j}"), Some(Duration::from_secs(5)))
            .unwrap();
        let ResourceId::Channel(id) = res else {
            panic!("not a channel")
        };
        inputs.push(
            mixer_space
                .open_channel(id)
                .unwrap()
                .connect_input(Interest::FromEarliest)
                .unwrap(),
        );
    }
    for t in 0..3 {
        let mut composite = Vec::new();
        for inp in &inputs {
            let (_, item) = inp.get(GetSpec::Exact(ts(t)), WaitSpec::Forever).unwrap();
            composite.extend_from_slice(item.payload());
            inp.consume_until(ts(t)).unwrap();
        }
        mixer_out
            .put(ts(t), Item::from_vec(composite), WaitSpec::Forever)
            .unwrap();
    }

    // Displays: every client reads the composite back via the name
    // server. All displays connect before any consumes, as the paper's
    // application does — a display consuming alone would let GC reclaim
    // composites before later displays join.
    let mut display_inputs = Vec::new();
    for (device, _) in &devices {
        let (res, _) = device.ns_lookup("s4/composite", WaitSpec::Forever).unwrap();
        let ResourceId::Channel(id) = res else {
            panic!("not a channel")
        };
        display_inputs.push(
            device
                .connect_channel_in(id, Interest::FromEarliest)
                .unwrap(),
        );
    }
    for inp in &display_inputs {
        for t in 0..3 {
            let (_, item) = inp.get(GetSpec::Exact(ts(t)), WaitSpec::Forever).unwrap();
            assert_eq!(item.len(), clients * 32);
            for j in 0..clients {
                assert!(item.payload()[j * 32..(j + 1) * 32]
                    .iter()
                    .all(|&b| b == j as u8));
            }
            inp.consume_until(ts(t)).unwrap();
        }
    }
    cluster.shutdown();
}

/// The same computation runs unchanged over the UDP CLF backend.
#[test]
fn udp_backend_is_transparent_to_the_application() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .transport(ClusterTransport::Udp(dstampede::clf::UdpConfig::default()))
        .build()
        .unwrap();
    let device = EndDevice::attach_java(cluster.listener_addr(0).unwrap(), "udp-client").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    // Consumer in the *other* address space: items cross the UDP fabric.
    let inp = cluster
        .space(1)
        .unwrap()
        .open_channel(chan)
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();
    let payload: Vec<u8> = (0..30_000u32).map(|i| (i % 251) as u8).collect();
    out.put(ts(1), Item::from_vec(payload.clone()), WaitSpec::Forever)
        .unwrap();
    let (_, item) = inp.get_blocking(GetSpec::Exact(ts(1))).unwrap();
    assert_eq!(item.payload(), &payload[..]);
    cluster.shutdown();
}

/// A lossy intra-cluster network still delivers the stream intact
/// (CLF's reliability contract under fault injection).
#[test]
fn lossy_udp_cluster_still_correct() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .transport(ClusterTransport::Udp(dstampede::clf::UdpConfig {
            loss: dstampede::clf::LossInjection::DropEveryNth(5),
            rto: Duration::from_millis(20),
            ..dstampede::clf::UdpConfig::default()
        }))
        .listeners(false)
        .build()
        .unwrap();
    let owner = cluster.space(0).unwrap();
    let peer = cluster.space(1).unwrap();
    let chan = owner.create_channel(None, ChannelAttrs::default());
    let out = peer
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();
    let inp = owner
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();
    for t in 0..20 {
        out.put(
            ts(t),
            Item::from_vec(vec![t as u8; 5000]),
            WaitSpec::Forever,
        )
        .unwrap();
    }
    for t in 0..20 {
        let (_, item) = inp.get_blocking(GetSpec::Exact(ts(t))).unwrap();
        assert!(item.payload().iter().all(|&b| b == t as u8));
        inp.consume_until(ts(t)).unwrap();
    }
    // Retransmissions must actually have happened for this to mean much.
    let stats = peer.transport().stats();
    assert!(
        stats.retransmits > 0,
        "no retransmissions under loss injection"
    );
    cluster.shutdown();
}

/// Distributed GC epochs aggregate end-to-end while a real workload runs,
/// and the global floor advances as the slowest thread advances.
#[test]
fn gc_epochs_track_a_running_pipeline() {
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let a0 = cluster.space(0).unwrap();
    let a1 = cluster.space(1).unwrap();
    let service = GcEpochService::start(
        cluster.spaces(),
        GcEpochConfig {
            period: Duration::from_millis(5),
        },
    );

    let t0 = a0.threads().register("producer");
    let t1 = a1.threads().register("consumer");
    let chan = a0.create_channel(
        None,
        ChannelAttrs::builder().gc(GcPolicy::Transparent).build(),
    );
    let out = a0
        .open_channel(chan.id())
        .unwrap()
        .connect_output()
        .unwrap();
    let inp = a1
        .open_channel(chan.id())
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();

    for t in 0..50 {
        out.put(ts(t), Item::from_vec(vec![1; 128]), WaitSpec::Forever)
            .unwrap();
        t0.set_vt(VirtualTime::at(ts(t)));
    }
    for t in 0..50 {
        let (_, _item) = inp.get_blocking(GetSpec::Exact(ts(t))).unwrap();
        inp.set_vt(VirtualTime::at(ts(t + 1))).unwrap();
        t1.set_vt(VirtualTime::at(ts(t + 1)));
    }
    // The channel reclaims on the connection promises...
    assert_eq!(chan.live_items(), 0);
    // ...and the epoch service converges on the cluster-wide floor (the
    // slower of the two advisory thread clocks).
    let expect = VirtualTime::at(ts(49));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while a0.gc_global_floor() < expect && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(a0.gc_global_floor() >= expect);
    service.shutdown();
    cluster.shutdown();
}

/// Bounded channels provide end-to-end flow control across the full
/// client→surrogate→channel path: a fast producer is paced by a slow
/// consumer.
#[test]
fn flow_control_paces_remote_producer() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "paced-producer").unwrap();
    let chan = device
        .create_channel(
            None,
            ChannelAttrs::builder()
                .capacity(2)
                .overflow(OverflowPolicy::Block)
                .build(),
        )
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();

    let consumer = EndDevice::attach_c(addr, "slow-consumer").unwrap();
    let inp = consumer
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();

    let producer = std::thread::spawn(move || {
        let start = std::time::Instant::now();
        for t in 0..6 {
            out.put(ts(t), Item::from_vec(vec![0; 16]), WaitSpec::Forever)
                .unwrap();
        }
        start.elapsed()
    });

    // Drain slowly: 20ms per item.
    for t in 0..6 {
        std::thread::sleep(Duration::from_millis(20));
        let (_, _) = inp.get(GetSpec::Exact(ts(t)), WaitSpec::Forever).unwrap();
        inp.consume_until(ts(t)).unwrap();
    }
    let produce_time = producer.join().unwrap();
    // Six puts against capacity 2 drained at 20ms apiece must take at
    // least ~3 drain intervals.
    assert!(
        produce_time >= Duration::from_millis(50),
        "producer finished in {produce_time:?}, was not paced"
    );
    cluster.shutdown();
}

/// Queues shared by cluster threads and end devices interoperate, with
/// crash recovery requeueing an end device's in-flight work.
#[test]
fn mixed_cluster_and_device_workers() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let space = cluster.space(0).unwrap();
    let queue = space.create_queue(None, QueueAttrs::default());

    let boss = EndDevice::attach_c(addr, "boss").unwrap();
    let out = boss.connect_queue_out(queue.id()).unwrap();
    for i in 0..10u32 {
        out.put(
            ts(0),
            Item::from_vec(vec![i as u8]).with_tag(i),
            WaitSpec::Forever,
        )
        .unwrap();
    }

    let done = Arc::new(AtomicUsize::new(0));

    // A cluster-side worker.
    let cluster_worker = {
        let inp = space
            .open_queue(queue.id())
            .unwrap()
            .connect_input()
            .unwrap();
        let done = Arc::clone(&done);
        std::thread::spawn(move || loop {
            match inp.get(WaitSpec::TimeoutMs(300)) {
                Ok((_, _item, ticket)) => {
                    inp.consume(ticket).unwrap();
                    done.fetch_add(1, Ordering::SeqCst);
                }
                Err(StmError::Timeout) => break,
                Err(e) => panic!("{e}"),
            }
        })
    };

    // An end-device worker.
    let device_worker = {
        let done = Arc::clone(&done);
        let queue_id = queue.id();
        std::thread::spawn(move || {
            let device = EndDevice::attach_java(addr, "worker").unwrap();
            let inp = device.connect_queue_in(queue_id).unwrap();
            loop {
                match inp.get(WaitSpec::TimeoutMs(300)) {
                    Ok((_, _item, ticket)) => {
                        inp.consume(ticket).unwrap();
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(StmError::Timeout) => break,
                    Err(e) => panic!("{e}"),
                }
            }
        })
    };

    cluster_worker.join().unwrap();
    device_worker.join().unwrap();
    assert_eq!(done.load(Ordering::SeqCst), 10);
    assert_eq!(queue.stats().consumes, 10);
    cluster.shutdown();
}

/// Client garbage hooks fire across a multi-space cluster for channels in
/// the surrogate's address space, and piggy-backed delivery batches.
#[test]
fn gc_notes_batch_across_calls() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "gc-batch").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    device
        .install_garbage_hook(ResourceId::Channel(chan), move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();

    let out = device.connect_channel_out(chan).unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    for t in 0..5 {
        out.put(ts(t), Item::from_vec(vec![0; 8]), WaitSpec::Forever)
            .unwrap();
    }
    // One consume reclaims all five; the notes arrive with the next reply.
    inp.consume_until(ts(4)).unwrap();
    device.ping(0).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 5);
    cluster.shutdown();
}
