//! Failure-injection tests: the dynamism and fault behaviour the paper
//! motivates (§2 dynamic start/stop) and the failure handling it lists as
//! future work (§3.3), which this implementation provides as an extension.

use std::io::Write;
use std::time::Duration;

use dstampede::client::EndDevice;
use dstampede::core::{
    ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, ResourceId, StmError, Timestamp,
};
use dstampede::runtime::Cluster;
use dstampede::wire::{
    codec_for, read_frame_bytes, write_encoded, CodecId, Request, RequestFrame, WaitSpec,
};

fn ts(v: i64) -> Timestamp {
    Timestamp::new(v)
}

/// Raw protocol session that we can kill at any point.
struct RawSession {
    stream: std::net::TcpStream,
    codec: std::sync::Arc<dyn dstampede::wire::Codec>,
    seq: u64,
}

impl RawSession {
    fn attach(addr: std::net::SocketAddr) -> Self {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(&[CodecId::Xdr.byte()]).unwrap();
        let mut s = RawSession {
            stream,
            codec: codec_for(CodecId::Xdr),
            seq: 0,
        };
        s.call(Request::Attach {
            client_name: "raw".into(),
        });
        s
    }

    fn call(&mut self, req: Request) -> dstampede::wire::Reply {
        self.seq += 1;
        let encoded = self
            .codec
            .encode_request(&RequestFrame::new(self.seq, req))
            .unwrap();
        write_encoded(&mut self.stream, &encoded).unwrap();
        let frame = read_frame_bytes(&mut self.stream).unwrap();
        self.codec.decode_reply(&frame).unwrap().reply
    }
}

#[test]
fn crashed_worker_loses_no_queue_items() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let space = cluster.space(0).unwrap();
    let queue = space.create_queue(None, QueueAttrs::default());

    let boss = EndDevice::attach_c(addr, "boss").unwrap();
    let out = boss.connect_queue_out(queue.id()).unwrap();
    for i in 0..4u32 {
        out.put(
            ts(0),
            Item::from_vec(vec![i as u8]).with_tag(i),
            WaitSpec::Forever,
        )
        .unwrap();
    }

    // A raw worker takes two items and crashes without settling them.
    {
        let mut worker = RawSession::attach(addr);
        let conn = match worker.call(Request::ConnectQueueIn { queue: queue.id() }) {
            dstampede::wire::Reply::Connected { conn } => conn,
            other => panic!("unexpected {other:?}"),
        };
        for _ in 0..2 {
            match worker.call(Request::QueueGet {
                conn,
                wait: WaitSpec::Forever,
            }) {
                dstampede::wire::Reply::QueueItem { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // Crash: socket dropped with two tickets outstanding.
    }

    // Teardown requeues them; a healthy worker processes all four.
    let rescuer = EndDevice::attach_c(addr, "rescuer").unwrap();
    let inp = rescuer.connect_queue_in(queue.id()).unwrap();
    let mut tags = Vec::new();
    for _ in 0..4 {
        let (_, item, ticket) = inp.get(WaitSpec::TimeoutMs(3000)).unwrap();
        tags.push(item.tag());
        inp.consume(ticket).unwrap();
    }
    tags.sort_unstable();
    assert_eq!(tags, vec![0, 1, 2, 3]);
    cluster.shutdown();
}

#[test]
fn crash_mid_blocking_get_frees_the_surrogate() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let creator = EndDevice::attach_c(addr, "creator").unwrap();
    let chan = creator
        .create_channel(None, ChannelAttrs::default())
        .unwrap();

    // A client starts a blocking get that will never be satisfied, then
    // dies. The write side of its socket vanishes; the surrogate is stuck
    // in the blocking get but its session must still be torn down once the
    // item arrives or the channel closes.
    {
        let mut waiter = RawSession::attach(addr);
        let conn = match waiter.call(Request::ConnectChannelIn {
            chan,
            interest: Interest::FromEarliest,
            filter: dstampede::core::TagFilter::Any,
        }) {
            dstampede::wire::Reply::Connected { conn } => conn,
            other => panic!("unexpected {other:?}"),
        };
        // Fire the blocking get WITHOUT reading the reply, then crash.
        waiter.seq += 1;
        let encoded = waiter
            .codec
            .encode_request(&RequestFrame::new(
                waiter.seq,
                Request::ChannelGet {
                    conn,
                    spec: dstampede::core::GetSpec::Exact(ts(999)),
                    wait: WaitSpec::Forever,
                },
            ))
            .unwrap();
        write_encoded(&mut waiter.stream, &encoded).unwrap();
        // Socket drops here.
    }

    // Satisfy the get after the crash: the surrogate wakes, fails to write
    // the reply to the dead socket, and tears down.
    std::thread::sleep(Duration::from_millis(50));
    let out = creator.connect_channel_out(chan).unwrap();
    out.put(ts(999), Item::from_vec(vec![1]), WaitSpec::Forever)
        .unwrap();

    let listener = cluster.listener(0).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while listener.stats().active_surrogates > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    // Only the healthy creator session remains.
    assert_eq!(listener.stats().active_surrogates, 1);
    assert!(listener.stats().dirty_teardowns >= 1);
    cluster.shutdown();
}

#[test]
fn channel_close_unblocks_every_party() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "blocked").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let inp = device
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();

    let space = cluster.space(0).unwrap();
    let chan_arc = space.registry().channel(chan).unwrap();
    let closer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        chan_arc.close();
    });
    let err = inp
        .get(GetSpec::Exact(ts(5)), WaitSpec::Forever)
        .unwrap_err();
    assert_eq!(err, StmError::Closed);
    closer.join().unwrap();
    cluster.shutdown();
}

#[test]
fn cluster_shutdown_fails_client_operations_cleanly() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "orphan").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();
    out.put(ts(1), Item::from_vec(vec![1]), WaitSpec::Forever)
        .unwrap();
    cluster.shutdown();
    // The surrogate survives on its open socket (it dies when the client
    // goes away), but every container operation now fails cleanly: the
    // shutdown closed all containers.
    let err = out
        .put(ts(2), Item::from_vec(vec![2]), WaitSpec::Forever)
        .unwrap_err();
    assert!(
        matches!(err, StmError::Closed | StmError::Disconnected),
        "unexpected error {err}"
    );
    // New clients cannot join a shut-down cluster.
    assert!(EndDevice::attach_c(addr, "late").is_err());
}

#[test]
fn name_collisions_and_lookup_races_are_clean() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let a = EndDevice::attach_c(addr, "a").unwrap();
    let b = EndDevice::attach_c(addr, "b").unwrap();
    let chan_a = a.create_channel(None, ChannelAttrs::default()).unwrap();
    let chan_b = b.create_channel(None, ChannelAttrs::default()).unwrap();

    // Both race to claim the same name; exactly one wins.
    let ra = a.ns_register("contested", ResourceId::Channel(chan_a), "a");
    let rb = b.ns_register("contested", ResourceId::Channel(chan_b), "b");
    assert!(
        ra.is_ok() != rb.is_ok() || (ra.is_ok() && rb.is_err()) || (rb.is_ok() && ra.is_err()),
        "exactly one registration must win: {ra:?} {rb:?}"
    );

    // A blocked lookup on another name survives the collision noise.
    let c = EndDevice::attach_c(addr, "c").unwrap();
    let waiter = std::thread::spawn(move || c.ns_lookup("late", WaitSpec::TimeoutMs(3000)));
    std::thread::sleep(Duration::from_millis(30));
    a.ns_register("late", ResourceId::Channel(chan_a), "")
        .unwrap();
    assert!(waiter.join().unwrap().is_ok());
    cluster.shutdown();
}

#[test]
fn double_detach_and_stale_handles() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();
    let device = EndDevice::attach_c(addr, "stale").unwrap();
    let chan = device
        .create_channel(None, ChannelAttrs::default())
        .unwrap();
    let out = device.connect_channel_out(chan).unwrap();

    // A second session has no access to the first session's handle space:
    // its connection numbering is independent, so handle 1 either does not
    // exist yet or is its own.
    let other = EndDevice::attach_c(addr, "other").unwrap();
    let other_in = other
        .connect_channel_in(chan, Interest::FromEarliest)
        .unwrap();
    out.put(ts(1), Item::from_vec(vec![9]), WaitSpec::Forever)
        .unwrap();
    let (_, item) = other_in
        .get(GetSpec::Exact(ts(1)), WaitSpec::Forever)
        .unwrap();
    assert_eq!(item.payload(), &[9]);

    drop(out);
    device.detach().unwrap();
    cluster.shutdown();
}
