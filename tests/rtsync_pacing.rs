//! Integration test of loose real-time synchrony: a paced producer
//! sustains its declared rate through the full distributed stack, and the
//! late-handler machinery engages when the thread cannot keep up.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dstampede::client::EndDevice;
use dstampede::core::rtsync::{Clock, RealClock, Recovery, RtSync, SyncStatus};
use dstampede::core::{ChannelAttrs, GetSpec, Interest, Item, Timestamp};
use dstampede::runtime::Cluster;
use dstampede::wire::WaitSpec;

#[test]
fn paced_camera_sustains_target_rate_end_to_end() {
    let cluster = Cluster::in_process(1).unwrap();
    let addr = cluster.listener_addr(0).unwrap();

    const FRAMES: i64 = 25;
    const PERIOD: Duration = Duration::from_millis(10); // a "100 fps camera"

    // Camera end device paced by RtSync.
    let producer = std::thread::spawn(move || {
        let device = EndDevice::attach_c(addr, "camera").unwrap();
        let chan = device
            .create_channel(Some("paced"), ChannelAttrs::default())
            .unwrap();
        device
            .ns_register("paced", dstampede::core::ResourceId::Channel(chan), "")
            .unwrap();
        let out = device.connect_channel_out(chan).unwrap();
        let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
        let mut pacer = RtSync::new(clock, PERIOD, Duration::from_millis(3));
        let start = Instant::now();
        for ts in 0..FRAMES {
            out.put(
                Timestamp::new(ts),
                Item::from_vec(vec![0; 256]),
                WaitSpec::Forever,
            )
            .unwrap();
            pacer.synchronize();
        }
        start.elapsed()
    });

    // Consumer validates arrival pacing loosely: total duration must be at
    // least FRAMES * PERIOD (the pacer never lets the camera run ahead).
    let elapsed = producer.join().unwrap();
    let floor = PERIOD * (FRAMES as u32);
    assert!(
        elapsed >= floor - Duration::from_millis(2),
        "paced producer finished in {elapsed:?}, below the floor {floor:?}"
    );
    // And not pathologically slow either (puts are fast on loopback).
    assert!(
        elapsed < floor * 3,
        "paced producer took {elapsed:?}, pacing broken"
    );

    // The stream is complete and ordered.
    let space = cluster.space(0).unwrap();
    let (res, _) = space.ns_lookup("paced").unwrap();
    let dstampede::core::ResourceId::Channel(id) = res else {
        panic!("not a channel")
    };
    let inp = space
        .open_channel(id)
        .unwrap()
        .connect_input(Interest::FromEarliest)
        .unwrap();
    for ts in 0..FRAMES {
        let (t, _) = inp
            .get(
                GetSpec::Exact(Timestamp::new(ts)),
                WaitSpec::TimeoutMs(1000),
            )
            .unwrap();
        assert_eq!(t, Timestamp::new(ts));
    }
    cluster.shutdown();
}

#[test]
fn overloaded_thread_recovers_by_skipping() {
    // A thread whose work takes 3x its declared period must fall behind,
    // fire its late handler, and re-anchor by skipping missed ticks.
    let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
    let mut late_count = 0u32;
    let mut pacer = RtSync::new(clock, Duration::from_millis(5), Duration::from_millis(1))
        .with_late_handler(move |_| Recovery::SkipMissed);
    let mut skipped_total = 0;
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(15)); // overloaded "work"
        match pacer.synchronize() {
            SyncStatus::Late { skipped, .. } => {
                late_count += 1;
                skipped_total += skipped;
            }
            SyncStatus::InSync { .. } | SyncStatus::Early { .. } => {}
        }
    }
    assert!(late_count >= 4, "only {late_count} late ticks");
    assert!(skipped_total >= 4, "only {skipped_total} skipped slots");
    // Ticks advanced past the naive count because of skipping.
    assert!(pacer.ticks() > 5);
}
