//! Seeded multi-threaded stress tests for the sharded STM stores.
//!
//! Every schedule here derives from one `u64` seed, printed to stderr
//! before the run starts; `cargo test` only shows captured output for
//! failing tests, so a red run always names the schedule to replay.
//! Override with `STM_STRESS_SEED=<n>` to reproduce a failure.
//!
//! Invariants checked (ISSUE.md satellite 2):
//! - channels never lose a put item, and the GC floor never overtakes
//!   the slowest connection's cursor (a lagging auditor can still read
//!   every timestamp, byte for byte);
//! - queue items are delivered exactly once per ticket even when
//!   consumers race and randomly requeue;
//! - the batched put/get paths uphold the same guarantees under
//!   contention as the singleton ones.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Duration;

use dstampede::core::{
    Channel, ChannelAttrs, GetSpec, Interest, Item, Queue, QueueAttrs, StmError, Timestamp,
};

/// SplitMix64 — tiny, dependency-free, and plenty for shuffling
/// schedules. Each thread forks its own stream from the base seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

fn seed() -> u64 {
    let seed = std::env::var("STM_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD57A_4EDE_u64);
    eprintln!("stm_concurrent seed = {seed:#x} (set STM_STRESS_SEED to replay)");
    seed
}

/// Payload that makes corruption visible: the timestamp's own bytes.
fn payload_for(ts: i64) -> Item {
    Item::from_vec(ts.to_le_bytes().to_vec())
}

/// Racing producers and consuming readers never lose an item, and the
/// GC floor stays behind the slowest connection: an auditor that never
/// consumes can still read every timestamp after the dust settles.
#[test]
fn channel_stress_no_lost_items_and_gc_floor_safe() {
    const PRODUCERS: usize = 4;
    const READERS: usize = 3;
    const PER_PRODUCER: i64 = 400;
    let base = seed();

    let chan = Channel::standalone(ChannelAttrs::default().with_shards(7));
    let auditor = chan.connect_input(Interest::FromEarliest);
    let total = PRODUCERS as i64 * PER_PRODUCER;
    let producers_done = AtomicUsize::new(0);
    let start = Barrier::new(PRODUCERS + READERS);

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let out = chan.connect_output();
            let (start, producers_done) = (&start, &producers_done);
            s.spawn(move || {
                let mut rng = Rng::new(base ^ (p as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
                start.wait();
                // Disjoint residue classes; shuffled-ish order via random
                // interleave of a forward and a backward cursor.
                let mut lo = 0i64;
                let mut hi = PER_PRODUCER - 1;
                while lo <= hi {
                    let i = if rng.chance(50) {
                        let i = lo;
                        lo += 1;
                        i
                    } else {
                        let i = hi;
                        hi -= 1;
                        i
                    };
                    let ts = Timestamp::new(i * PRODUCERS as i64 + p as i64);
                    out.put(ts, payload_for(ts.value())).unwrap();
                }
                producers_done.fetch_add(1, Ordering::SeqCst);
            });
        }
        for r in 0..READERS {
            let inp = chan.connect_input(Interest::FromEarliest);
            let (start, producers_done) = (&start, &producers_done);
            s.spawn(move || {
                let mut rng = Rng::new(base ^ (r as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
                start.wait();
                // Step forward with After(last). Producers put out of
                // order, so a reader's cursor may jump past a timestamp
                // not yet put — readers therefore verify only what they
                // see and exit once the producers are done and nothing
                // is left beyond the cursor; the auditor below does the
                // exhaustive no-lost-items check.
                let mut last = Timestamp::MIN;
                loop {
                    match inp.try_get(GetSpec::After(last)) {
                        Ok((ts, item)) => {
                            assert_eq!(
                                item.payload(),
                                ts.value().to_le_bytes(),
                                "payload corrupted at ts {ts:?}"
                            );
                            last = ts;
                            // Racing consume_until: harmless for the
                            // floor because the auditor never advances.
                            if rng.chance(20) {
                                inp.consume_until(last).unwrap();
                            }
                        }
                        Err(StmError::Absent) => {
                            if producers_done.load(Ordering::SeqCst) == PRODUCERS {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("reader {r} unexpected error: {e:?}"),
                    }
                }
                inp.consume_until(Timestamp::new(total)).unwrap();
                inp.disconnect();
            });
        }
    });

    // GC floor safety: the auditor never consumed, so nothing may have
    // been reclaimed out from under it.
    assert_eq!(
        chan.live_items(),
        total as usize,
        "items lost despite lagging auditor"
    );
    for ts in 0..total {
        let (t, item) = auditor
            .try_get(GetSpec::Exact(Timestamp::new(ts)))
            .unwrap_or_else(|e| panic!("ts {ts} unreadable by auditor: {e:?}"));
        assert_eq!(t.value(), ts);
        assert_eq!(item.payload(), ts.to_le_bytes());
    }

    // Once the auditor releases its claim, everything is reclaimable.
    auditor.consume_until(Timestamp::new(total)).unwrap();
    assert_eq!(chan.live_items(), 0, "consumed prefix not reclaimed");
}

/// Racing queue consumers that randomly requeue still deliver every
/// item exactly once, and consumed bytes are fully reclaimed.
#[test]
fn queue_stress_tickets_exactly_once() {
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: usize = 300;
    const PAYLOAD: usize = 24;
    let base = seed();

    let q = Queue::standalone(QueueAttrs::default().with_shards(7));
    let total = PRODUCERS * PER_PRODUCER;
    let consumed = AtomicUsize::new(0);
    let requeue_budget = AtomicU64::new(600);
    let delivered: Mutex<Vec<u32>> = Mutex::new(Vec::with_capacity(total));
    let start = Barrier::new(PRODUCERS + CONSUMERS);

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let out = q.connect_output();
            let start = &start;
            s.spawn(move || {
                start.wait();
                for i in 0..PER_PRODUCER {
                    let tag = (p * PER_PRODUCER + i) as u32;
                    out.put(
                        Timestamp::new(tag as i64),
                        Item::from_vec(vec![p as u8; PAYLOAD]).with_tag(tag),
                    )
                    .unwrap();
                }
            });
        }
        for c in 0..CONSUMERS {
            let inp = q.connect_input();
            let (start, consumed, budget, delivered) =
                (&start, &consumed, &requeue_budget, &delivered);
            s.spawn(move || {
                let mut rng = Rng::new(base ^ (c as u64).wrapping_mul(0x9e6c_63d0_876a_68e5));
                let mut mine = Vec::new();
                start.wait();
                while consumed.load(Ordering::SeqCst) < total {
                    match inp.get_timeout(Duration::from_millis(5)) {
                        Ok((_, item, ticket)) => {
                            // Randomly bounce some deliveries back so
                            // the requeue/wakeup path stays hot, but cap
                            // it so the test always terminates.
                            let requeue = rng.chance(25)
                                && budget
                                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                                        b.checked_sub(1)
                                    })
                                    .is_ok();
                            if requeue {
                                inp.requeue(ticket).unwrap();
                            } else {
                                inp.consume(ticket).unwrap();
                                mine.push(item.tag());
                                consumed.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(StmError::Timeout) => {}
                        Err(e) => panic!("consumer {c} unexpected error: {e:?}"),
                    }
                }
                delivered.lock().unwrap().extend(mine);
                inp.disconnect();
            });
        }
    });

    let mut tags = delivered.into_inner().unwrap();
    tags.sort_unstable();
    let expected: Vec<u32> = (0..total as u32).collect();
    assert_eq!(tags, expected, "tickets lost or double-consumed");
    assert_eq!(q.queued_items(), 0);
    assert_eq!(q.inflight_items(), 0);
    assert_eq!(q.stats().reclaimed_bytes, (total * PAYLOAD) as u64);
}

/// The batched wire-path primitives (`put_many` / `try_dequeue_many`)
/// keep the exactly-once guarantee when whole batches race.
#[test]
fn queue_stress_batched_exactly_once() {
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 3;
    const BATCHES: usize = 30;
    const BATCH: usize = 16;
    let base = seed();

    let q = Queue::standalone(QueueAttrs::default().with_shards(4));
    let total = PRODUCERS * BATCHES * BATCH;
    let consumed = AtomicUsize::new(0);
    let delivered: Mutex<Vec<u32>> = Mutex::new(Vec::with_capacity(total));
    let start = Barrier::new(PRODUCERS + CONSUMERS);

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let out = q.connect_output();
            let start = &start;
            s.spawn(move || {
                start.wait();
                for b in 0..BATCHES {
                    let entries: Vec<_> = (0..BATCH)
                        .map(|i| {
                            let tag = ((p * BATCHES + b) * BATCH + i) as u32;
                            (
                                Timestamp::new(tag as i64),
                                Item::from_vec(vec![0xAB; 8]).with_tag(tag),
                            )
                        })
                        .collect();
                    for r in out.put_many(entries) {
                        r.unwrap();
                    }
                }
            });
        }
        for c in 0..CONSUMERS {
            let inp = q.connect_input();
            let (start, consumed, delivered) = (&start, &consumed, &delivered);
            s.spawn(move || {
                let mut rng = Rng::new(base ^ (c as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
                let mut mine = Vec::new();
                start.wait();
                while consumed.load(Ordering::SeqCst) < total {
                    let want = 1 + rng.below(BATCH as u64 * 2) as usize;
                    match inp.try_dequeue_many(want) {
                        Ok(got) => {
                            let n = got.len();
                            assert!(n <= want, "dequeue_many over-delivered");
                            for (_, item, ticket) in got {
                                inp.consume(ticket).unwrap();
                                mine.push(item.tag());
                            }
                            consumed.fetch_add(n, Ordering::SeqCst);
                        }
                        Err(StmError::Absent) => std::thread::yield_now(),
                        Err(e) => panic!("consumer {c} unexpected error: {e:?}"),
                    }
                }
                delivered.lock().unwrap().extend(mine);
                inp.disconnect();
            });
        }
    });

    let mut tags = delivered.into_inner().unwrap();
    tags.sort_unstable();
    let expected: Vec<u32> = (0..total as u32).collect();
    assert_eq!(tags, expected, "batched delivery lost or duplicated items");
    assert_eq!(q.queued_items(), 0);
    assert_eq!(q.inflight_items(), 0);
}
