//! Property-based tests of the space-time memory invariants (DESIGN.md §7).

use proptest::prelude::*;

use dstampede::core::{
    Channel, ChannelAttrs, GcPolicy, GetSpec, Interest, Item, Queue, QueueAttrs, StmError,
    TagFilter, Timestamp, VirtualTime,
};

/// Abstract operations a random schedule performs on a channel with two
/// input connections.
#[derive(Debug, Clone)]
enum ChanOp {
    Put(i64, u8),
    GetExact(usize, i64),
    Consume(usize, i64),
    SetVt(usize, i64),
}

/// Shard counts every model test runs under: the degenerate single
/// shard, an even split, and a prime that misaligns with the schedules'
/// timestamp ranges. Sharding is a storage-layout knob only, so the
/// observable behaviour must be identical across all of them.
fn shard_counts() -> impl Strategy<Value = u32> {
    prop_oneof![Just(1u32), Just(2u32), Just(7u32)]
}

fn chan_op() -> impl Strategy<Value = ChanOp> {
    prop_oneof![
        (0i64..40, any::<u8>()).prop_map(|(ts, b)| ChanOp::Put(ts, b)),
        (0usize..2, 0i64..40).prop_map(|(c, ts)| ChanOp::GetExact(c, ts)),
        (0usize..2, 0i64..40).prop_map(|(c, ts)| ChanOp::Consume(c, ts)),
        (0usize..2, 0i64..40).prop_map(|(c, ts)| ChanOp::SetVt(c, ts)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Model-checked channel semantics under REF GC: a non-blocking get
    /// returns exactly what a reference model predicts, and reclamation
    /// never loses a live item or retains a dead prefix.
    #[test]
    fn channel_matches_reference_model(
        ops in proptest::collection::vec(chan_op(), 1..80),
        shards in shard_counts(),
    ) {
        let chan = Channel::standalone(ChannelAttrs::default().with_shards(shards));
        let out = chan.connect_output();
        let conns = [
            chan.connect_input(Interest::FromEarliest),
            chan.connect_input(Interest::FromEarliest),
        ];

        // Reference model state. `until[c]`/`vt[c]` mirror the
        // per-connection monotones; collection runs only when one of them
        // strictly advances (matching the idempotence short-circuits).
        let mut present: std::collections::BTreeMap<i64, u8> = Default::default();
        let mut floor: i64 = i64::MIN; // everything <= floor is gone
        let mut until = [i64::MIN, i64::MIN];
        let mut vt = [i64::MIN, i64::MIN];
        let done = |until: &[i64; 2], vt: &[i64; 2], c: usize| until[c].max(vt[c].saturating_sub(1));
        let collect = |present: &mut std::collections::BTreeMap<i64, u8>,
                       floor: &mut i64,
                       until: &[i64; 2],
                       vt: &[i64; 2]| {
            let threshold = (0..2).map(|c| until[c].max(vt[c].saturating_sub(1))).min().unwrap();
            let removed_max = present
                .range(..=threshold)
                .next_back()
                .map(|(&ts, _)| ts);
            present.retain(|&ts, _| ts > threshold);
            if let Some(m) = removed_max {
                *floor = (*floor).max(m);
            }
        };

        for op in ops {
            match op {
                ChanOp::Put(ts, b) => {
                    let result = out.put(Timestamp::new(ts), Item::from_vec(vec![b]));
                    if ts <= floor {
                        prop_assert_eq!(result, Err(StmError::TsTooOld));
                    } else if let std::collections::btree_map::Entry::Vacant(e) = present.entry(ts) {
                        prop_assert_eq!(result, Ok(()));
                        e.insert(b);
                    } else {
                        prop_assert_eq!(result, Err(StmError::TsExists));
                    }
                }
                ChanOp::GetExact(c, ts) => {
                    let result = conns[c].try_get(GetSpec::Exact(Timestamp::new(ts)));
                    if ts <= floor || ts <= done(&until, &vt, c) {
                        prop_assert_eq!(result.unwrap_err(), StmError::Dropped);
                    } else if let Some(&b) = present.get(&ts) {
                        let (t, item) = result.unwrap();
                        prop_assert_eq!(t, Timestamp::new(ts));
                        prop_assert_eq!(item.payload(), &[b]);
                    } else {
                        prop_assert_eq!(result.unwrap_err(), StmError::Absent);
                    }
                }
                ChanOp::Consume(c, ts) => {
                    conns[c].consume_until(Timestamp::new(ts)).unwrap();
                    if ts > until[c] {
                        until[c] = ts;
                        collect(&mut present, &mut floor, &until, &vt);
                    }
                }
                ChanOp::SetVt(c, ts) => {
                    conns[c].set_vt(VirtualTime::at(Timestamp::new(ts))).unwrap();
                    if ts > vt[c] {
                        vt[c] = ts;
                        until[c] = until[c].max(ts - 1);
                        collect(&mut present, &mut floor, &until, &vt);
                    }
                }
            }
            prop_assert_eq!(chan.live_items(), present.len(), "live item divergence");
        }
    }

    /// Queue: every put is delivered exactly once across any number of
    /// consumers, in FIFO order, and consumed bytes are fully reclaimed.
    #[test]
    fn queue_delivers_exactly_once_fifo(
        items in proptest::collection::vec((any::<i64>(), 1usize..64), 1..50),
        consumers in 1usize..4,
        shards in shard_counts(),
    ) {
        let q = Queue::standalone(QueueAttrs::default().with_shards(shards));
        let out = q.connect_output();
        let conns: Vec<_> = (0..consumers).map(|_| q.connect_input()).collect();
        let mut total_bytes = 0u64;
        for (i, (ts, len)) in items.iter().enumerate() {
            out.put(Timestamp::new(*ts), Item::from_vec(vec![0u8; *len]).with_tag(i as u32))
                .unwrap();
            total_bytes += *len as u64;
        }
        // Round-robin draining across consumers must preserve FIFO.
        let mut seen = Vec::new();
        let mut c = 0;
        while let Ok((_, item, ticket)) = conns[c % consumers].try_get() {
            seen.push(item.tag());
            conns[c % consumers].consume(ticket).unwrap();
            c += 1;
        }
        let expected: Vec<u32> = (0..items.len() as u32).collect();
        prop_assert_eq!(seen, expected);
        prop_assert_eq!(q.stats().reclaimed_bytes, total_bytes);
        prop_assert_eq!(q.queued_items(), 0);
        prop_assert_eq!(q.inflight_items(), 0);
    }

    /// GC safety/liveness under TGC: after every connection promises vt,
    /// exactly the timestamps below the minimum promise are reclaimed.
    #[test]
    fn tgc_reclaims_exactly_below_min_promise(
        n_items in 1i64..60,
        promises in proptest::collection::vec(0i64..80, 1..4),
        shards in shard_counts(),
    ) {
        let chan = Channel::standalone(
            ChannelAttrs::builder().gc(GcPolicy::Transparent).shards(shards).build(),
        );
        let out = chan.connect_output();
        let conns: Vec<_> = promises
            .iter()
            .map(|_| chan.connect_input(Interest::FromEarliest))
            .collect();
        for ts in 0..n_items {
            out.put(Timestamp::new(ts), Item::from_vec(vec![1])).unwrap();
        }
        for (conn, &p) in conns.iter().zip(&promises) {
            conn.set_vt(VirtualTime::at(Timestamp::new(p))).unwrap();
        }
        let min_promise = *promises.iter().min().unwrap();
        let expected_live = (min_promise..n_items).count();
        prop_assert_eq!(chan.live_items(), expected_live);
        // Safety: everything at or above the min promise is still gettable
        // by a fresh connection.
        let fresh = chan.connect_input(Interest::FromEarliest);
        for ts in min_promise.max(0)..n_items {
            prop_assert!(fresh.try_get(GetSpec::Exact(Timestamp::new(ts))).is_ok());
        }
    }

    /// Bounded channels never exceed capacity, whatever the schedule.
    #[test]
    fn bounded_channel_respects_capacity(
        cap in 1u32..8,
        ops in proptest::collection::vec((0i64..64, any::<bool>()), 1..100),
        shards in shard_counts(),
    ) {
        let chan = Channel::standalone(
            ChannelAttrs::builder()
                .capacity(cap)
                .overflow(dstampede::core::OverflowPolicy::Reject)
                .shards(shards)
                .build(),
        );
        let out = chan.connect_output();
        let inp = chan.connect_input(Interest::FromEarliest);
        for (ts, consume) in ops {
            let _ = out.try_put(Timestamp::new(ts), Item::from_vec(vec![0]));
            prop_assert!(chan.live_items() <= cap as usize);
            if consume {
                let _ = inp.consume_until(Timestamp::new(ts));
            }
        }
    }

    /// DropOldest eviction keeps the newest items and never exceeds
    /// capacity.
    #[test]
    fn drop_oldest_keeps_newest(cap in 1u32..6, n in 1i64..40, shards in shard_counts()) {
        let chan = Channel::standalone(
            ChannelAttrs::builder()
                .capacity(cap)
                .overflow(dstampede::core::OverflowPolicy::DropOldest)
                .shards(shards)
                .build(),
        );
        let out = chan.connect_output();
        for ts in 0..n {
            out.put(Timestamp::new(ts), Item::from_vec(vec![ts as u8])).unwrap();
        }
        let live = chan.live_items() as i64;
        prop_assert!(live <= i64::from(cap));
        prop_assert_eq!(live, n.min(i64::from(cap)));
        // The survivors are exactly the newest `live` timestamps.
        let inp = chan.connect_input(Interest::FromEarliest);
        for ts in (n - live)..n {
            prop_assert!(inp.try_get(GetSpec::Exact(Timestamp::new(ts))).is_ok());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// A filtered connection's visible stream is exactly the tag-filtered
    /// subsequence, for every traversal direction.
    #[test]
    fn filtered_view_matches_subsequence(
        items in proptest::collection::vec(0u32..6, 1..40),
        wanted in proptest::collection::vec(0u32..6, 0..4),
        shards in shard_counts(),
    ) {
        let chan = Channel::standalone(ChannelAttrs::default().with_shards(shards));
        let out = chan.connect_output();
        for (i, &tag) in items.iter().enumerate() {
            out.put(Timestamp::new(i as i64), Item::from_vec(vec![tag as u8]).with_tag(tag))
                .unwrap();
        }
        let filter = TagFilter::Only(wanted.clone());
        let inp = chan.connect_input_filtered(Interest::FromEarliest, filter.clone());

        // Forward traversal via After.
        let mut seen = Vec::new();
        let mut last = Timestamp::MIN;
        while let Ok((t, item)) = inp.try_get(GetSpec::After(last)) {
            seen.push(item.tag());
            last = t;
        }
        let expected: Vec<u32> = items
            .iter()
            .copied()
            .filter(|t| filter.matches(*t))
            .collect();
        prop_assert_eq!(&seen, &expected);

        // Earliest/Latest agree with the subsequence's endpoints.
        match (expected.first(), inp.try_get(GetSpec::Earliest)) {
            (Some(&tag), Ok((_, item))) => prop_assert_eq!(item.tag(), tag),
            (None, Err(StmError::Absent)) => {}
            (exp, got) => prop_assert!(false, "earliest mismatch: {exp:?} vs {got:?}"),
        }
        match (expected.last(), inp.try_get(GetSpec::Latest)) {
            (Some(&tag), Ok((_, item))) => prop_assert_eq!(item.tag(), tag),
            (None, Err(StmError::Absent)) => {}
            (exp, got) => prop_assert!(false, "latest mismatch: {exp:?} vs {got:?}"),
        }

        // Consuming everything reclaims everything: filtered-out items are
        // not pinned by the filtered connection.
        inp.consume_until(Timestamp::new(items.len() as i64)).unwrap();
        prop_assert_eq!(chan.live_items(), 0);
    }
}
