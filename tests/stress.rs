//! Stress tests: many concurrent sessions, deep pipelines, and the vision
//! application over a lossy UDP cluster — the system under load rather
//! than in isolation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dstampede::apps::{run_vision_pipeline, VisionConfig};
use dstampede::client::EndDevice;
use dstampede::core::{ChannelAttrs, GetSpec, Interest, Item, QueueAttrs, StmError, Timestamp};
use dstampede::runtime::Cluster;
use dstampede::wire::{CodecId, WaitSpec};

fn ts(v: i64) -> Timestamp {
    Timestamp::new(v)
}

#[test]
fn twenty_concurrent_sessions_share_one_channel() {
    let cluster = Cluster::in_process(2).unwrap();
    let space = cluster.space(1).unwrap();
    let chan = space.create_channel(None, ChannelAttrs::default());

    const WRITERS: usize = 10;
    const READERS: usize = 10;
    const PER_WRITER: i64 = 30;

    // Readers connect before any writes so none miss items.
    let mut readers = Vec::new();
    let total_read = Arc::new(AtomicU64::new(0));
    let mut reader_conns = Vec::new();
    for r in 0..READERS {
        let addr = cluster.listener_addr((r % 2) as u16).unwrap();
        let codec = if r % 2 == 0 {
            CodecId::Xdr
        } else {
            CodecId::Jdr
        };
        let device = EndDevice::attach(addr, codec, &format!("reader-{r}")).unwrap();
        let inp = device
            .connect_channel_in(chan.id(), Interest::FromEarliest)
            .unwrap();
        reader_conns.push((device, inp));
    }

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let addr = cluster.listener_addr((w % 2) as u16).unwrap();
        let chan_id = chan.id();
        writers.push(std::thread::spawn(move || {
            let device = EndDevice::attach_c(addr, &format!("writer-{w}")).unwrap();
            let out = device.connect_channel_out(chan_id).unwrap();
            for i in 0..PER_WRITER {
                out.put(
                    ts(w as i64 * 1000 + i),
                    Item::from_vec(vec![w as u8; 128]),
                    WaitSpec::Forever,
                )
                .unwrap();
            }
            drop(out);
            device.detach().unwrap();
        }));
    }
    for w in writers {
        w.join().unwrap();
    }

    let expected = (WRITERS as u64) * (PER_WRITER as u64);
    for (device, inp) in reader_conns {
        let total_read = Arc::clone(&total_read);
        readers.push(std::thread::spawn(move || {
            let mut count = 0u64;
            let mut last = Timestamp::MIN;
            loop {
                match inp.get(GetSpec::After(last), WaitSpec::NonBlocking) {
                    Ok((t, _)) => {
                        last = t;
                        count += 1;
                    }
                    Err(StmError::Absent) => break,
                    Err(e) => panic!("{e}"),
                }
            }
            assert_eq!(count, expected);
            inp.consume_until(Timestamp::MAX.prev()).unwrap();
            total_read.fetch_add(count, Ordering::SeqCst);
            drop(inp);
            device.detach().unwrap();
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(total_read.load(Ordering::SeqCst), expected * READERS as u64);
    // All readers consumed everything: the channel drains fully.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while chan.live_items() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(chan.live_items(), 0);
    cluster.shutdown();
}

#[test]
fn deep_queue_pipeline_under_contention() {
    // A four-stage pipeline entirely made of queues, with worker pools at
    // each stage, all bounded — exercises blocking puts/gets, tickets and
    // flow control simultaneously.
    let cluster = Cluster::builder()
        .address_spaces(2)
        .listeners(false)
        .build()
        .unwrap();
    let a = cluster.space(0).unwrap();
    let b = cluster.space(1).unwrap();
    let q1 = a.create_queue(None, QueueAttrs::builder().capacity(8).build());
    let q2 = b.create_queue(None, QueueAttrs::builder().capacity(8).build());
    let q3 = a.create_queue(None, QueueAttrs::builder().capacity(8).build());

    const ITEMS: i64 = 200;

    let feeder = {
        let out = a.open_queue(q1.id()).unwrap().connect_output().unwrap();
        std::thread::spawn(move || {
            for i in 0..ITEMS {
                out.put(ts(i), Item::from_vec(vec![1u8; 64]), WaitSpec::Forever)
                    .unwrap();
            }
        })
    };

    // Stage 1 -> 2 workers (cross-space), stage 2 -> 2 workers.
    let mut stages = Vec::new();
    for _ in 0..2 {
        let inp = b.open_queue(q1.id()).unwrap().connect_input().unwrap();
        let out = b.open_queue(q2.id()).unwrap().connect_output().unwrap();
        stages.push(std::thread::spawn(move || {
            let mut n = 0u64;
            loop {
                match inp.get(WaitSpec::TimeoutMs(500)) {
                    Ok((t, item, ticket)) => {
                        out.put(t, item, WaitSpec::Forever).unwrap();
                        inp.consume(ticket).unwrap();
                        n += 1;
                    }
                    Err(StmError::Timeout) => return n,
                    Err(e) => panic!("{e}"),
                }
            }
        }));
    }
    for _ in 0..2 {
        let inp = a.open_queue(q2.id()).unwrap().connect_input().unwrap();
        let out = a.open_queue(q3.id()).unwrap().connect_output().unwrap();
        stages.push(std::thread::spawn(move || {
            let mut n = 0u64;
            loop {
                match inp.get(WaitSpec::TimeoutMs(500)) {
                    Ok((t, item, ticket)) => {
                        out.put(t, item, WaitSpec::Forever).unwrap();
                        inp.consume(ticket).unwrap();
                        n += 1;
                    }
                    Err(StmError::Timeout) => return n,
                    Err(e) => panic!("{e}"),
                }
            }
        }));
    }

    // Sink.
    let sink = {
        let inp = b.open_queue(q3.id()).unwrap().connect_input().unwrap();
        std::thread::spawn(move || {
            let mut got = 0i64;
            while got < ITEMS {
                let (_, _, ticket) = inp.get(WaitSpec::Forever).unwrap();
                inp.consume(ticket).unwrap();
                got += 1;
            }
            got
        })
    };

    feeder.join().unwrap();
    assert_eq!(sink.join().unwrap(), ITEMS);
    let stage_totals: u64 = stages.into_iter().map(|s| s.join().unwrap()).sum();
    assert_eq!(stage_totals, 2 * ITEMS as u64); // each item crossed 2 stages
    cluster.shutdown();
}

#[test]
fn vision_pipeline_survives_lossy_udp_cluster() {
    // The full Figure 3 application on a UDP cluster — exercised via the
    // public config rather than a custom harness.
    let cfg = VisionConfig {
        frames: 8,
        frame_size: 16 * 1024,
        fragments: 4,
        trackers: 3,
        address_spaces: 2,
        trace_sampling: 0,
    };
    // The pipeline builder uses the in-process transport; for loss we run
    // the lossy check at the CLF layer in `tests/distributed.rs`. Here we
    // assert the pipeline's correctness repeatedly to catch scheduling
    // flakiness under parallel load.
    for _ in 0..3 {
        let report = run_vision_pipeline(&cfg).unwrap();
        assert_eq!(report.records.len(), 8);
        let total: u64 = report.per_tracker_fragments.iter().sum();
        assert_eq!(total, 8 * 4);
    }
}
