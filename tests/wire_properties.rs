//! Property-based tests of the wire layer: both codecs round-trip
//! arbitrary messages, and the two codecs agree on meaning.

use bytes::Bytes;
use proptest::prelude::*;

use dstampede::core::{
    AsId, ChanId, ChannelAttrs, GcPolicy, GetSpec, Interest, OverflowPolicy, QueueAttrs, QueueId,
    ResourceId, TagFilter, Timestamp,
};
use dstampede::wire::{
    codec_for, CodecId, GcNote, NsEntry, Reply, ReplyFrame, Request, RequestFrame, WaitSpec,
};

fn timestamp() -> impl Strategy<Value = Timestamp> {
    any::<i64>().prop_map(Timestamp::new)
}

fn chan_id() -> impl Strategy<Value = ChanId> {
    (any::<u16>(), any::<u32>()).prop_map(|(owner, index)| ChanId {
        owner: AsId(owner),
        index,
    })
}

fn queue_id() -> impl Strategy<Value = QueueId> {
    (any::<u16>(), any::<u32>()).prop_map(|(owner, index)| QueueId {
        owner: AsId(owner),
        index,
    })
}

fn resource() -> impl Strategy<Value = ResourceId> {
    prop_oneof![
        chan_id().prop_map(ResourceId::Channel),
        queue_id().prop_map(ResourceId::Queue),
    ]
}

fn wait_spec() -> impl Strategy<Value = WaitSpec> {
    prop_oneof![
        Just(WaitSpec::NonBlocking),
        Just(WaitSpec::Forever),
        any::<u32>().prop_map(WaitSpec::TimeoutMs),
    ]
}

fn get_spec() -> impl Strategy<Value = GetSpec> {
    prop_oneof![
        timestamp().prop_map(GetSpec::Exact),
        Just(GetSpec::Latest),
        Just(GetSpec::Earliest),
        timestamp().prop_map(GetSpec::After),
    ]
}

fn interest() -> impl Strategy<Value = Interest> {
    prop_oneof![
        Just(Interest::FromEarliest),
        Just(Interest::FromLatest),
        timestamp().prop_map(Interest::FromTs),
    ]
}

fn tag_filter() -> impl Strategy<Value = TagFilter> {
    prop_oneof![
        Just(TagFilter::Any),
        proptest::collection::vec(any::<u32>(), 0..8).prop_map(TagFilter::Only),
        (any::<u32>(), any::<u32>())
            .prop_map(|(modulus, remainder)| TagFilter::Stripe { modulus, remainder }),
    ]
}

fn channel_attrs() -> impl Strategy<Value = ChannelAttrs> {
    (proptest::option::of(any::<u32>()), 0u32..3, 0u32..2).prop_map(|(cap, overflow, gc)| {
        let mut b = ChannelAttrs::builder()
            .overflow(OverflowPolicy::from_code(overflow))
            .gc(GcPolicy::from_code(gc));
        if let Some(c) = cap {
            b = b.capacity(c);
        }
        b.build()
    })
}

fn queue_attrs() -> impl Strategy<Value = QueueAttrs> {
    (proptest::option::of(any::<u32>()), 0u32..3).prop_map(|(cap, overflow)| {
        let mut b = QueueAttrs::builder().overflow(OverflowPolicy::from_code(overflow));
        if let Some(c) = cap {
            b = b.capacity(c);
        }
        b.build()
    })
}

fn payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..2048).prop_map(Bytes::from)
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        "[a-z0-9 -]{0,24}".prop_map(|client_name| Request::Attach { client_name }),
        Just(Request::Detach),
        any::<u64>().prop_map(|nonce| Request::Ping { nonce }),
        (proptest::option::of("[a-z0-9/]{1,16}"), channel_attrs())
            .prop_map(|(name, attrs)| Request::ChannelCreate { name, attrs }),
        (proptest::option::of("[a-z0-9/]{1,16}"), queue_attrs())
            .prop_map(|(name, attrs)| Request::QueueCreate { name, attrs }),
        (chan_id(), interest(), tag_filter()).prop_map(|(chan, interest, filter)| {
            Request::ConnectChannelIn {
                chan,
                interest,
                filter,
            }
        }),
        chan_id().prop_map(|chan| Request::ConnectChannelOut { chan }),
        queue_id().prop_map(|queue| Request::ConnectQueueIn { queue }),
        queue_id().prop_map(|queue| Request::ConnectQueueOut { queue }),
        any::<u64>().prop_map(|conn| Request::Disconnect { conn }),
        (
            any::<u64>(),
            timestamp(),
            any::<u32>(),
            payload(),
            wait_spec()
        )
            .prop_map(|(conn, ts, tag, payload, wait)| Request::ChannelPut {
                conn,
                ts,
                tag,
                payload,
                wait
            }),
        (any::<u64>(), get_spec(), wait_spec())
            .prop_map(|(conn, spec, wait)| Request::ChannelGet { conn, spec, wait }),
        (any::<u64>(), timestamp()).prop_map(|(conn, upto)| Request::ChannelConsume { conn, upto }),
        (any::<u64>(), timestamp()).prop_map(|(conn, vt)| Request::ChannelSetVt { conn, vt }),
        (
            any::<u64>(),
            timestamp(),
            any::<u32>(),
            payload(),
            wait_spec()
        )
            .prop_map(|(conn, ts, tag, payload, wait)| Request::QueuePut {
                conn,
                ts,
                tag,
                payload,
                wait
            }),
        (any::<u64>(), wait_spec()).prop_map(|(conn, wait)| Request::QueueGet { conn, wait }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(conn, ticket)| Request::QueueConsume { conn, ticket }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(conn, ticket)| Request::QueueRequeue { conn, ticket }),
        ("[a-z0-9/]{1,16}", resource(), "[a-z0-9 ]{0,16}").prop_map(|(name, resource, meta)| {
            Request::NsRegister {
                name,
                resource,
                meta,
            }
        }),
        ("[a-z0-9/]{1,16}", wait_spec()).prop_map(|(name, wait)| Request::NsLookup { name, wait }),
        "[a-z0-9/]{1,16}".prop_map(|name| Request::NsUnregister { name }),
        Just(Request::NsList),
        resource().prop_map(|resource| Request::InstallGarbageHook { resource }),
        (any::<u16>(), timestamp()).prop_map(|(from, min_vt)| Request::GcReport {
            from: AsId(from),
            min_vt
        }),
    ]
}

fn gc_note() -> impl Strategy<Value = GcNote> {
    (resource(), timestamp(), any::<u32>(), any::<u32>()).prop_map(|(resource, ts, tag, len)| {
        GcNote {
            resource,
            ts,
            tag,
            len,
        }
    })
}

fn reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        Just(Reply::Ok),
        (any::<u64>(), any::<u16>()).prop_map(|(session, as_id)| Reply::Attached {
            session,
            as_id: AsId(as_id)
        }),
        resource().prop_map(|resource| Reply::Created { resource }),
        any::<u64>().prop_map(|conn| Reply::Connected { conn }),
        (timestamp(), any::<u32>(), payload()).prop_map(|(ts, tag, payload)| Reply::Item {
            ts,
            tag,
            payload
        }),
        (timestamp(), any::<u32>(), payload(), any::<u64>()).prop_map(
            |(ts, tag, payload, ticket)| Reply::QueueItem {
                ts,
                tag,
                payload,
                ticket
            }
        ),
        (resource(), "[a-z0-9 ]{0,16}")
            .prop_map(|(resource, meta)| Reply::NsFound { resource, meta }),
        proptest::collection::vec(("[a-z0-9/]{1,12}", resource(), "[a-z ]{0,8}"), 0..5).prop_map(
            |entries| Reply::NsEntries {
                entries: entries
                    .into_iter()
                    .map(|(name, resource, meta)| NsEntry {
                        name,
                        resource,
                        meta
                    })
                    .collect()
            }
        ),
        any::<u64>().prop_map(|nonce| Reply::Pong { nonce }),
        (any::<u32>(), "[a-z ]{0,24}").prop_map(|(code, detail)| Reply::Error { code, detail }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_in_both_codecs(seq in any::<u64>(), req in request()) {
        let frame = RequestFrame::new(seq, req);
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_request(&frame).unwrap().to_bytes();
            let back = codec.decode_request(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
        }
    }

    #[test]
    fn replies_round_trip_in_both_codecs(
        seq in any::<u64>(),
        notes in proptest::collection::vec(gc_note(), 0..4),
        reply in reply(),
    ) {
        let frame = ReplyFrame::new(seq, notes, reply);
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let bytes = codec.encode_reply(&frame).unwrap().to_bytes();
            let back = codec.decode_reply(&bytes).unwrap();
            prop_assert_eq!(&back, &frame, "codec {}", id);
        }
    }

    /// The two codecs must agree on meaning: decoding each codec's bytes
    /// yields the same message, so a C client and a Java client express
    /// identical semantics over different representations.
    #[test]
    fn codecs_agree_on_meaning(seq in any::<u64>(), req in request()) {
        let frame = RequestFrame::new(seq, req);
        let xdr = codec_for(CodecId::Xdr);
        let jdr = codec_for(CodecId::Jdr);
        let via_xdr = xdr.decode_request(&xdr.encode_request(&frame).unwrap().to_bytes()).unwrap();
        let via_jdr = jdr.decode_request(&jdr.encode_request(&frame).unwrap().to_bytes()).unwrap();
        prop_assert_eq!(via_xdr, via_jdr);
    }

    /// Decoders never panic on arbitrary input (truncation, corruption).
    #[test]
    fn decoders_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let wire = Bytes::from(bytes.clone());
            let _ = codec.decode_request(&wire);
            let _ = codec.decode_reply(&wire);
        }
    }

    /// Corrupting any single byte of an encoded frame never panics the
    /// decoder (it may decode to a different valid frame or fail cleanly).
    #[test]
    fn single_byte_corruption_is_safe(
        seq in any::<u64>(),
        req in request(),
        pos_seed in any::<usize>(),
        xor in 1u8..,
    ) {
        for id in [CodecId::Xdr, CodecId::Jdr] {
            let codec = codec_for(id);
            let frame = RequestFrame::new(seq, req.clone());
            let mut bytes = codec.encode_request(&frame).unwrap().to_bytes().to_vec();
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= xor;
            let _ = codec.decode_request(&Bytes::from(bytes));
        }
    }
}
