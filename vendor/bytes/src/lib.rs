//! Vendored stand-in for the `bytes` crate (the build environment is
//! offline, so crates.io dependencies are replaced by API-compatible
//! zero-dependency implementations under `vendor/`).
//!
//! [`Bytes`] is a cheaply cloneable, immutable, contiguous byte buffer:
//! clones and slices share one reference-counted allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).len(), 3);
        let c = s.clone();
        assert_eq!(c, s);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_checked() {
        let _ = Bytes::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
