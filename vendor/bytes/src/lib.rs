//! Vendored stand-in for the `bytes` crate (the build environment is
//! offline, so crates.io dependencies are replaced by API-compatible
//! zero-dependency implementations under `vendor/`).
//!
//! [`Bytes`] is a cheaply cloneable, immutable, contiguous byte buffer:
//! clones and slices share one reference-counted allocation.
//! [`BytesMut`] is the mutable staging half: append bytes, then
//! [`freeze`](BytesMut::freeze) into an immutable [`Bytes`] without
//! copying. `Bytes::from(Vec<u8>)` and `From<String>` are likewise
//! zero-copy: the vector becomes the shared allocation itself, which is
//! what lets the data plane hand one payload from producer to socket to
//! consumer as refcount bumps instead of memcpys.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Backing storage: either borrowed-forever static data or a shared
/// heap allocation that can be reclaimed for reuse once unique.
#[derive(Clone)]
enum Data {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Data {
    fn as_slice(&self) -> &[u8] {
        match self {
            Data::Static(s) => s,
            Data::Shared(a) => a.as_slice(),
        }
    }
}

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Data,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Wraps a static byte slice without copying.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            end: data.len(),
            data: Data::Static(data),
            start: 0,
        }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Recovers the backing `Vec` for reuse when this handle is the
    /// sole owner and views the entire allocation; otherwise hands the
    /// buffer back unchanged. This is the hook buffer pools use to
    /// recycle receive and encode buffers once every payload slice
    /// into them has been dropped.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when other handles still share the
    /// allocation, the view is a strict sub-slice, or the data is
    /// static.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        match self.data {
            Data::Shared(arc) if self.start == 0 && self.end == arc.len() => {
                match Arc::try_unwrap(arc) {
                    Ok(v) => Ok(v),
                    Err(arc) => Err(Bytes {
                        start: self.start,
                        end: self.end,
                        data: Data::Shared(arc),
                    }),
                }
            }
            data => Err(Bytes {
                data,
                start: self.start,
                end: self.end,
            }),
        }
    }

    /// Whether `other` shares this buffer's backing allocation (used
    /// by tests to prove a path is zero-copy).
    #[must_use]
    pub fn shares_allocation_with(&self, other: &Bytes) -> bool {
        match (&self.data, &other.data) {
            (Data::Shared(a), Data::Shared(b)) => Arc::ptr_eq(a, b),
            (Data::Static(a), Data::Static(b)) => std::ptr::eq(a.as_ptr(), b.as_ptr()),
            _ => false,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Data::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

/// A mutable, growable byte buffer that freezes into [`Bytes`] without
/// copying. This is the staging area encoders write headers into; the
/// backing `Vec` typically comes from (and returns to) a buffer pool.
#[derive(Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with at least `cap` bytes of capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing vector (e.g. one recycled from a pool),
    /// keeping its contents.
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Clears contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`] without copying: the
    /// backing vector becomes the shared allocation.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Unwraps the backing vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).len(), 3);
        let c = s.clone();
        assert_eq!(c, s);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_checked() {
        let _ = Bytes::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"hello");
        let ptr = m.as_ref().as_ptr();
        let b = m.freeze();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.as_ref().as_ptr(), ptr, "freeze must not copy");
    }

    #[test]
    fn from_vec_is_zero_copy_and_slices_share() {
        let v = vec![7u8; 16];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "From<Vec> must not copy");
        let s = b.slice(4..8);
        assert!(s.shares_allocation_with(&b));
        assert_eq!(s.as_ref().as_ptr(), unsafe { ptr.add(4) });
    }

    #[test]
    fn reclaim_requires_unique_full_view() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let clone = b.clone();
        let b = b.try_into_vec().unwrap_err(); // shared: refused
        drop(clone);
        let sub = b.slice(0..2);
        let sub = sub.try_into_vec().unwrap_err(); // sub-view: refused
        drop(sub);
        let v = b.try_into_vec().unwrap(); // unique + full: reclaimed
        assert_eq!(v, vec![1, 2, 3]);
        assert!(Bytes::from_static(b"x").try_into_vec().is_err());
    }

    #[test]
    fn static_bytes_do_not_allocate_on_slice() {
        let b = Bytes::from_static(b"abcdef");
        let s = b.slice(2..4);
        assert_eq!(&s[..], b"cd");
        assert!(s.shares_allocation_with(&b));
    }
}
