//! Vendored stand-in for the `criterion` crate (the build environment
//! is offline, so crates.io dependencies are replaced by API-compatible
//! zero-dependency implementations under `vendor/`).
//!
//! A minimal harness: each benchmark runs a short timed loop and prints
//! one `ns/iter` line. No statistics, plots, or baselines — just enough
//! to keep `benches/` compiling and producing indicative numbers, and to
//! finish quickly when bench targets run under `cargo test`.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-benchmark time budget; keeps full bench suites fast.
const BUDGET: Duration = Duration::from_millis(20);

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label, &mut routine);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Declares the per-iteration throughput (ignored by this harness).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (ignored by this harness).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, &mut routine);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench(label: &str, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let ns = if bencher.iters == 0 {
        0.0
    } else {
        bencher.elapsed.as_secs_f64() * 1e9 / bencher.iters as f64
    };
    println!("bench {label}: {ns:.0} ns/iter ({} iters)", bencher.iters);
}

/// Times closures inside one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine` until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        loop {
            let out = routine();
            self.iters += 1;
            drop(std::hint::black_box(out));
            if start.elapsed() >= BUDGET {
                break;
            }
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + BUDGET;
        loop {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            self.iters += 1;
            drop(std::hint::black_box(out));
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// How batched inputs are grouped (ignored by this harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared per-iteration work, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8));
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 4), &4u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_function(BenchmarkId::from_parameter(9), |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group!(demo, sample);

    #[test]
    fn harness_runs_every_shape() {
        demo();
    }
}
