//! Multi-producer multi-consumer channels: `unbounded` and `bounded`
//! flavours with blocking, timed, and non-blocking receives.
//!
//! Semantics mirror `crossbeam-channel`: senders and receivers are
//! cloneable and `Sync`; a send fails once every receiver is gone; a
//! receive fails once every sender is gone *and* the queue is drained.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A send failed because all receivers were dropped; returns the value.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// A blocking receive failed because the channel is empty and
/// disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Why a timed receive returned without a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Why a non-blocking receive returned without a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item arrives or the last sender leaves.
    recv_cv: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    send_cv: Condvar,
    cap: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A channel with unlimited buffering: sends never block.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// A channel buffering at most `cap` messages: sends block when full.
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    // Rendezvous (cap 0) is unused in this repository; round up so a
    // lone send cannot deadlock.
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        recv_cv: Condvar::new(),
        send_cv: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] returning the message once every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = self.shared.cap.is_some_and(|cap| inner.queue.len() >= cap);
            if !full {
                inner.queue.push_back(value);
                self.shared.recv_cv.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .send_cv
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Number of messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        if inner.senders == 0 {
            self.shared.recv_cv.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is drained and every sender is
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                self.shared.send_cv.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .recv_cv
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives a message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the wait expires empty;
    /// [`RecvTimeoutError::Disconnected`] when drained with no senders.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                self.shared.send_cv.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .shared
                .recv_cv
                .wait_timeout(inner, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if result.timed_out() && inner.queue.is_empty() {
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Receives a message only if one is already buffered.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is buffered;
    /// [`TryRecvError::Disconnected`] when also out of senders.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(value) = inner.queue.pop_front() {
            self.shared.send_cv.notify_one();
            return Ok(value);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.send_cv.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_expires_when_empty() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(5).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx2.recv().unwrap(), 5);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
