//! Vendored stand-in for the `crossbeam` crate (the build environment
//! is offline, so crates.io dependencies are replaced by API-compatible
//! zero-dependency implementations under `vendor/`).
//!
//! Only the [`channel`] module is provided — the repository uses nothing
//! else from crossbeam.

pub mod channel;
