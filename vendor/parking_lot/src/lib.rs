//! Vendored stand-in for the `parking_lot` crate (the build environment
//! is offline, so crates.io dependencies are replaced by API-compatible
//! zero-dependency implementations under `vendor/`).
//!
//! Thin non-poisoning wrappers over `std::sync`: a poisoned lock is
//! recovered transparently instead of surfacing a `Result`, matching
//! parking_lot's guard-returning API.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
///
/// Holds an `Option` so [`Condvar::wait`] can take the underlying std
/// guard out and put the re-acquired one back through an `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Whether a timed condition-variable wait hit its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.timed_out
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
