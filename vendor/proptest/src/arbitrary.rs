//! `any::<T>()` — the canonical strategy for a primitive type, biased
//! toward boundary values (0, 1, MIN, MAX) so edge cases appear early.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // One draw in eight is a boundary value.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0,
                        1 => 1,
                        2 => <$ty>::MAX,
                        _ => <$ty>::MIN,
                    }
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from(b' ' + u8::try_from(rng.below(95)).expect("below 95"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_eventually_appear() {
        let mut rng = TestRng::from_name("arbitrary");
        let mut saw_max = false;
        let mut saw_zero = false;
        for _ in 0..2000 {
            let v: u32 = Arbitrary::arbitrary(&mut rng);
            saw_max |= v == u32::MAX;
            saw_zero |= v == 0;
        }
        assert!(saw_max && saw_zero);
    }

    #[test]
    fn chars_are_printable_ascii() {
        let mut rng = TestRng::from_name("chars");
        for _ in 0..500 {
            let c = char::arbitrary(&mut rng);
            assert!((' '..='~').contains(&c));
        }
    }
}
