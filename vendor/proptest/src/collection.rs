//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` strategy: length drawn from `size`, elements from `element`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below_usize(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_cover_the_range() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(any::<u8>(), 2..5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[2] && seen[3] && seen[4]);
    }
}
