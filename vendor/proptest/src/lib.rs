//! Vendored stand-in for the `proptest` crate (the build environment is
//! offline, so crates.io dependencies are replaced by API-compatible
//! zero-dependency implementations under `vendor/`).
//!
//! Implements the subset of proptest this repository uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`boxed`,
//! `any::<T>()` for primitives, integer-range and regex-class string
//! strategies, [`collection::vec`], [`option::of`], `Just`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, and the `proptest!`
//! test-harness macro. Generation is deterministic per test (seeded from
//! the test name) and skips shrinking: a failing case panics with the
//! assertion message, which the fixed seed makes reproducible.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs for `cases` generated inputs (default 256, overridable with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($body:tt)*) => {
        $crate::__proptest_tests! { ($config) $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($body)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strategy,
                            &mut rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, reporting the failing
/// expression (or a custom formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        assert!(
            *left == *right,
            "proptest assertion failed: {left:?} != {right:?}"
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        assert!(
            *left == *right,
            "proptest assertion failed: {left:?} != {right:?}: {}",
            format!($($fmt)+)
        );
    }};
}

/// Picks uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
