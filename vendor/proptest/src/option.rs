//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An `Option` strategy: `None` one time in four, otherwise `Some` of
/// the inner strategy.
#[must_use]
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn both_variants_appear() {
        let mut rng = TestRng::from_name("option");
        let s = of(any::<u16>());
        let mut none = 0;
        let mut some = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                None => none += 1,
                Some(_) => some += 1,
            }
        }
        assert!(none > 0 && some > none);
    }
}
