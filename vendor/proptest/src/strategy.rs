//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of one type from a random stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A strategy applying a function to another strategy's output.
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always generates a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    generate: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Picks uniformly among several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below_usize(self.arms.len());
        self.arms[pick].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

macro_rules! range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(width);
                ((self.start as i128) + offset) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128) - (*self.start() as i128) + 1;
                let offset = (rng.next_u64() as i128).rem_euclid(width);
                ((*self.start() as i128) + offset) as $ty
            }
        }

        impl Strategy for RangeFrom<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let width = (<$ty>::MAX as i128) - (self.start as i128) + 1;
                let offset = (rng.next_u64() as i128).rem_euclid(width);
                ((self.start as i128) + offset) as $ty
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex-class strategies. The supported subset
/// is what character-class patterns need: `[class]{m,n}` (and `{m}`),
/// where `class` lists literal characters and `a-z` ranges; a trailing
/// `-` is literal. Unsupported patterns generate themselves verbatim.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, min, max)) => {
                let len = min + rng.below_usize(max - min + 1);
                (0..len)
                    .map(|_| alphabet[rng.below_usize(alphabet.len())])
                    .collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `[class]{m,n}` into (alphabet, m, n); `None` when the pattern
/// is not of that shape.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    if class.is_empty() {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            for c in class[i]..=class[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3i64..40).generate(&mut r);
            assert!((3..40).contains(&v));
            let w = (1u8..).generate(&mut r);
            assert!(w >= 1);
            let x = (2usize..=4).generate(&mut r);
            assert!((2..=4).contains(&x));
        }
    }

    #[test]
    fn map_just_union_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0u32), (10u32..20).prop_map(|v| v * 2),];
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v == 0 || (20..40).contains(&v), "v={v}");
        }
    }

    #[test]
    fn class_patterns_generate_members() {
        let mut r = rng();
        let mut saw_empty = false;
        for _ in 0..200 {
            let s = "[a-z0-9 -]{0,24}".generate(&mut r);
            assert!(s.len() <= 24);
            saw_empty |= s.is_empty();
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' ' || c == '-'));
        }
        assert!(saw_empty, "{{0,n}} should sometimes generate empty");
        let fixed = "[ab]{3}".generate(&mut r);
        assert_eq!(fixed.len(), 3);
    }

    #[test]
    fn unsupported_patterns_fall_back_verbatim() {
        let mut r = rng();
        assert_eq!("plain".generate(&mut r), "plain");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u8..10, Just(7i32), "[x]{1,1}").generate(&mut r);
        assert!(a < 10);
        assert_eq!(b, 7);
        assert_eq!(c, "x");
    }
}
