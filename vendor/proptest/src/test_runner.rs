//! Deterministic random generation and per-test configuration.

/// Configuration for one `proptest!` function.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A deterministic PRNG (splitmix64 core) seeded from the test name, so
/// every run of a test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name via FNV-1a.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        usize::try_from(self.below(bound as u64)).expect("bound fits usize")
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::from_name("beta");
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            assert!(r.below_usize(3) < 3);
        }
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(9).cases, 9);
    }
}
